//! **§11.4 MinSeed analysis**: seed counts through the pipeline.
//!
//! Paper observations reproduced here:
//! * MinSeed implements no chaining/filtering beyond the 0.02 % frequency
//!   rule, so it reduces seeds only modestly (77 M → 35 M long-read;
//!   828 k → 375 k short-read), while GraphAligner's chaining reduces them
//!   drastically (→ 48 k / 11 k) — yet SeGraM still wins end-to-end because
//!   BitAlign makes each alignment cheap;
//! * MinSeed does not reduce sensitivity: the frequency filter is the same
//!   optimization the software tools use.

use segram_bench::{header, row, write_results, Scale};
use segram_core::{measure_workload, SegramConfig, SegramMapper};
use segram_testkit::Serialize;

#[derive(Serialize)]
struct MinSeedRow {
    dataset: String,
    reads: usize,
    minimizers_total: f64,
    surviving_total: f64,
    seeds_unfiltered_total: f64,
    seeds_total: f64,
    clustered_estimate: f64,
    accuracy: f64,
}

#[derive(Serialize)]
struct MinSeedAnalysis {
    rows: Vec<MinSeedRow>,
}

fn main() {
    let scale = Scale::from_env();
    header("Section 11.4: MinSeed seed-count analysis");
    println!(
        "  {:<20} {:>8} {:>11} {:>11} {:>12} {:>11} {:>10} {:>9}",
        "dataset",
        "reads",
        "minimizers",
        "surviving",
        "seeds(raw)",
        "seeds",
        "clusters",
        "accuracy"
    );

    let datasets = [
        (
            scale.dataset_config(201).pacbio_5(),
            SegramConfig::long_reads(0.05),
        ),
        (
            scale.dataset_config(202).illumina(150),
            SegramConfig::short_reads(),
        ),
    ];
    let mut rows = Vec::new();
    for (dataset, config) in &datasets {
        let mut measure_config = *config;
        measure_config.max_regions = 4;
        let mapper = SegramMapper::new(dataset.graph().clone(), measure_config);
        let m = measure_workload(&mapper, &dataset.reads, 200);
        let n = m.reads as f64;
        // Unfiltered seed counts (frequency filter off): what the paper's
        // "77 M" corresponds to before MinSeed's 0.02% rule cuts it down.
        let mut unfiltered_config = measure_config;
        unfiltered_config.discard_frac = 0.0;
        let unfiltered_mapper = SegramMapper::new(dataset.graph().clone(), unfiltered_config);
        let mut seeds_unfiltered = 0usize;
        // Chaining surrogate: overlapping-region clusters per read, the
        // quantity GraphAligner's chaining reduces seeds to.
        let mut cluster_total = 0usize;
        for read in &dataset.reads {
            seeds_unfiltered += unfiltered_mapper.seed(&read.seq).stats.seed_locations;
            let seeding = mapper.seed(&read.seq);
            let mut clusters = 0usize;
            let mut last_end = 0u64;
            for r in &seeding.regions {
                if r.start >= last_end {
                    clusters += 1;
                }
                last_end = last_end.max(r.end);
            }
            cluster_total += clusters;
        }
        let row = MinSeedRow {
            dataset: dataset.name.clone(),
            reads: m.reads,
            minimizers_total: m.workload.minimizers_per_read * n,
            surviving_total: m.workload.surviving_minimizers * n,
            seeds_unfiltered_total: seeds_unfiltered as f64,
            seeds_total: m.workload.seeds_per_read * n,
            clustered_estimate: cluster_total as f64,
            accuracy: m.accuracy,
        };
        println!(
            "  {:<20} {:>8} {:>11.0} {:>11.0} {:>12.0} {:>11.0} {:>10.0} {:>8.0}%",
            row.dataset,
            row.reads,
            row.minimizers_total,
            row.surviving_total,
            row.seeds_unfiltered_total,
            row.seeds_total,
            row.clustered_estimate,
            row.accuracy * 100.0
        );
        rows.push(row);
    }

    header("Shape checks against the paper");
    for r in &rows {
        let freq_reduction = r.seeds_unfiltered_total / r.seeds_total.max(1.0);
        let chain_reduction = r.seeds_total / r.clustered_estimate.max(1.0);
        row(
            &format!("{}: frequency filter reduces seeds by", r.dataset),
            format!("{freq_reduction:.2}x (paper: ~2.2x, 77M->35M long-read)"),
        );
        row(
            &format!("{}: chaining would reduce seeds by", r.dataset),
            format!("{chain_reduction:.0}x (paper: ~700x, 35M->48k)"),
        );
    }
    // The absolute seed-reduction ratio of the 0.02% rule depends on the
    // genome's repeat mass concentrating in very few distinct minimizers,
    // which only emerges at gigabase scale; show the same mechanism with a
    // discard fraction scaled to our index size.
    {
        let dataset = &datasets[0].0;
        let mut scaled = datasets[0].1;
        scaled.max_regions = 4;
        scaled.discard_frac = 0.01;
        let scaled_mapper = SegramMapper::new(dataset.graph().clone(), scaled);
        let mut seeds_scaled = 0usize;
        for read in &dataset.reads {
            seeds_scaled += scaled_mapper.seed(&read.seq).stats.seed_locations;
        }
        row(
            "long-read seeds at a scale-adjusted 1% discard",
            format!(
                "{seeds_scaled} vs {:.0} unfiltered ({:.2}x reduction)",
                rows[0].seeds_unfiltered_total,
                rows[0].seeds_unfiltered_total / (seeds_scaled as f64).max(1.0)
            ),
        );
    }
    println!("\n  MinSeed keeps orders of magnitude more seeds than chaining-based");
    println!("  tools, exactly as in the paper; BitAlign's cheap alignments absorb");
    println!("  the extra work (Figures 15-16 still show end-to-end wins).");

    write_results("minseed_analysis", &MinSeedAnalysis { rows });
}
