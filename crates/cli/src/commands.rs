//! The subcommands: `construct`, `index` (with its `build` subcommand),
//! `map`, `simulate`, `eval` (with its `compare` subcommand), plus the
//! daemon pair `serve` / `request` hosted in [`crate::serve`].
//!
//! Each command is a pure function from parsed [`Options`] to a
//! human-readable report string; file I/O happens at the edges so the
//! integration tests can drive commands exactly as the binary does.

use std::fmt::Write as _;
use std::fs;
use std::io::{BufReader, BufWriter, Cursor, Read, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use segram_core::{
    gaf_record_for, run_backend_eval, sam_record_for, Backend, BackendEval, BackendKind,
    CancelToken, DecodedBlock, ElasticReport, ElasticScheduler, EngineOptions, EngineReport,
    EvalRead, MapEngine, QueueStats, ReadMapper, ReadOutcome, SegramConfig, SegramMapper,
    ShardAffinity, ShardedIndex, WorkQueue,
};
use segram_filter::FilterSpec;
use segram_graph::{build_graph, gfa, ConstructedGraph, DnaSeq, GenomeGraph, VariantSet};
use segram_index::{
    frequency_threshold, initial_changelog, read_index_file, update_store, write_index_file,
    GraphIndex, IndexProvenance, MinimizerScheme, PersistedIndex, INDEX_FORMAT_VERSION,
};
use segram_io::{
    bgzf_compress, looks_like_gzip, phred_from_error_rate, read_fasta, read_vcf, write_fasta,
    write_fastq, write_vcf, Ambiguity, BgzfBlock, BgzfBlocks, BgzfError, BgzfMode, BgzfWriter,
    FastaRecord, FastqFramer, FastqReader, FastqRecord, FastqSplice, GafWriter, RawFastqRecord,
    SamWriter, StreamError, VcfOptions, BGZF_MAX_PLAIN,
};
use segram_sim::{
    generate_reference, simulate_reads, simulate_variants, ErrorProfile, GenomeConfig, ReadConfig,
    VariantConfig,
};
use segram_testkit::Serialize;

use crate::args::Options;
use crate::error::CliError;

/// Top-level usage text.
pub const USAGE: &str = "\
segram — universal sequence-to-graph and sequence-to-sequence mapper
(Rust reproduction of SeGraM, ISCA 2022)

USAGE:
    segram <COMMAND> [OPTIONS]

COMMANDS:
    construct   Build a genome graph from a FASTA reference and a VCF
    index       Build the minimizer index for a graph and report footprints
                (`index build`: persist graph + index to a .sgi file)
    map         Map FASTQ reads to a graph, emitting SAM or GAF
    serve       Long-lived mapping daemon over a persistent .sgi index,
                multiplexing concurrent requests through one shared engine
    request     Line-protocol client for `segram serve`
    simulate    Generate a synthetic reference/VCF/graph/reads bundle
    bgzip       BGZF-compress a file with the in-tree DEFLATE compressor
                (`segram map` auto-detects BGZF-compressed FASTQ)
    eval        Evaluation harnesses (`eval compare`: same reads through
                several mapping backends, one comparison table)

Run `segram <COMMAND> --help` for per-command options.
";

fn read_file(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|e| CliError::io(path, e))
}

pub(crate) fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| CliError::io(path, e))?;
        }
    }
    fs::write(path, contents).map_err(|e| CliError::io(path, e))
}

fn ambiguity(options: &Options) -> Ambiguity {
    if options.switch("lenient") {
        Ambiguity::Substitute(segram_graph::Base::A)
    } else {
        Ambiguity::Reject
    }
}

fn load_graph(path: &str) -> Result<GenomeGraph, CliError> {
    let text = read_file(path)?;
    Ok(gfa::from_gfa(&text)?)
}

// ---------------------------------------------------------------------------
// construct
// ---------------------------------------------------------------------------

const CONSTRUCT_HELP: &str = "\
segram construct — build a genome graph from a reference and variants
(the paper's `vg construct` + `vg ids -s` pre-processing, Section 5)

OPTIONS:
    --reference <ref.fa>   FASTA reference (required)
    --vcf <vars.vcf>       VCF with variants (optional: none = linear graph)
    --output <graph.gfa>   output GFA path (required)
    --chrom <name>         FASTA record / VCF CHROM to use (default: first)
    --lenient              substitute ambiguous bases and skip unsupported
                           VCF records instead of failing
";

/// Shared FASTA(+VCF) → graph front half of `construct` and
/// `index build`: picks the reference record (`--chrom` or first),
/// collects its variants, and builds the graph. Returns the record id,
/// the reference sequence, the constructed graph, the variant count, and
/// the VCF-skipped count.
fn build_reference_graph(
    options: &Options,
) -> Result<(String, DnaSeq, ConstructedGraph, usize, usize), CliError> {
    let ref_path = options.require("reference")?;
    let records = read_fasta(&read_file(ref_path)?, ambiguity(options))
        .map_err(|e| CliError::format(ref_path, e))?;
    let record = match options.get("chrom") {
        Some(name) => records
            .iter()
            .find(|r| r.id == name)
            .ok_or_else(|| CliError::usage(format!("{ref_path}: no record named {name:?}")))?,
        None => records
            .first()
            .ok_or_else(|| CliError::usage(format!("{ref_path}: empty FASTA")))?,
    };

    let (variants, skipped) = match options.get("vcf") {
        None => (VariantSet::new(), 0),
        Some(vcf_path) => {
            let vcf_options = if options.switch("lenient") {
                VcfOptions::lenient()
            } else {
                VcfOptions::default()
            };
            let doc = read_vcf(&read_file(vcf_path)?, vcf_options)
                .map_err(|e| CliError::format(vcf_path, e))?;
            let skipped = doc.skipped;
            let set = doc
                .chrom(&record.id)
                .cloned()
                .or_else(|| doc.per_chrom.values().next().cloned())
                .unwrap_or_default();
            (set, skipped)
        }
    };

    let variant_count = variants.len();
    let built = build_graph(&record.seq, variants.into_sorted())?;
    Ok((
        record.id.clone(),
        record.seq.clone(),
        built,
        variant_count,
        skipped,
    ))
}

/// `segram construct`.
pub fn construct(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(CONSTRUCT_HELP.to_owned());
    }
    options.reject_unknown(&["reference", "vcf", "output", "chrom", "lenient"])?;
    let out_path = options.require("output")?;
    let (record_id, _, built, variant_count, skipped) = build_reference_graph(options)?;
    write_file(out_path, &gfa::to_gfa(&built.graph))?;

    let stats = built.graph.stats();
    let mut report = String::new();
    let _ = writeln!(report, "constructed {out_path} from {record_id}:");
    let _ = writeln!(
        report,
        "  {} nodes, {} edges, {} characters",
        stats.node_count, stats.edge_count, stats.total_chars
    );
    let _ = writeln!(
        report,
        "  {} variants embedded ({} dropped as overlapping, {} skipped in VCF)",
        variant_count - built.dropped_variants,
        built.dropped_variants,
        skipped
    );
    Ok(report)
}

// ---------------------------------------------------------------------------
// index
// ---------------------------------------------------------------------------

const INDEX_HELP: &str = "\
segram index — build the minimizer hash-table index and report the
Figure 5/6 memory footprints

USAGE:
    segram index [OPTIONS]          footprint report (below)
    segram index build [OPTIONS]    persist graph + index to a .sgi file
                                    (`segram index build --help`)
    segram index update [OPTIONS]   apply a VCF delta to a .sgi store
                                    (`segram index update --help`)
    segram index inspect [OPTIONS]  dump a store's sections, provenance,
                                    and epoch history
                                    (`segram index inspect --help`)

OPTIONS:
    --graph <graph.gfa>   input graph (required)
    --w <int>             minimizer window (default 10)
    --k <int>             k-mer length (default 15)
    --buckets <int>       log2 of the first-level bucket count (default 16)
";

/// `segram index`.
pub fn index(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(INDEX_HELP.to_owned());
    }
    options.reject_unknown(&["graph", "w", "k", "buckets"])?;
    let graph = load_graph(options.require("graph")?)?;
    let w: usize = options.number("w", 10)?;
    let k: usize = options.number("k", 15)?;
    let bucket_bits: u32 = options.number("buckets", 16)?;
    if !(1..=32).contains(&bucket_bits) {
        return Err(CliError::usage("--buckets must be within 1..=32"));
    }
    if !(1..=31).contains(&k) || w == 0 {
        return Err(CliError::usage("--k must be 1..=31 and --w >= 1"));
    }

    let index = GraphIndex::build(&graph, MinimizerScheme::new(w, k), bucket_bits);
    let stats = graph.stats();
    let graph_bytes =
        stats.node_count as u64 * 32 + stats.total_chars.div_ceil(4) + stats.edge_count as u64 * 4;
    let footprint = index.footprint();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "graph: {} nodes, {} edges, {} chars -> {} bytes (32 B/node + 2 bit/char + 4 B/edge)",
        stats.node_count, stats.edge_count, stats.total_chars, graph_bytes
    );
    let _ = writeln!(
        report,
        "index (<w,k> = <{w},{k}>, 2^{bucket_bits} buckets):"
    );
    let _ = writeln!(
        report,
        "  level 1 (buckets):    {:>12} bytes",
        footprint.bucket_bytes
    );
    let _ = writeln!(
        report,
        "  level 2 (minimizers): {:>12} bytes",
        footprint.minimizer_bytes
    );
    let _ = writeln!(
        report,
        "  level 3 (locations):  {:>12} bytes",
        footprint.location_bytes
    );
    let _ = writeln!(
        report,
        "  total:                {:>12} bytes (max {} minimizers in one bucket)",
        footprint.total_bytes(),
        footprint.max_minimizers_per_bucket
    );
    Ok(report)
}

// ---------------------------------------------------------------------------
// index build
// ---------------------------------------------------------------------------

const INDEX_BUILD_HELP: &str = "\
segram index build — construct the graph and its minimizer index once,
persist both to a versioned .sgi file (magic + section table + checksums)

`segram map --index ref.sgi` and `segram serve --index ref.sgi` load the
file instead of re-running construction and indexing; a load round-trips
byte-identically and a corrupt or truncated file fails with a named
error, never a panic.

OPTIONS:
    --reference <ref.fa>  FASTA reference (required)
    --vcf <vars.vcf>      VCF with variants (optional: none = linear graph)
    --output <ref.sgi>    output index path (required)
    --chrom <name>        FASTA record / VCF CHROM to use (default: first)
    --preset <short|long5|long10>
                          scheme/bucket/discard defaults (default short)
    --w <int>             minimizer window override
    --k <int>             k-mer length override
    --buckets <int>       log2 bucket-count override
    --discard <float>     most-frequent-minimizer discard fraction override
    --lenient             substitute ambiguous bases and skip unsupported
                          VCF records instead of failing
";

/// `segram index build`.
pub fn index_build(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(INDEX_BUILD_HELP.to_owned());
    }
    options.reject_unknown(&[
        "reference",
        "vcf",
        "output",
        "chrom",
        "preset",
        "w",
        "k",
        "buckets",
        "discard",
        "lenient",
    ])?;
    let out_path = options.require("output")?;
    let config = preset(options.get("preset").unwrap_or("short"))?;
    let w: usize = options.number("w", config.scheme.w)?;
    let k: usize = options.number("k", config.scheme.k)?;
    let bucket_bits: u32 = options.number("buckets", config.bucket_bits)?;
    let discard_frac: f64 = options.number("discard", config.discard_frac)?;
    if !(1..=32).contains(&bucket_bits) {
        return Err(CliError::usage("--buckets must be within 1..=32"));
    }
    if !(1..=31).contains(&k) || w == 0 {
        return Err(CliError::usage("--k must be 1..=31 and --w >= 1"));
    }
    if !(0.0..=1.0).contains(&discard_frac) {
        return Err(CliError::usage("--discard must be within 0.0..=1.0"));
    }

    let (record_id, reference, built, variant_count, _) = build_reference_graph(options)?;
    let index = GraphIndex::build(&built.graph, MinimizerScheme::new(w, k), bucket_bits);
    let freq_threshold = frequency_threshold(&index, discard_frac);
    let footprint = index.footprint();
    let distinct = index.distinct_minimizers();
    let source = options.get("vcf").unwrap_or("build").to_owned();
    let changelog = initial_changelog(reference, &built, source);
    let provenance = IndexProvenance {
        reference_path: options.require("reference")?.to_owned(),
        vcf_paths: options.get("vcf").map(str::to_owned).into_iter().collect(),
        preset: options.get("preset").unwrap_or("short").to_owned(),
        epoch: 0,
    };
    let persisted = PersistedIndex {
        graph: built.graph,
        index,
        discard_frac,
        freq_threshold,
        changelog: Some(changelog),
        provenance: Some(provenance),
    };
    let bytes = write_index_file(&persisted, out_path).map_err(|e| CliError::index(out_path, e))?;

    let stats = persisted.graph.stats();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "wrote {out_path}: format v{INDEX_FORMAT_VERSION}, {bytes} bytes"
    );
    let _ = writeln!(
        report,
        "  graph: {} nodes, {} edges, {} characters from {record_id} \
         ({} variants embedded)",
        stats.node_count,
        stats.edge_count,
        stats.total_chars,
        variant_count - built.dropped_variants
    );
    let _ = writeln!(
        report,
        "  index: <w,k> = <{w},{k}>, 2^{bucket_bits} buckets, {distinct} distinct \
         minimizers ({} bytes in memory)",
        footprint.total_bytes()
    );
    let _ = writeln!(
        report,
        "  frequency threshold {freq_threshold} (discard fraction {discard_frac})"
    );
    let _ = writeln!(
        report,
        "  changelog: epoch 0, identity {:#018x}",
        persisted.identity()
    );
    Ok(report)
}

// ---------------------------------------------------------------------------
// index update / index inspect
// ---------------------------------------------------------------------------

const INDEX_UPDATE_HELP: &str = "\
segram index update — apply a VCF delta to a persisted .sgi store

The store carries its own linear reference and embedded variant set (the
CHANGELOG section), so no FASTA is needed: the delta is applied against
the persisted state alone, minimizers are re-extracted only for the
coordinate ranges the delta touched, and the output is byte-identical to
a from-scratch `index build` over the combined VCFs. The store's epoch
advances by one and the history chain records what changed.

Stores written before the changelog existed fail with a named error and
must be rebuilt once with `index build`.

OPTIONS:
    --index <ref.sgi>     parent store (required)
    --vcf <delta.vcf>     VCF with the delta variants (required)
    --output <out.sgi>    output store path (required; the write is
                          atomic, so it may equal --index)
    --chrom <name>        VCF CHROM to use (default: first)
    --lenient             skip unsupported VCF records instead of failing
";

/// `segram index update`.
pub fn index_update(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(INDEX_UPDATE_HELP.to_owned());
    }
    options.reject_unknown(&["index", "vcf", "output", "chrom", "lenient"])?;
    let index_path = options.require("index")?;
    let vcf_path = options.require("vcf")?;
    let out_path = options.require("output")?;

    let parent = read_index_file(index_path).map_err(|e| CliError::index(index_path, e))?;
    let vcf_options = if options.switch("lenient") {
        VcfOptions::lenient()
    } else {
        VcfOptions::default()
    };
    let doc =
        read_vcf(&read_file(vcf_path)?, vcf_options).map_err(|e| CliError::format(vcf_path, e))?;
    let skipped = doc.skipped;
    let delta = match options.get("chrom") {
        Some(name) => doc
            .chrom(name)
            .cloned()
            .ok_or_else(|| CliError::usage(format!("{vcf_path}: no CHROM named {name:?}")))?,
        None => doc.per_chrom.values().next().cloned().unwrap_or_default(),
    };
    let delta_count = delta.len();

    let outcome =
        update_store(&parent, &delta, vcf_path).map_err(|e| CliError::index(index_path, e))?;
    let bytes =
        write_index_file(&outcome.persisted, out_path).map_err(|e| CliError::index(out_path, e))?;

    let log = outcome
        .persisted
        .changelog
        .as_ref()
        .expect("update always writes a changelog");
    let total_chars = outcome.persisted.graph.total_chars();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "updated {index_path} -> {out_path}: epoch {}, {bytes} bytes",
        log.epoch
    );
    let _ = writeln!(
        report,
        "  delta: {} of {delta_count} variants embedded ({} dropped as conflicting, \
         {skipped} skipped in VCF)",
        outcome.log.added_variants, outcome.log.dropped_variants
    );
    let _ = writeln!(
        report,
        "  touched {} coordinate ranges: re-extracted {} of {total_chars} chars \
         across {} fresh nodes",
        outcome.log.touched.len(),
        outcome.stats.extracted_chars,
        outcome.stats.fresh_nodes
    );
    let _ = writeln!(
        report,
        "  index: {} locations carried, {} extracted, {} dropped",
        outcome.stats.carried_locations,
        outcome.stats.extracted_locations,
        outcome.stats.dropped_locations
    );
    let _ = writeln!(
        report,
        "  identity {:#018x} (parent {:#018x})",
        log.identity, log.parent
    );
    Ok(report)
}

const INDEX_INSPECT_HELP: &str = "\
segram index inspect — dump a persisted store's layout and lineage

Prints the section table (id, size, checksum), the graph and index
summaries, the build provenance recorded in the META section, and the
full epoch history chain from the CHANGELOG section.

OPTIONS:
    --index <ref.sgi>     store to inspect (required)
";

/// `segram index inspect`.
pub fn index_inspect(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(INDEX_INSPECT_HELP.to_owned());
    }
    options.reject_unknown(&["index"])?;
    let path = options.require("index")?;
    let bytes = fs::read(path).map_err(|e| CliError::io(path, e))?;
    let loaded = read_index_file(path).map_err(|e| CliError::index(path, e))?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "{path}: format v{INDEX_FORMAT_VERSION}, {} bytes",
        bytes.len()
    );
    // Section dump straight from the table (decode already verified it).
    let mut r = segram_io::ByteReader::new(&bytes);
    let corrupted = |_| CliError::usage(format!("{path}: header truncated"));
    r.take_bytes(8).map_err(corrupted)?;
    r.take_u32().map_err(corrupted)?;
    let section_count = r.take_u32().map_err(corrupted)?;
    for _ in 0..section_count {
        let id = r.take_u32().map_err(corrupted)?;
        let offset = r.take_u64().map_err(corrupted)?;
        let len = r.take_u64().map_err(corrupted)?;
        let checksum = r.take_u64().map_err(corrupted)?;
        let name = match id {
            1 => "graph",
            2 => "index",
            3 => "meta",
            4 => "changelog",
            _ => "unknown",
        };
        let _ = writeln!(
            report,
            "  section {id} ({name}): {len} bytes at {offset}, fnv1a64 {checksum:#018x}"
        );
    }

    let stats = loaded.graph.stats();
    let _ = writeln!(
        report,
        "  graph: {} nodes, {} edges, {} characters",
        stats.node_count, stats.edge_count, stats.total_chars
    );
    let scheme = loaded.index.scheme();
    let _ = writeln!(
        report,
        "  index: <w,k> = <{},{}>, 2^{} buckets, {} distinct minimizers, \
         {} locations",
        scheme.w,
        scheme.k,
        loaded.index.bucket_bits(),
        loaded.index.distinct_minimizers(),
        loaded.index.total_locations()
    );
    let _ = writeln!(
        report,
        "  meta: frequency threshold {} (discard fraction {})",
        loaded.freq_threshold, loaded.discard_frac
    );
    match &loaded.provenance {
        Some(p) => {
            let _ = writeln!(
                report,
                "  provenance: reference {}, preset {}, epoch {}",
                p.reference_path, p.preset, p.epoch
            );
            if p.vcf_paths.is_empty() {
                let _ = writeln!(report, "    no VCFs applied (linear graph)");
            }
            for (i, vcf) in p.vcf_paths.iter().enumerate() {
                let _ = writeln!(report, "    vcf[{i}]: {vcf}");
            }
        }
        None => {
            let _ = writeln!(report, "  provenance: none recorded");
        }
    }
    match &loaded.changelog {
        Some(log) => {
            let _ = writeln!(
                report,
                "  changelog: epoch {}, identity {:#018x}, parent {:#018x}, \
                 {} variants embedded",
                log.epoch,
                log.identity,
                log.parent,
                log.applied.len()
            );
            for entry in &log.history {
                let _ = writeln!(
                    report,
                    "    epoch {}: {} — {} variants added, {} dropped, \
                     {} ranges touched (identity {:#018x})",
                    entry.epoch,
                    entry.source,
                    entry.added_variants,
                    entry.dropped_variants,
                    entry.touched.len(),
                    entry.identity
                );
            }
        }
        None => {
            let _ = writeln!(
                report,
                "  changelog: none (pre-versioning store; `index update` unavailable)"
            );
        }
    }
    Ok(report)
}

/// Loads a persistent `.sgi` store, mapping persistence errors into the
/// CLI error shape.
pub(crate) fn persisted_from_index_file(path: &str) -> Result<PersistedIndex, CliError> {
    read_index_file(path).map_err(|e| CliError::index(path, e))
}

/// One-line provenance summary of a loaded store, for reports (`serve`'s
/// `active index:` line, reload logs): epoch plus build preset when the
/// store records them.
pub(crate) fn provenance_label(loaded: &PersistedIndex) -> String {
    match (&loaded.provenance, &loaded.changelog) {
        (Some(p), _) => format!("epoch {}, preset {}", p.epoch, p.preset),
        (None, Some(log)) => format!("epoch {}", log.epoch),
        (None, None) => "unversioned".to_owned(),
    }
}

/// Turns a loaded store into a ready [`SegramMapper`]. The scheme, bucket
/// count, and discard fraction recorded in the file override the preset's
/// (seeding reads the scheme from the index itself; overriding keeps
/// reports and derived knobs coherent with it).
pub(crate) fn mapper_from_persisted(
    loaded: PersistedIndex,
    mut config: SegramConfig,
) -> SegramMapper {
    config.scheme = *loaded.index.scheme();
    config.bucket_bits = loaded.index.bucket_bits();
    config.discard_frac = loaded.discard_frac;
    SegramMapper::from_parts(
        Arc::new(loaded.graph),
        loaded.index,
        config,
        loaded.freq_threshold,
    )
}

/// Re-shards a loaded store into `shards` coordinate-range shards
/// (`segram serve --shards`). Applies the same config overrides as
/// [`mapper_from_persisted`], so shard mapping stays byte-identical to the
/// monolithic loaded index.
pub(crate) fn sharded_from_persisted(
    loaded: PersistedIndex,
    mut config: SegramConfig,
    shards: usize,
) -> ShardedIndex {
    config.scheme = *loaded.index.scheme();
    config.bucket_bits = loaded.index.bucket_bits();
    config.discard_frac = loaded.discard_frac;
    // `from_persisted` keeps the store's changelog lineage, which is what
    // lets a later RELOAD take the dirty-shard delta route.
    ShardedIndex::from_persisted(loaded, config, shards)
}

// ---------------------------------------------------------------------------
// map
// ---------------------------------------------------------------------------

const MAP_HELP: &str = "\
segram map — map FASTQ reads to a genome graph (MinSeed + BitAlign)

Reads are streamed through the stage pipeline (seed -> prefilter -> align)
by a batched multi-threaded engine; output order is the input order and is
byte-identical for every --threads and --shards value.

OPTIONS:
    --graph <graph.gfa>    input graph (one of --graph/--index required)
    --index <ref.sgi>      persistent index from `segram index build`:
                           skips construction + indexing entirely (the
                           file records the scheme, buckets, and discard
                           fraction; --backend segram only — --shards
                           re-shards the loaded store)
    --reads <reads.fq>     input FASTQ, plain or BGZF-compressed (required;
                           the container is auto-detected by its gzip
                           magic — blocks are sliced by the producer and
                           inflated on the worker threads)
    --output <path>        output file (default: stdout section of report)
    --format <sam|gaf>     output format (default sam)
    --output-sam <path>    split emission: write SAM here and (with
                           --output-gaf) GAF in the same pass, each on its
                           own writer thread; exclusive with
                           --output/--format
    --output-gaf <path>    split emission: the GAF half (see --output-sam)
    --batch-size <n|auto|auto:MIN:MAX>
                           reads per engine batch: a fixed count, or
                           `auto` to let the producer grow/shrink the
                           batch from queue depth/stall imbalance
                           (default auto bounds 4:256; --schedule fanout
                           only)
    --backend <segram|graphaligner|vg|hga>
                           mapping backend (default segram); the software
                           baselines run through the same engine for
                           apples-to-apples comparison (`segram eval
                           compare` runs several at once)
    --threads <int>        worker threads (default: all available cores)
    --shards <int>         split the index into N coordinate-range shards
                           with a seeding router in front (default 1; the
                           software analogue of the paper's per-HBM-channel
                           accelerator instances; --backend segram only)
    --schedule <fanout|elastic>
                           worker schedule (default fanout: all workers pop
                           one shared queue). elastic gives each shard group
                           a dedicated worker pool with its own queue,
                           routes batches by their dominant shard group, and
                           rebalances shard ownership live; output bytes are
                           identical either way (--backend segram only)
    --preset <short|long5|long10>
                           mapper preset (default short)
    --filter <none|base-count|qgram|shd|snake|cascade>
                           pre-alignment filter (default none, as in the
                           paper; --backend segram only)
    --both-strands         also try each read's reverse complement
    --compress-output      BGZF-compress the output document(s) on the
                           writer threads (requires a file output; a clean
                           close appends the canonical 28-byte EOF marker)
    --lenient              substitute ambiguous read bases instead of failing
";

pub(crate) fn preset(name: &str) -> Result<SegramConfig, CliError> {
    match name {
        "short" => Ok(SegramConfig::short_reads()),
        "long5" => Ok(SegramConfig::long_reads(0.05)),
        "long10" => Ok(SegramConfig::long_reads(0.10)),
        other => Err(CliError::usage(format!(
            "unknown preset {other:?} (expected short|long5|long10)"
        ))),
    }
}

fn filter_spec(name: &str) -> Result<Option<FilterSpec>, CliError> {
    match name {
        "none" => Ok(None),
        "base-count" => Ok(Some(FilterSpec::BaseCount)),
        "qgram" => Ok(Some(FilterSpec::QGram { q: 5 })),
        "shd" => Ok(Some(FilterSpec::ShiftedHamming)),
        "snake" => Ok(Some(FilterSpec::SneakySnake)),
        "cascade" => Ok(Some(FilterSpec::cascade())),
        other => Err(CliError::usage(format!(
            "unknown filter {other:?} (expected none|base-count|qgram|shd|snake|cascade)"
        ))),
    }
}

/// Worker-thread count for `segram map` / `segram serve`: `--threads N`
/// with `N >= 1`, or every available core when the option is absent.
pub(crate) fn thread_count(options: &Options) -> Result<usize, CliError> {
    match options.get("threads") {
        None => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
        Some(text) => match text.parse::<usize>() {
            Ok(0) => Err(CliError::usage("--threads must be at least 1")),
            Ok(n) => Ok(n),
            Err(_) => Err(CliError::usage(format!(
                "--threads: unparsable value {text:?}"
            ))),
        },
    }
}

/// Mapping backend for `segram map` / `segram eval compare`:
/// `--backend name` (default the native SeGraM pipeline).
fn backend_kind(options: &Options) -> Result<BackendKind, CliError> {
    match options.get("backend") {
        None => Ok(BackendKind::Segram),
        Some(name) => BackendKind::parse(name).ok_or_else(|| {
            CliError::usage(format!(
                "unknown backend {name:?} (expected segram|graphaligner|vg|hga)"
            ))
        }),
    }
}

/// Rejects `--shards` for backends without a sharded index, pointing at
/// the fix instead of silently ignoring the flag.
fn reject_foreign_shards(backend: BackendKind, options: &Options) -> Result<(), CliError> {
    if !backend.supports_shards() && options.get("shards").is_some() {
        return Err(CliError::usage(format!(
            "--shards only applies to --backend segram (the coordinate-range sharded \
             index is SeGraM's per-HBM-channel split); drop --shards or use \
             --backend segram to shard, got --backend {}",
            backend.name()
        )));
    }
    Ok(())
}

/// Rejects `--filter` for the baseline backends, which run their own
/// fixed filtering surrogates (chaining, region truncation) and never
/// consult the SeGraM prefilter stage — silently ignoring the flag would
/// make a filtered-vs-filtered comparison apples-to-oranges.
fn reject_foreign_filter(backend: BackendKind, options: &Options) -> Result<(), CliError> {
    if backend != BackendKind::Segram && options.get("filter").is_some() {
        return Err(CliError::usage(format!(
            "--filter only applies to --backend segram (the baselines have fixed \
             filtering of their own); drop --filter for --backend {}",
            backend.name()
        )));
    }
    Ok(())
}

/// Index-shard count for `segram map` / `segram serve`: `--shards N`
/// with `N >= 1` (default 1 = the unsharded mapper).
pub(crate) fn shard_count(options: &Options) -> Result<usize, CliError> {
    match options.get("shards") {
        None => Ok(1),
        Some(text) => match text.parse::<usize>() {
            Ok(0) => Err(CliError::usage("--shards must be at least 1")),
            Ok(n) => Ok(n),
            Err(_) => Err(CliError::usage(format!(
                "--shards: unparsable value {text:?}"
            ))),
        },
    }
}

/// Worker schedule for `segram map` / `segram serve`: the default fanout
/// (one shared queue) or the elastic per-shard-group pool schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Schedule {
    /// Every worker pops the one shared queue; shard affinity is a plan.
    Fanout,
    /// Per-shard-group worker pools with routed batches and live
    /// rebalancing ([`ElasticScheduler`]).
    Elastic,
}

/// Parses `--schedule fanout|elastic` (default fanout).
pub(crate) fn schedule_kind(options: &Options) -> Result<Schedule, CliError> {
    match options.get("schedule") {
        None | Some("fanout") => Ok(Schedule::Fanout),
        Some("elastic") => Ok(Schedule::Elastic),
        Some(other) => Err(CliError::usage(format!(
            "unknown schedule {other:?} (expected fanout|elastic)"
        ))),
    }
}

/// How `segram map` sizes engine batches: a fixed read count or the
/// producer-side adaptive controller within `[min, max]` bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BatchSpec {
    Fixed(usize),
    Auto { min: usize, max: usize },
}

/// Default `--batch-size auto` bounds: wide enough to matter, small
/// enough that one batch never dominates the reorder window.
const AUTO_BATCH_MIN: usize = 4;
const AUTO_BATCH_MAX: usize = 256;

/// Parses `--batch-size N`, `--batch-size auto`, or
/// `--batch-size auto:MIN:MAX` (absent = the engine's fixed default).
fn batch_spec(options: &Options) -> Result<Option<BatchSpec>, CliError> {
    let Some(text) = options.get("batch-size") else {
        return Ok(None);
    };
    if text == "auto" {
        return Ok(Some(BatchSpec::Auto {
            min: AUTO_BATCH_MIN,
            max: AUTO_BATCH_MAX,
        }));
    }
    if let Some(bounds) = text.strip_prefix("auto:") {
        let parts: Vec<&str> = bounds.split(':').collect();
        let parsed = match parts.as_slice() {
            [min, max] => min
                .parse::<usize>()
                .ok()
                .zip(max.parse::<usize>().ok())
                .filter(|(min, max)| *min >= 1 && max >= min),
            _ => None,
        };
        return match parsed {
            Some((min, max)) => Ok(Some(BatchSpec::Auto { min, max })),
            None => Err(CliError::usage(format!(
                "--batch-size: expected auto:MIN:MAX with 1 <= MIN <= MAX, got {text:?}"
            ))),
        };
    }
    match text.parse::<usize>() {
        Ok(0) => Err(CliError::usage("--batch-size must be at least 1")),
        Ok(n) => Ok(Some(BatchSpec::Fixed(n))),
        Err(_) => Err(CliError::usage(format!(
            "--batch-size: expected a count, auto, or auto:MIN:MAX, got {text:?}"
        ))),
    }
}

/// The opened reads file with its sniffed head re-attached, so both the
/// plain framer and the BGZF slicer see the stream from byte zero.
type ReadsSource = std::io::Chain<Cursor<Vec<u8>>, fs::File>;

/// An opened `--reads` file, classified by its leading magic bytes.
struct MapReads {
    source: ReadsSource,
    /// The file starts with the gzip magic: BGZF path.
    compressed: bool,
}

/// Opens the reads file and sniffs the first two bytes for the gzip
/// magic (BGZF members are gzip members). The consumed head is chained
/// back in front of the file handle.
fn open_reads(reads_path: &str) -> Result<MapReads, CliError> {
    let mut file = fs::File::open(reads_path).map_err(|e| CliError::io(reads_path, e))?;
    let mut head = Vec::with_capacity(2);
    let mut byte = [0u8; 1];
    while head.len() < 2 {
        match file.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(CliError::io(reads_path, err)),
        }
    }
    let compressed = looks_like_gzip(&head);
    Ok(MapReads {
        source: Cursor::new(head).chain(file),
        compressed,
    })
}

/// Where `segram map` gets its graph + index from: a GFA file (construct
/// the index now) or a persistent `.sgi` file (load both).
enum MapSource<'a> {
    Graph(&'a str),
    Index(&'a str),
}

/// What `segram map` emits: one document in one format (to a file or the
/// report), or the split dual-format pass (SAM and GAF in one mapping
/// run, each document on its own writer thread).
#[derive(Clone, Copy, Debug)]
enum OutputPlan<'a> {
    Single {
        format: &'a str,
        path: Option<&'a str>,
    },
    Split {
        sam: &'a str,
        gaf: &'a str,
    },
}

/// Where the streamed output records go: a buffered file, a
/// BGZF-compressing file (`--compress-output`), or an in-memory buffer
/// that is appended to the report (the no-`--output` case).
enum MapTarget {
    File(BufWriter<fs::File>),
    /// `--compress-output`: members are cut on the thread that writes the
    /// document (the engine's writer thread, or a split-pass byte-writer
    /// thread), and the 28-byte EOF marker lands in the clean-close path.
    Bgzf(BgzfWriter<BufWriter<fs::File>>),
    Memory(Vec<u8>),
}

impl MapTarget {
    /// Wraps a created output file, compressing when asked to.
    fn file(file: BufWriter<fs::File>, compress: bool) -> Self {
        if compress {
            Self::Bgzf(BgzfWriter::new(file, BgzfMode::Fixed))
        } else {
            Self::File(file)
        }
    }

    /// Clean close: flushes a plain file, or cuts the tail member and
    /// appends the canonical BGZF EOF marker. (An error path never gets
    /// here, so an aborted compressed document stays EOF-less — readers
    /// classify it as truncated.)
    fn finish(self, path: &str) -> Result<(), CliError> {
        match self {
            Self::Bgzf(w) => w.finish().map(drop).map_err(|e| CliError::io(path, e)),
            Self::File(mut w) => w.flush().map_err(|e| CliError::io(path, e)),
            Self::Memory(_) => Ok(()),
        }
    }
}

impl Write for MapTarget {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::File(w) => w.write(buf),
            Self::Bgzf(w) => w.write(buf),
            Self::Memory(w) => w.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::File(w) => w.flush(),
            Self::Bgzf(w) => w.flush(),
            Self::Memory(w) => w.flush(),
        }
    }
}

/// The format-specific streaming writer side of `segram map`.
enum MapWriter {
    Sam(SamWriter<MapTarget>),
    Gaf(GafWriter<MapTarget>),
}

/// Everything one engine pass produces that the report needs.
struct EngineRun {
    report: EngineReport,
    batch_size: usize,
    /// Worker affinity plan (sharded fanout runs only): per group, the
    /// shard ids pinned to it.
    affinity: Option<Vec<Vec<usize>>>,
    /// The full elastic report (elastic runs only): per-pool
    /// depth/stall/batch counters plus route/spill/migration totals.
    elastic: Option<ElasticReport>,
    /// The run consumed a BGZF-compressed stream (the report then shows
    /// the inflate stage time).
    compressed: bool,
    output: RunOutput,
}

/// The output half of an [`EngineRun`], matching the [`OutputPlan`].
enum RunOutput {
    /// The single-document target (holds the rendered bytes when no
    /// `--output` path was given).
    Single(MapTarget),
    /// Split emission ran: the per-channel queue counters of the two
    /// writer threads (push side = the engine's sink, pop side = the
    /// file writer). Boxed to keep the enum near the `Single` size.
    Split {
        sam_stats: Box<QueueStats>,
        gaf_stats: Box<QueueStats>,
    },
}

/// How `run_map_stream` drives the engine: the fanout [`MapEngine`] (with
/// an optional informational affinity plan) or the [`ElasticScheduler`]
/// over a sharded index.
enum MapSchedule<'a> {
    Fanout(Option<ShardAffinity>),
    Elastic(&'a ShardedIndex, ShardAffinity),
}

/// Removes partially written output files on drop unless disarmed — the
/// one cleanup path for the header-failure case, the post-run failure
/// case, and every early `?` in between, so no truncated document ever
/// survives an error. Declare it *before* the writers: drop order then
/// guarantees the `BufWriter` handles are flushed and closed before the
/// files are unlinked. Holds up to two paths (the split SAM+GAF pass).
struct OutputCleanup<'a> {
    paths: Vec<&'a str>,
}

impl<'a> OutputCleanup<'a> {
    /// A guard armed for nothing yet.
    fn new() -> Self {
        Self { paths: Vec::new() }
    }

    /// Arms the guard for one more created file.
    fn arm(&mut self, path: &'a str) {
        self.paths.push(path);
    }

    /// Keeps the files: the run completed and flushed successfully.
    fn disarm(&mut self) {
        self.paths.clear();
    }
}

impl Drop for OutputCleanup<'_> {
    fn drop(&mut self) {
        for path in &self.paths {
            let _ = fs::remove_file(path);
        }
    }
}

/// Takes the first recorded error out of a worker-shared slot.
fn take_error<E>(slot: Mutex<Option<E>>) -> Option<E> {
    slot.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// Input-side error slots shared between the producer and the workers:
/// each family records the earliest failure it can observe.
#[derive(Default)]
struct InputErrors {
    /// Plain path: the producer's framing/transport error.
    frame: Mutex<Option<StreamError>>,
    /// Compressed path: the producer's block-slicing error (bad framing,
    /// truncation, a missing EOF marker).
    bgzf_frame: Mutex<Option<BgzfError>>,
    /// Compressed path: the earliest worker-side block error (corrupt
    /// DEFLATE data, checksum mismatches), keyed by block index.
    bgzf_block: Mutex<Option<(usize, BgzfError)>>,
    /// The earliest FASTQ decode error, keyed by line number.
    decode: Mutex<Option<(usize, StreamError)>>,
}

/// Resolves the input-side slots into the one error the user sees.
///
/// Priority: the slicer's own error first — a producer failure cancels
/// the run before every queued block is inflated, so whether a worker
/// slot also filled is a race; the producer slot is not. Then the
/// earliest worker block error and the earliest FASTQ decode error —
/// both deterministic the other way round: the failing worker puts the
/// engine in settle mode, which drains every block and record before the
/// failure whatever the thread count.
fn input_failure(errors: InputErrors, reads_path: &str) -> Option<CliError> {
    if let Some(err) = take_error(errors.bgzf_frame) {
        return Some(CliError::bgzf(reads_path, err));
    }
    if let Some((_, err)) = take_error(errors.bgzf_block) {
        return Some(CliError::bgzf(reads_path, err));
    }
    match take_error(errors.frame).or_else(|| take_error(errors.decode).map(|(_, err)| err)) {
        Some(StreamError::Io(err)) => Some(CliError::io(reads_path, err)),
        Some(StreamError::Format(err)) => Some(CliError::format(reads_path, err)),
        None => None,
    }
}

/// The plain producer: slices raw FASTQ record frames off block reads
/// ([`FastqFramer`]); it never parses FASTQ. A transport error stops the
/// stream, records itself, and cancels the run.
fn plain_frames<'a>(
    source: ReadsSource,
    cancel: &CancelToken,
    errors: &'a InputErrors,
) -> impl Iterator<Item = RawFastqRecord> + 'a {
    let cancel = cancel.clone();
    let mut framer = FastqFramer::new(source);
    std::iter::from_fn(move || {
        if cancel.is_cancelled() {
            return None;
        }
        match framer.next() {
            Some(Ok(raw)) => Some(raw),
            Some(Err(err)) => {
                *errors.frame.lock().unwrap_or_else(PoisonError::into_inner) = Some(err);
                cancel.cancel();
                None
            }
            None => None,
        }
    })
}

/// The compressed producer: slices still-compressed BGZF blocks
/// ([`BgzfBlocks`]) — inflation happens on the worker threads. A framing
/// error stops the stream, records itself, and cancels the run.
fn bgzf_frames<'a>(
    source: ReadsSource,
    cancel: &CancelToken,
    errors: &'a InputErrors,
) -> impl Iterator<Item = BgzfBlock> + 'a {
    let cancel = cancel.clone();
    let mut blocks = BgzfBlocks::new(source);
    std::iter::from_fn(move || {
        if cancel.is_cancelled() {
            return None;
        }
        match blocks.next() {
            Some(Ok(block)) => Some(block),
            Some(Err(err)) => {
                *errors
                    .bgzf_frame
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(err);
                cancel.cancel();
                None
            }
            None => None,
        }
    })
}

/// Runs the engine pass for one schedule × input-encoding combination
/// with the given writer-thread sink, returning the engine report, the
/// configured batch size, the fanout affinity plan, and the elastic
/// report. Producer-side framing errors and worker-side inflate/decode
/// errors land in `errors`; the first of any of them cancels the run.
///
/// Worker-stage decode: FASTQ parsing happens on the mapping threads,
/// timed into `MapStats::decode` (and, on the compressed path, block
/// inflation timed into `MapStats::inflate`). The earliest failing
/// record wins its slot, and the engine settles in-flight batches
/// decode-only when a decode failure cancels the run, so every record
/// before the observed failure is guaranteed to reach the decode
/// closure: the reported error is deterministically the file's *first*
/// malformed record, whatever the thread count or worker interleaving.
#[allow(clippy::too_many_arguments)]
fn drive_engine<M, F>(
    mapper: &M,
    schedule: MapSchedule<'_>,
    engine_config: EngineOptions,
    reads: MapReads,
    decode_ambiguity: Ambiguity,
    cancel: &CancelToken,
    errors: &InputErrors,
    sink: F,
) -> (
    EngineReport,
    usize,
    Option<Vec<Vec<usize>>>,
    Option<ElasticReport>,
)
where
    M: ReadMapper,
    F: FnMut(FastqRecord, ReadOutcome) + Send,
{
    let decode = |raw: RawFastqRecord| match raw.decode(decode_ambiguity) {
        Ok(record) => Some(record),
        Err(err) => {
            let mut slot = errors.decode.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.as_ref().is_none_or(|(line, _)| raw.line() < *line) {
                *slot = Some((raw.line(), err));
            }
            None
        }
    };
    match (schedule, reads.compressed) {
        (MapSchedule::Fanout(affinity), false) => {
            let engine = match affinity {
                Some(affinity) => MapEngine::with_affinity(mapper, engine_config, affinity),
                None => MapEngine::new(mapper, engine_config),
            };
            let raws = plain_frames(reads.source, cancel, errors);
            let run = engine.map_raw_stream(raws, decode, |record| &record.seq, sink);
            let batch_size = engine.config().batch_size;
            let groups = engine.affinity().map(|a| a.groups().to_vec());
            (run, batch_size, groups, None)
        }
        (MapSchedule::Fanout(affinity), true) => {
            let engine = match affinity {
                Some(affinity) => MapEngine::with_affinity(mapper, engine_config, affinity),
                None => MapEngine::new(mapper, engine_config),
            };
            let blocks = bgzf_frames(reads.source, cancel, errors);
            // Workers inflate their blocks in parallel, then enter the
            // turnstile in block order to re-join records straddling
            // block boundaries against one shared scanner — the decoded
            // record stream is exactly what the plain framer would have
            // produced from the uncompressed bytes.
            let splice = FastqSplice::new();
            let decode_block = |block: BgzfBlock| {
                let started = Instant::now();
                let plain = match block.inflate() {
                    Ok(plain) => plain,
                    Err(err) => {
                        let mut slot = errors
                            .bgzf_block
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        if slot.as_ref().is_none_or(|(at, _)| block.index() < *at) {
                            *slot = Some((block.index(), err));
                        }
                        return None;
                    }
                };
                let raws = splice.splice(block.index(), &plain, block.is_last(), || {
                    cancel.is_cancelled()
                })?;
                // Inflation + the turnstile wait are transport work; what
                // remains of the closure is FASTQ decoding proper.
                let inflate = started.elapsed();
                let mut items = Vec::with_capacity(raws.len());
                for raw in raws {
                    items.push(decode(raw)?);
                }
                Some(DecodedBlock { items, inflate })
            };
            let run = engine.map_block_stream(blocks, decode_block, |record| &record.seq, sink);
            let batch_size = engine.config().batch_size;
            let groups = engine.affinity().map(|a| a.groups().to_vec());
            (run, batch_size, groups, None)
        }
        (MapSchedule::Elastic(sharded, affinity), false) => {
            let scheduler = ElasticScheduler::new(sharded, engine_config, affinity);
            let batch_size = scheduler.config().batch_size;
            let raws = plain_frames(reads.source, cancel, errors);
            let report = scheduler.map_raw_stream(raws, decode, |record| &record.seq, sink);
            (report.engine, batch_size, None, Some(report))
        }
        (MapSchedule::Elastic(..), true) => {
            // The multi-pool elastic schedule cannot feed the in-order
            // splice turnstile without deadlock; `map` rejects the
            // combination before opening the engine.
            unreachable!("BGZF + elastic is rejected at option validation")
        }
    }
}

/// Rendered lines buffered between the engine's sink and one split
/// writer thread.
const SPLIT_QUEUE_LINES: usize = 4096;

/// The body of one split-output writer thread: drains rendered lines
/// from its channel onto the document writer. A write failure records
/// the first error, cancels the run, and closes the channel so the
/// sink's subsequent pushes drop instead of blocking on a reader that
/// is gone.
fn drain_split_channel(
    queue: &WorkQueue<String>,
    mut write_line: impl FnMut(&str) -> std::io::Result<()>,
    cancel: &CancelToken,
    error: &Mutex<Option<std::io::Error>>,
) {
    while let Some(line) = queue.pop() {
        if let Err(err) = write_line(&line) {
            let mut slot = error.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(err);
            }
            cancel.cancel();
            queue.close();
            return;
        }
    }
}

/// Creates an output file (with parent directories), arming the cleanup
/// guard only after the create succeeds — a failed create (say, an
/// unwritable pre-existing file) must never unlink a file this run did
/// not produce.
fn create_output<'a>(
    path: &'a str,
    cleanup: &mut OutputCleanup<'a>,
) -> Result<BufWriter<fs::File>, CliError> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| CliError::io(path, e))?;
        }
    }
    let file = fs::File::create(path).map_err(|e| CliError::io(path, e))?;
    cleanup.arm(path);
    Ok(BufWriter::new(file))
}

/// Streams the FASTQ in `reads` — plain or BGZF-compressed — through a
/// [`MapEngine`] over any [`ReadMapper`] (monolithic or sharded) with
/// fully overlapped IO: the producer thread only frames raw record
/// boundaries (plain) or slices compressed blocks (BGZF); decompression
/// and FASTQ decode run in the worker stage ahead of seeding; and
/// rendering + file writes happen off the mapping threads as each batch
/// is released in input order (on the engine's writer thread, plus one
/// dedicated byte-writer thread per document in the split SAM+GAF
/// pass). A failure at any point (framing, inflation, decode, write)
/// cancels the shared [`CancelToken`] so the whole pipeline stops
/// promptly instead of mapping the rest of the stream first.
#[allow(clippy::too_many_arguments)]
fn run_map_stream<M: ReadMapper>(
    mapper: &M,
    schedule: MapSchedule<'_>,
    threads: usize,
    both: bool,
    options: &Options,
    output: OutputPlan<'_>,
    reads: MapReads,
    reads_path: &str,
    batch: Option<BatchSpec>,
) -> Result<EngineRun, CliError> {
    let cancel = CancelToken::new();
    let errors = InputErrors::default();
    let compressed = reads.compressed;
    let decode_ambiguity = ambiguity(options);
    let mut engine_config = EngineOptions::new()
        .threads(threads)
        .both_strands(both)
        .cancel(cancel.clone());
    match batch {
        Some(BatchSpec::Fixed(n)) => engine_config = engine_config.batch_size(n),
        Some(BatchSpec::Auto { min, max }) => {
            engine_config = engine_config.adaptive_batch(min, max)
        }
        None => {}
    }

    // One RAII guard owns partial-file removal for every failure path
    // below (see `create_output` for the arming rule). It is declared
    // before the writers, so on failure the buffered handles close and
    // flush first, then the files are unlinked.
    let mut cleanup = OutputCleanup::new();
    let compress = options.switch("compress-output");

    match output {
        OutputPlan::Single {
            format,
            path: out_path,
        } => {
            let out_name = out_path.unwrap_or("<report>");
            // Output side: records are rendered and written on the
            // engine's writer thread as their batch is released, so the
            // document is never held in memory when writing to a file.
            let target = match out_path {
                Some(path) => MapTarget::file(create_output(path, &mut cleanup)?, compress),
                None => MapTarget::Memory(Vec::new()),
            };
            let mut writer = match format {
                "sam" => match SamWriter::new(target, "graph", mapper.graph().total_chars()) {
                    Ok(writer) => MapWriter::Sam(writer),
                    // The header failed after the file was created; the
                    // cleanup guard removes the header-less stub.
                    Err(err) => return Err(CliError::io(out_name, err)),
                },
                _ => MapWriter::Gaf(GafWriter::new(target)),
            };

            // Writer-thread sink: render + write only; a failure cancels
            // the run.
            let write_error: Mutex<Option<CliError>> = Mutex::new(None);
            let sink = |record: FastqRecord, outcome: ReadOutcome| {
                let mut slot = write_error.lock().unwrap_or_else(PoisonError::into_inner);
                if slot.is_some() {
                    return;
                }
                let result = match &mut writer {
                    MapWriter::Sam(w) => {
                        let rec = sam_record_for(&record.id, &record.seq, &outcome);
                        w.write_line(&rec.to_sam_line())
                            .map_err(|e| CliError::io(out_name, e))
                    }
                    MapWriter::Gaf(w) => {
                        match gaf_record_for(&record.id, &record.seq, mapper.graph(), &outcome) {
                            Err(e) => Err(CliError::format(reads_path, e)),
                            Ok(None) => Ok(()),
                            Ok(Some(rec)) => {
                                w.write_record(&rec).map_err(|e| CliError::io(out_name, e))
                            }
                        }
                    }
                };
                if let Err(err) = result {
                    *slot = Some(err);
                    cancel.cancel();
                }
            };

            let (run, batch_size, affinity_groups, elastic) = drive_engine(
                mapper,
                schedule,
                engine_config,
                reads,
                decode_ambiguity,
                &cancel,
                &errors,
                sink,
            );

            // Input-side failures outrank output-side ones, mirroring the
            // pre-overlap behaviour (decode errors *are* the old read
            // errors, they just surface from the worker stage now).
            if let Some(err) = input_failure(errors, reads_path).or_else(|| take_error(write_error))
            {
                // The cleanup guard removes the partial file (after
                // `writer` drops and flushes, per declaration order).
                return Err(err);
            }
            let target = match writer {
                MapWriter::Sam(w) => w.finish(),
                MapWriter::Gaf(w) => w.finish(),
            }
            .map_err(|e| CliError::io(out_name, e))?;
            let target = match target {
                // Clean close of a compressed document: cut the tail
                // member and append the BGZF EOF marker.
                MapTarget::Bgzf(w) => {
                    MapTarget::File(w.finish().map_err(|e| CliError::io(out_name, e))?)
                }
                other => other,
            };
            cleanup.disarm();

            Ok(EngineRun {
                report: run,
                batch_size,
                affinity: affinity_groups,
                elastic,
                compressed,
                output: RunOutput::Single(target),
            })
        }
        OutputPlan::Split {
            sam: sam_path,
            gaf: gaf_path,
        } => {
            let sam_file = MapTarget::file(create_output(sam_path, &mut cleanup)?, compress);
            let mut gaf_file = MapTarget::file(create_output(gaf_path, &mut cleanup)?, compress);
            let mut sam_writer = SamWriter::new(sam_file, "graph", mapper.graph().total_chars())
                .map_err(|e| CliError::io(sam_path, e))?;

            // The engine's writer thread renders both documents per
            // record; byte IO happens on one dedicated thread per
            // document, fed by a bounded channel each.
            let sam_queue: WorkQueue<String> = WorkQueue::new(SPLIT_QUEUE_LINES);
            let gaf_queue: WorkQueue<String> = WorkQueue::new(SPLIT_QUEUE_LINES);
            let sam_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
            let gaf_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
            let write_error: Mutex<Option<CliError>> = Mutex::new(None);

            let (run, batch_size, affinity_groups, elastic) = std::thread::scope(|scope| {
                scope.spawn(|| {
                    drain_split_channel(
                        &sam_queue,
                        |line| sam_writer.write_line(line),
                        &cancel,
                        &sam_error,
                    )
                });
                scope.spawn(|| {
                    drain_split_channel(
                        &gaf_queue,
                        |line| {
                            gaf_file.write_all(line.as_bytes())?;
                            gaf_file.write_all(b"\n")
                        },
                        &cancel,
                        &gaf_error,
                    )
                });

                let sink = |record: FastqRecord, outcome: ReadOutcome| {
                    {
                        let slot = write_error.lock().unwrap_or_else(PoisonError::into_inner);
                        if slot.is_some() {
                            return;
                        }
                    }
                    let rec = sam_record_for(&record.id, &record.seq, &outcome);
                    sam_queue.push(rec.to_sam_line());
                    match gaf_record_for(&record.id, &record.seq, mapper.graph(), &outcome) {
                        Err(e) => {
                            *write_error.lock().unwrap_or_else(PoisonError::into_inner) =
                                Some(CliError::format(reads_path, e));
                            cancel.cancel();
                        }
                        // GAF carries no unmapped records.
                        Ok(None) => {}
                        Ok(Some(rec)) => gaf_queue.push(rec.to_gaf_line()),
                    }
                };

                let result = drive_engine(
                    mapper,
                    schedule,
                    engine_config,
                    reads,
                    decode_ambiguity,
                    &cancel,
                    &errors,
                    sink,
                );
                // End of stream: close both channels and let the writer
                // threads drain what remains (the scope joins them).
                sam_queue.close();
                gaf_queue.close();
                result
            });

            let sam_stats = sam_queue.stats();
            let gaf_stats = gaf_queue.stats();
            let failure = input_failure(errors, reads_path)
                .or_else(|| take_error(write_error))
                .or_else(|| take_error(sam_error).map(|e| CliError::io(sam_path, e)))
                .or_else(|| take_error(gaf_error).map(|e| CliError::io(gaf_path, e)));
            if let Some(err) = failure {
                // The cleanup guard removes both partial files (after the
                // writers drop and flush, per declaration order).
                return Err(err);
            }
            sam_writer
                .finish()
                .map_err(|e| CliError::io(sam_path, e))?
                .finish(sam_path)?;
            gaf_file.finish(gaf_path)?;
            cleanup.disarm();

            Ok(EngineRun {
                report: run,
                batch_size,
                affinity: affinity_groups,
                elastic,
                compressed,
                output: RunOutput::Split {
                    sam_stats: Box::new(sam_stats),
                    gaf_stats: Box::new(gaf_stats),
                },
            })
        }
    }
}

/// The per-shard section of a sharded run's report: occupancy counters,
/// seeding-load imbalance, and either the (informational) fanout affinity
/// plan or the elastic per-pool depth/stall/migration counters.
fn shard_report(
    sharded: &ShardedIndex,
    affinity: Option<&Vec<Vec<usize>>>,
    elastic: Option<&ElasticReport>,
) -> String {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut section = String::new();
    let _ = writeln!(
        section,
        "shards: {} coordinate ranges (seed-hit imbalance {:.2})",
        sharded.shards().len(),
        sharded.seed_imbalance()
    );
    for stats in sharded.shard_stats() {
        let _ = writeln!(
            section,
            "  shard {} [{}, {}): {} seed hits, {} regions, {} wins",
            stats.shard, stats.start, stats.end, stats.seed_hits, stats.regions, stats.wins
        );
    }
    if let Some(groups) = affinity {
        let lines: Vec<String> = groups
            .iter()
            .enumerate()
            .map(|(g, shards)| format!("group {g} -> shards {shards:?}"))
            .collect();
        let _ = writeln!(section, "worker affinity plan: {}", lines.join(", "));
    }
    if let Some(report) = elastic {
        let _ = writeln!(
            section,
            "schedule: elastic — {} pools, {} batches routed, {} spilled, \
             {} shard migrations",
            report.pools.len(),
            report.routed,
            report.spilled,
            report.migrations
        );
        for (p, pool) in report.pools.iter().enumerate() {
            let _ = writeln!(
                section,
                "  pool {p} -> shards {:?} ({} workers): {} batches \
                 ({} routed, {} spilled), queue max depth {}, \
                 producer stalled {}x ({:.2} ms), workers starved {}x ({:.2} ms)",
                pool.shards,
                pool.workers,
                pool.batches,
                pool.routed,
                pool.spilled,
                pool.queue.max_depth,
                pool.queue.producer_waits,
                ms(pool.queue.producer_wait),
                pool.queue.worker_waits,
                ms(pool.queue.worker_wait)
            );
        }
    }
    section
}

/// `segram map`.
pub fn map(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(MAP_HELP.to_owned());
    }
    options.reject_unknown(&[
        "graph",
        "index",
        "reads",
        "output",
        "format",
        "output-sam",
        "output-gaf",
        "backend",
        "threads",
        "shards",
        "schedule",
        "batch-size",
        "preset",
        "filter",
        "both-strands",
        "compress-output",
        "lenient",
    ])?;
    let source = match (options.get("graph"), options.get("index")) {
        (Some(graph), None) => MapSource::Graph(graph),
        (None, Some(index)) => MapSource::Index(index),
        (Some(_), Some(_)) => {
            return Err(CliError::usage(
                "--graph and --index are mutually exclusive (the .sgi file \
                 already contains the graph)",
            ))
        }
        (None, None) => return Err(CliError::usage("one of --graph or --index is required")),
    };
    let reads_path = options.require("reads")?;
    let format = options.get("format").unwrap_or("sam");
    if format != "sam" && format != "gaf" {
        return Err(CliError::usage(format!(
            "unknown format {format:?} (expected sam|gaf)"
        )));
    }
    // Validate the cheap options before touching the filesystem, so usage
    // errors win over I/O errors.
    let backend = backend_kind(options)?;
    reject_foreign_shards(backend, options)?;
    reject_foreign_filter(backend, options)?;
    let threads = thread_count(options)?;
    let shards = shard_count(options)?;
    let schedule = schedule_kind(options)?;
    if schedule == Schedule::Elastic && backend != BackendKind::Segram {
        return Err(CliError::usage(format!(
            "--schedule elastic only applies to --backend segram (the pool \
             schedule routes by the sharded index); drop --schedule or use \
             --backend segram, got --backend {}",
            backend.name()
        )));
    }
    let batch = batch_spec(options)?;
    if matches!(batch, Some(BatchSpec::Auto { .. })) && schedule == Schedule::Elastic {
        return Err(CliError::usage(
            "--batch-size auto only applies to --schedule fanout (the elastic \
             pools route fixed-size batches); use a fixed --batch-size or drop \
             --schedule elastic",
        ));
    }
    let mut config = preset(options.get("preset").unwrap_or("short"))?;
    config.prefilter = filter_spec(options.get("filter").unwrap_or("none"))?;
    let both = options.switch("both-strands");

    // Output plan: the split SAM+GAF pass is exclusive with the
    // single-document options (it names both documents itself).
    let out_sam = options.get("output-sam");
    let out_gaf = options.get("output-gaf");
    if (out_sam.is_some() || out_gaf.is_some())
        && (options.get("output").is_some() || options.get("format").is_some())
    {
        return Err(CliError::usage(
            "--output-sam/--output-gaf are mutually exclusive with \
             --output/--format (the split pass names both documents itself)",
        ));
    }
    let output = match (out_sam, out_gaf) {
        (Some(sam), Some(gaf)) => OutputPlan::Split { sam, gaf },
        // One split option alone is just a single-format run with an
        // explicit format baked into the option name.
        (Some(sam), None) => OutputPlan::Single {
            format: "sam",
            path: Some(sam),
        },
        (None, Some(gaf)) => OutputPlan::Single {
            format: "gaf",
            path: Some(gaf),
        },
        (None, None) => OutputPlan::Single {
            format,
            path: options.get("output"),
        },
    };
    if options.switch("compress-output") {
        if let OutputPlan::Single { path: None, .. } = output {
            return Err(CliError::usage(
                "--compress-output requires a file output (--output, \
                 --output-sam, or --output-gaf); the report cannot hold \
                 BGZF bytes",
            ));
        }
    }

    // A persistent index is native-only: the baseline backends rebuild
    // their own structures from the GFA. (--shards and --schedule elastic
    // are fine: the loaded store is re-sharded the same way `segram serve
    // --shards` does it.)
    if let MapSource::Index(_) = source {
        if backend != BackendKind::Segram {
            return Err(CliError::usage(format!(
                "--index only applies to --backend segram (the .sgi file \
                 holds the SeGraM index); use --graph for --backend {}",
                backend.name()
            )));
        }
    }

    // Sniff the reads file last, after every cheap option check: the
    // compressed path feeds an in-order splice turnstile that only the
    // single-queue fanout schedule can drain deadlock-free.
    let reads = open_reads(reads_path)?;
    if reads.compressed && schedule == Schedule::Elastic {
        return Err(CliError::usage(
            "--schedule elastic cannot read BGZF-compressed input (the \
             multi-pool schedule cannot feed the in-order block splice); \
             decompress the reads or drop --schedule elastic",
        ));
    }

    let (run, shard_section, source_note) = match source {
        MapSource::Index(index_path) => {
            let loaded = persisted_from_index_file(index_path)?;
            let note = format!(
                "loaded persistent index {index_path} ({})\n",
                provenance_label(&loaded)
            );
            if shards <= 1 && schedule == Schedule::Fanout {
                let mapper = mapper_from_persisted(loaded, config);
                let run = run_map_stream(
                    &mapper,
                    MapSchedule::Fanout(None),
                    threads,
                    both,
                    options,
                    output,
                    reads,
                    reads_path,
                    batch,
                )?;
                (run, String::new(), note)
            } else {
                // Re-shard the loaded store, exactly as `segram serve
                // --shards` does — mapping stays byte-identical to the
                // GFA-built sharded run.
                let sharded = sharded_from_persisted(loaded, config, shards);
                if sharded.shards().len() < shards {
                    eprintln!(
                        "warning: --shards {shards} exceeds the reference length; \
                         clamped to {} non-empty coordinate ranges",
                        sharded.shards().len()
                    );
                }
                let affinity = ShardAffinity::pin_workers(&sharded.shard_loads(), threads);
                let map_schedule = match schedule {
                    Schedule::Fanout => MapSchedule::Fanout(Some(affinity)),
                    Schedule::Elastic => MapSchedule::Elastic(&sharded, affinity),
                };
                let run = run_map_stream(
                    &sharded,
                    map_schedule,
                    threads,
                    both,
                    options,
                    output,
                    reads,
                    reads_path,
                    batch,
                )?;
                let section = shard_report(&sharded, run.affinity.as_ref(), run.elastic.as_ref());
                (run, section, note)
            }
        }
        MapSource::Graph(graph_path) => {
            let graph = load_graph(graph_path)?;
            if backend != BackendKind::Segram {
                // A baseline backend: same engine, same streaming output
                // path, so the run is directly comparable to (and diffable
                // against) the native one.
                let mapper = Backend::build(backend, graph, config, 1);
                let run = run_map_stream(
                    &mapper,
                    MapSchedule::Fanout(None),
                    threads,
                    both,
                    options,
                    output,
                    reads,
                    reads_path,
                    batch,
                )?;
                (run, String::new(), String::new())
            } else if shards <= 1 && schedule == Schedule::Fanout {
                let mapper = SegramMapper::new(graph, config);
                let run = run_map_stream(
                    &mapper,
                    MapSchedule::Fanout(None),
                    threads,
                    both,
                    options,
                    output,
                    reads,
                    reads_path,
                    batch,
                )?;
                (run, String::new(), String::new())
            } else {
                // Sharded and/or elastic: both need the sharded index (the
                // elastic schedule over --shards 1 is a single pool, still
                // exercising the routed path).
                let sharded = ShardedIndex::build(graph, config, shards);
                if sharded.shards().len() < shards {
                    eprintln!(
                        "warning: --shards {shards} exceeds the reference length; \
                         clamped to {} non-empty coordinate ranges",
                        sharded.shards().len()
                    );
                }
                let affinity = ShardAffinity::pin_workers(&sharded.shard_loads(), threads);
                let map_schedule = match schedule {
                    Schedule::Fanout => MapSchedule::Fanout(Some(affinity)),
                    Schedule::Elastic => MapSchedule::Elastic(&sharded, affinity),
                };
                let run = run_map_stream(
                    &sharded,
                    map_schedule,
                    threads,
                    both,
                    options,
                    output,
                    reads,
                    reads_path,
                    batch,
                )?;
                let section = shard_report(&sharded, run.affinity.as_ref(), run.elastic.as_ref());
                (run, section, String::new())
            }
        }
    };

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let stats = run.report;
    let mut report = source_note;
    let _ = writeln!(
        report,
        "mapped {}/{} reads ({} regions aligned, {} filtered)",
        stats.mapped, stats.reads, stats.stats.regions_aligned, stats.stats.regions_filtered
    );
    let _ = writeln!(report, "backend: {}", stats.backend);
    let _ = writeln!(
        report,
        "threads: {threads} ({} batches of up to {} reads)",
        stats.batches, run.batch_size
    );
    let _ = writeln!(
        report,
        "stage times: seeding {:.2} ms, filtering {:.2} ms, alignment {:.2} ms, \
         decode {:.2} ms (alignment fraction {:.0}%)",
        ms(stats.stats.seeding),
        ms(stats.stats.filtering),
        ms(stats.stats.alignment),
        ms(stats.stats.decode),
        stats.stats.alignment_fraction() * 100.0
    );
    if run.compressed {
        let _ = writeln!(
            report,
            "inflate: {:.2} ms (BGZF decompression + block splice, worker stage)",
            ms(stats.stats.inflate)
        );
    }
    if stats.batching.adaptive {
        let b = stats.batching;
        let _ = writeln!(
            report,
            "batching: adaptive, batch {} -> {} (used [{}, {}], {} grows, {} shrinks)",
            b.initial, b.last, b.min_used, b.max_used, b.grows, b.shrinks
        );
    }
    let _ = writeln!(
        report,
        "queue: max depth {}, producer waited {}x ({:.2} ms), workers waited {}x ({:.2} ms)",
        stats.queue.max_depth,
        stats.queue.producer_waits,
        ms(stats.queue.producer_wait),
        stats.queue.worker_waits,
        ms(stats.queue.worker_wait)
    );
    let _ = writeln!(
        report,
        "writer: max depth {}, workers stalled {}x ({:.2} ms), writer waited {}x ({:.2} ms)",
        stats.queue.output_max_depth,
        stats.queue.output_stall_waits,
        ms(stats.queue.output_stall_wait),
        stats.queue.writer_waits,
        ms(stats.queue.writer_wait)
    );
    report.push_str(&shard_section);
    let note = if options.switch("compress-output") {
        " (BGZF-compressed)"
    } else {
        ""
    };
    match (output, run.output) {
        (OutputPlan::Single { format, path }, RunOutput::Single(target)) => match (path, target) {
            (Some(path), _) => {
                let _ = writeln!(report, "wrote {} to {path}{note}", format.to_uppercase());
            }
            (None, MapTarget::Memory(buffer)) => {
                report.push_str(&String::from_utf8_lossy(&buffer));
            }
            (None, _) => unreachable!("no --output implies the memory target"),
        },
        (
            OutputPlan::Split { sam, gaf },
            RunOutput::Split {
                sam_stats,
                gaf_stats,
            },
        ) => {
            for (label, stats) in [("sam", &*sam_stats), ("gaf", &*gaf_stats)] {
                let _ = writeln!(
                    report,
                    "writer {label}: max depth {}, sink stalled {}x ({:.2} ms), \
                     writer waited {}x ({:.2} ms)",
                    stats.max_depth,
                    stats.producer_waits,
                    ms(stats.producer_wait),
                    stats.worker_waits,
                    ms(stats.worker_wait)
                );
            }
            let _ = writeln!(report, "wrote SAM to {sam}{note}");
            let _ = writeln!(report, "wrote GAF to {gaf}{note}");
        }
        _ => unreachable!("the run output matches the output plan"),
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// bgzip
// ---------------------------------------------------------------------------

const BGZIP_HELP: &str = "\
segram bgzip — BGZF-compress a file with the in-tree DEFLATE compressor

The output is a standard BGZF stream (gzip members with the BC/BSIZE
extra subfield, CRC32 + ISIZE trailers, and the canonical EOF marker)
that `segram map` auto-detects by its magic bytes. This is also the
fixture factory for the compressed-IO tests and CI tier.

OPTIONS:
    --input <file>         file to compress (required)
    --output <file.gz>     output BGZF path (required)
    --block-bytes <int>    uncompressed payload bytes per BGZF block
                           (default 16384, clamped to 1..=57000)
    --mode <fixed|stored>  DEFLATE encoding per block (default fixed:
                           fixed-Huffman codes over a greedy LZ77 parse;
                           stored emits uncompressed blocks)
";

/// `segram bgzip`.
pub fn bgzip(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(BGZIP_HELP.to_owned());
    }
    options.reject_unknown(&["input", "output", "block-bytes", "mode"])?;
    let mode = match options.get("mode") {
        None | Some("fixed") => BgzfMode::Fixed,
        Some("stored") => BgzfMode::Stored,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown mode {other:?} (expected fixed|stored)"
            )))
        }
    };
    let block_bytes: usize = options.number("block-bytes", 16 * 1024)?;
    if block_bytes == 0 {
        return Err(CliError::usage("--block-bytes must be at least 1"));
    }
    let input = options.require("input")?;
    let output = options.require("output")?;
    let data = fs::read(input).map_err(|e| CliError::io(input, e))?;
    let compressed = bgzf_compress(&data, block_bytes, mode);
    if let Some(parent) = Path::new(output).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| CliError::io(output, e))?;
        }
    }
    fs::write(output, &compressed).map_err(|e| CliError::io(output, e))?;

    let blocks = data.len().div_ceil(block_bytes.min(BGZF_MAX_PLAIN));
    let mut report = String::new();
    let _ = writeln!(
        report,
        "wrote {blocks} BGZF blocks + EOF marker to {output} ({} -> {} bytes)",
        data.len(),
        compressed.len()
    );
    Ok(report)
}

// ---------------------------------------------------------------------------
// simulate
// ---------------------------------------------------------------------------

const SIMULATE_HELP: &str = "\
segram simulate — generate a synthetic reference/VCF/graph/reads bundle
(the scaled-down stand-in for GRCh38 + GIAB + PBSIM2/Mason, Section 10)

OPTIONS:
    --out-prefix <path>   file prefix for the bundle (required); writes
                          <prefix>.fa, <prefix>.vcf, <prefix>.gfa, <prefix>.fq
    --length <int>        reference length (default 100000)
    --reads <int>         number of reads (default 100)
    --read-len <int>      read length (default 150)
    --error <float>       read error rate: 0.01|0.05|0.10 pick the Illumina/
                          PacBio/ONT profile (default 0.01)
    --seed <int>          RNG seed (default 42)
";

/// `segram simulate`.
pub fn simulate(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(SIMULATE_HELP.to_owned());
    }
    options.reject_unknown(&["out-prefix", "length", "reads", "read-len", "error", "seed"])?;
    let prefix = options.require("out-prefix")?;
    let length: usize = options.number("length", 100_000)?;
    let read_count: usize = options.number("reads", 100)?;
    let read_len: usize = options.number("read-len", 150)?;
    let error: f64 = options.number("error", 0.01)?;
    let seed: u64 = options.number("seed", 42)?;
    if length < read_len || read_len == 0 {
        return Err(CliError::usage(
            "--length must be at least --read-len, both positive",
        ));
    }

    let reference = generate_reference(&GenomeConfig::human_like(length, seed));
    let variants = simulate_variants(&reference, &VariantConfig::human_like(seed ^ 0xabcd));
    let vcf_text = write_vcf("chr1", &reference, &variants)
        .map_err(|e| CliError::format(format!("{prefix}.vcf"), e))?;
    let built = build_graph(&reference, variants)?;

    let errors = if error >= 0.075 {
        ErrorProfile::ont_10()
    } else if error >= 0.03 {
        ErrorProfile::pacbio_5()
    } else {
        ErrorProfile::illumina()
    };
    let reads = simulate_reads(
        &built.graph,
        &ReadConfig {
            count: read_count,
            len: read_len,
            errors,
            seed: seed ^ 0x1234,
        },
    );
    let phred = phred_from_error_rate(error.max(1e-4));
    let fastq: Vec<FastqRecord> = reads
        .iter()
        .map(|r| {
            let mut record =
                FastqRecord::with_uniform_quality(format!("read{}", r.id), r.seq.clone(), phred);
            record.description = format!(
                "truth:linear={} strand={:?} errors={}",
                r.true_start_linear, r.strand, r.injected_errors
            );
            record
        })
        .collect();

    write_file(
        &format!("{prefix}.fa"),
        &write_fasta(&[FastaRecord::new("chr1", reference.clone())], 70),
    )?;
    write_file(&format!("{prefix}.vcf"), &vcf_text)?;
    write_file(&format!("{prefix}.gfa"), &gfa::to_gfa(&built.graph))?;
    write_file(&format!("{prefix}.fq"), &write_fastq(&fastq))?;

    let stats = built.graph.stats();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "wrote {prefix}.fa ({length} bp), {prefix}.vcf, {prefix}.gfa ({} nodes), {prefix}.fq ({read_count} reads x {read_len} bp)",
        stats.node_count
    );
    Ok(report)
}

// ---------------------------------------------------------------------------
// eval compare
// ---------------------------------------------------------------------------

const EVAL_HELP: &str = "\
segram eval — evaluation harnesses

USAGE:
    segram eval <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    compare    drive one read stream through several mapping backends and
               compare throughput, stage times, accuracy, and modeled
               accelerator occupancy under one methodology

Run `segram eval compare --help` for options.
";

const COMPARE_HELP: &str = "\
segram eval compare — the same reads through N backends, one table
(the paper's apples-to-apples comparison methodology: every backend runs
through the same batched engine and the same measurement path)

OPTIONS:
    --graph <graph.gfa>    input graph (required)
    --reads <reads.fq>     input FASTQ (required); records carrying
                           `truth:linear=` descriptions (as written by
                           `segram simulate`) also get per-backend accuracy
    --backends <list>      comma-separated backends to run, in order
                           (default segram,graphaligner,vg,hga)
    --threads <int>        worker threads per run (default: all cores)
    --shards <int>         shard count for the segram backend (default 1)
    --preset <short|long5|long10>
                           mapper preset (default short)
    --tolerance <int>      max distance from truth counted correct
                           (default 150)
    --json <path>          also write the table as a JSON artifact
    --both-strands         map each read on both strands
    --lenient              substitute ambiguous read bases instead of failing
";

/// Parses the `--backends` list, preserving order and dropping duplicates.
fn parse_backends(list: &str) -> Result<Vec<BackendKind>, CliError> {
    let mut kinds = Vec::new();
    for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        let kind = BackendKind::parse(name).ok_or_else(|| {
            CliError::usage(format!(
                "unknown backend {name:?} in --backends (expected a comma-separated \
                 subset of segram,graphaligner,vg,hga)"
            ))
        })?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    if kinds.is_empty() {
        return Err(CliError::usage(
            "--backends names no backends (expected e.g. segram,vg)",
        ));
    }
    Ok(kinds)
}

/// The simulated truth location embedded in a FASTQ description by
/// `segram simulate` (`truth:linear=N strand=... errors=...`), if any.
fn truth_linear(description: &str) -> Option<u64> {
    description
        .split_whitespace()
        .find_map(|token| token.strip_prefix("truth:linear=")?.parse().ok())
}

/// Reads the whole FASTQ into [`EvalRead`]s (compare runs the same
/// materialized read set through every backend, unlike `map`'s streaming).
fn load_eval_reads(reads_path: &str, ambiguity: Ambiguity) -> Result<Vec<EvalRead>, CliError> {
    let reads_file = fs::File::open(reads_path).map_err(|e| CliError::io(reads_path, e))?;
    let mut reads = Vec::new();
    for record in FastqReader::new(BufReader::new(reads_file), ambiguity) {
        let record = match record {
            Ok(record) => record,
            Err(StreamError::Io(err)) => return Err(CliError::io(reads_path, err)),
            Err(StreamError::Format(err)) => return Err(CliError::format(reads_path, err)),
        };
        reads.push(EvalRead {
            truth_linear: truth_linear(&record.description),
            seq: record.seq,
        });
    }
    Ok(reads)
}

/// One JSON row of the `--json` artifact (testkit's offline serializer).
#[derive(Serialize)]
struct CompareRow {
    backend: String,
    reads: usize,
    mapped: usize,
    with_truth: usize,
    correct: usize,
    accuracy: Option<f64>,
    seconds: f64,
    reads_per_second: f64,
    seeding_ms: f64,
    filtering_ms: f64,
    alignment_ms: f64,
    alignment_fraction: f64,
    regions_aligned: usize,
    modeled_makespan_ns: f64,
    modeled_bitalign_utilization: f64,
}

#[derive(Serialize)]
struct CompareDoc {
    threads: usize,
    tolerance: u64,
    backends: Vec<CompareRow>,
}

impl CompareRow {
    fn from_eval(eval: &BackendEval) -> Self {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        Self {
            backend: eval.backend.to_owned(),
            reads: eval.report.reads,
            mapped: eval.report.mapped,
            with_truth: eval.with_truth,
            correct: eval.correct,
            accuracy: eval.accuracy(),
            seconds: eval.seconds,
            reads_per_second: eval.reads_per_second(),
            seeding_ms: ms(eval.report.stats.seeding),
            filtering_ms: ms(eval.report.stats.filtering),
            alignment_ms: ms(eval.report.stats.alignment),
            alignment_fraction: eval.report.stats.alignment_fraction(),
            regions_aligned: eval.report.stats.regions_aligned,
            modeled_makespan_ns: eval.modeled_makespan_ns,
            modeled_bitalign_utilization: eval.modeled_bitalign_utilization,
        }
    }
}

/// `segram eval compare`.
pub fn compare(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(COMPARE_HELP.to_owned());
    }
    options.reject_unknown(&[
        "graph",
        "reads",
        "backends",
        "threads",
        "shards",
        "preset",
        "tolerance",
        "json",
        "both-strands",
        "lenient",
    ])?;
    let graph_path = options.require("graph")?;
    let reads_path = options.require("reads")?;
    let kinds = parse_backends(
        options
            .get("backends")
            .unwrap_or("segram,graphaligner,vg,hga"),
    )?;
    let threads = thread_count(options)?;
    let shards = shard_count(options)?;
    // `--shards` configures the segram backend only; with none in the
    // list the flag would be a silent no-op, so reject it like `map` does.
    if options.get("shards").is_some() && !kinds.iter().any(|k| k.supports_shards()) {
        return Err(CliError::usage(
            "--shards only applies to the segram backend, and --backends does not \
             include segram; drop --shards or add segram to the list",
        ));
    }
    let config = preset(options.get("preset").unwrap_or("short"))?;
    let tolerance: u64 = options.number("tolerance", 150)?;
    let both = options.switch("both-strands");

    let graph = load_graph(graph_path)?;
    let reads = load_eval_reads(reads_path, ambiguity(options))?;
    if reads.is_empty() {
        return Err(CliError::usage(format!(
            "{reads_path}: no reads to compare backends on"
        )));
    }

    let mut evals = Vec::new();
    for kind in kinds {
        let backend_shards = if kind.supports_shards() { shards } else { 1 };
        let backend = Backend::build(kind, graph.clone(), config, backend_shards);
        evals.push(run_backend_eval(&backend, &reads, threads, both, tolerance));
    }

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut report = String::new();
    let with_truth = evals.first().map_or(0, |e| e.with_truth);
    let _ = writeln!(
        report,
        "compared {} backends on {} reads ({} with truth labels; threads {threads}, \
         tolerance {tolerance})",
        evals.len(),
        reads.len(),
        with_truth
    );
    let _ = writeln!(
        report,
        "  {:<14} {:>9} {:>9} {:>10} {:>11} {:>12} {:>11} {:>7} {:>14} {:>9}",
        "backend",
        "mapped",
        "accuracy",
        "reads/s",
        "seeding-ms",
        "filtering-ms",
        "aligning-ms",
        "align%",
        "hw-makespan-us",
        "hw-util"
    );
    for eval in &evals {
        let accuracy = match eval.accuracy() {
            Some(a) => format!("{:.0}%", a * 100.0),
            None => "n/a".to_owned(),
        };
        let _ = writeln!(
            report,
            "  {:<14} {:>9} {:>9} {:>10.1} {:>11.2} {:>12.2} {:>11.2} {:>6.0}% {:>14.1} {:>8.0}%",
            eval.backend,
            format!("{}/{}", eval.report.mapped, eval.report.reads),
            accuracy,
            eval.reads_per_second(),
            ms(eval.report.stats.seeding),
            ms(eval.report.stats.filtering),
            ms(eval.report.stats.alignment),
            eval.report.stats.alignment_fraction() * 100.0,
            eval.modeled_makespan_ns / 1e3,
            eval.modeled_bitalign_utilization * 100.0
        );
    }

    if let Some(json_path) = options.get("json") {
        let doc = CompareDoc {
            threads,
            tolerance,
            backends: evals.iter().map(CompareRow::from_eval).collect(),
        };
        let text = segram_testkit::json::to_string_pretty(&doc)
            .map_err(|e| CliError::usage(format!("--json serialization failed: {e}")))?;
        write_file(json_path, &text)?;
        let _ = writeln!(report, "wrote comparison JSON to {json_path}");
    }
    Ok(report)
}

/// `segram eval`: dispatches its subcommands.
fn eval(args: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(EVAL_HELP.to_owned());
    };
    match sub.as_str() {
        "compare" => {
            let options = Options::parse(rest)?;
            compare(&options)
        }
        "--help" | "help" => Ok(EVAL_HELP.to_owned()),
        other => Err(CliError::usage(format!(
            "unknown eval subcommand {other:?}; run `segram eval --help`"
        ))),
    }
}

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, bad options, and any I/O or
/// parse failure; `main` prints it and exits with
/// [`CliError::exit_code`].
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(USAGE.to_owned());
    };
    // `eval` hosts subcommands of its own, so its first argument is a
    // positional name the flag parser must not see.
    if command == "eval" {
        return eval(rest);
    }
    // Likewise `index build`/`update`/`inspect`; a bare `index` stays the
    // footprint report.
    if command == "index" {
        if let Some((sub, tail)) = rest.split_first() {
            match sub.as_str() {
                "build" => return index_build(&Options::parse(tail)?),
                "update" => return index_update(&Options::parse(tail)?),
                "inspect" => return index_inspect(&Options::parse(tail)?),
                _ => {}
            }
        }
    }
    let options = Options::parse(rest)?;
    match command.as_str() {
        "construct" => construct(&options),
        "index" => index(&options),
        "map" => map(&options),
        "serve" => crate::serve::serve(&options),
        "request" => crate::serve::request(&options),
        "simulate" => simulate(&options),
        "bgzip" => bgzip(&options),
        "--help" | "help" => Ok(USAGE.to_owned()),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}; run `segram help`"
        ))),
    }
}

/// The DNA alphabet type, re-exported for test helpers.
pub type Seq = DnaSeq;

#[cfg(test)]
mod tests {
    use super::*;

    /// A failing split-writer sink records the first error only, cancels
    /// the run, and closes its channel so the engine-side pushes drop
    /// instead of blocking on a writer that is gone.
    #[test]
    fn split_channel_write_failure_cancels_and_closes_the_queue() {
        let queue = WorkQueue::<String>::new(8);
        let cancel = CancelToken::new();
        let error: Mutex<Option<std::io::Error>> = Mutex::new(None);

        queue.push("first".to_owned());
        queue.push("second".to_owned());
        queue.push("third".to_owned());

        let mut written = Vec::new();
        drain_split_channel(
            &queue,
            |line: &str| {
                if line == "second" {
                    return Err(std::io::Error::other("disk full"));
                }
                written.push(line.to_owned());
                Ok(())
            },
            &cancel,
            &error,
        );

        assert_eq!(written, ["first"], "drain stops at the failing line");
        assert!(cancel.is_cancelled(), "a write failure cancels the engine");
        let slot = error.lock().unwrap();
        let recorded = slot.as_ref().expect("first error recorded");
        assert_eq!(recorded.to_string(), "disk full");
        // The channel is closed: lines buffered before the failure still
        // drain, but later sink pushes drop silently (no deadlock).
        assert_eq!(queue.pop().as_deref(), Some("third"));
        queue.push("after-close".to_owned());
        assert!(queue.pop().is_none(), "pushes after close are dropped");
    }

    /// The happy path drains every line in order and leaves the run
    /// uncancelled.
    #[test]
    fn split_channel_drains_in_order_until_closed() {
        let queue = WorkQueue::<String>::new(8);
        let cancel = CancelToken::new();
        let error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        for i in 0..5 {
            queue.push(format!("line-{i}"));
        }
        queue.close();

        let mut written = Vec::new();
        drain_split_channel(
            &queue,
            |line: &str| {
                written.push(line.to_owned());
                Ok(())
            },
            &cancel,
            &error,
        );
        assert_eq!(
            written,
            (0..5).map(|i| format!("line-{i}")).collect::<Vec<_>>()
        );
        assert!(!cancel.is_cancelled());
        assert!(error.lock().unwrap().is_none());
    }
}
