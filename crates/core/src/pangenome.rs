//! Multi-chromosome pangenome support.
//!
//! The paper builds *one graph and one index per chromosome* (24 total)
//! and, within each HBM stack, "distribute[s] the graph and index
//! structures of all chromosomes (1–22, X, Y) based on their sizes across
//! the eight independent channels" (Section 8.3). This module provides the
//! multi-chromosome mapper and that size-balanced channel placement.

use segram_graph::{DnaSeq, GenomeGraph, GraphTables};
use segram_index::IndexFootprint;

use crate::config::SegramConfig;
use crate::mapper::{MapStats, Mapping, SegramMapper};

/// One chromosome: a named graph plus its mapper (graph + index).
#[derive(Debug)]
pub struct Chromosome {
    /// Chromosome name (e.g. `chr1`).
    pub name: String,
    mapper: SegramMapper,
}

impl Chromosome {
    /// The chromosome's mapper.
    pub fn mapper(&self) -> &SegramMapper {
        &self.mapper
    }

    /// Total bytes of this chromosome's reference data in the paper's
    /// memory layout (graph tables + index).
    pub fn memory_bytes(&self) -> u64 {
        let graph_fp = GraphTables::from_graph(self.mapper.graph()).footprint();
        let index_fp: IndexFootprint = self.mapper.index().footprint();
        graph_fp.total_bytes() + index_fp.total_bytes()
    }
}

/// A pangenome: every chromosome indexed independently, mapped jointly.
///
/// # Examples
///
/// ```
/// use segram_core::{Pangenome, SegramConfig};
/// use segram_sim::{generate_reference, GenomeConfig};
///
/// let chr1 = generate_reference(&GenomeConfig::human_like(20_000, 1));
/// let chr2 = generate_reference(&GenomeConfig::human_like(15_000, 2));
/// let pangenome = Pangenome::from_linear_references(
///     [("chr1".into(), chr1.clone()), ("chr2".into(), chr2)],
///     SegramConfig::short_reads(),
/// )?;
/// let read = chr1.slice(4000, 4100);
/// let hit = pangenome.map_read(&read).0.expect("read maps");
/// assert_eq!(hit.chromosome, "chr1");
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Debug)]
pub struct Pangenome {
    chromosomes: Vec<Chromosome>,
}

/// A mapping annotated with its chromosome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PangenomeMapping {
    /// Which chromosome won.
    pub chromosome: String,
    /// The mapping itself.
    pub mapping: Mapping,
}

impl Pangenome {
    /// Builds a pangenome from per-chromosome graphs.
    pub fn new(
        chromosomes: impl IntoIterator<Item = (String, GenomeGraph)>,
        config: SegramConfig,
    ) -> Self {
        Self {
            chromosomes: chromosomes
                .into_iter()
                .map(|(name, graph)| Chromosome {
                    name,
                    mapper: SegramMapper::new(graph, config),
                })
                .collect(),
        }
    }

    /// Builds a pangenome of linear references (S2S mode).
    ///
    /// # Errors
    ///
    /// Returns an error when any reference is empty.
    pub fn from_linear_references(
        references: impl IntoIterator<Item = (String, DnaSeq)>,
        config: SegramConfig,
    ) -> Result<Self, segram_graph::GraphError> {
        let mut chromosomes = Vec::new();
        for (name, reference) in references {
            chromosomes.push(Chromosome {
                name,
                mapper: SegramMapper::new_linear(&reference, config)?,
            });
        }
        Ok(Self { chromosomes })
    }

    /// The chromosomes.
    pub fn chromosomes(&self) -> &[Chromosome] {
        &self.chromosomes
    }

    /// Maps a read against every chromosome and returns the best mapping
    /// (fewest edits; ties to the earlier chromosome), plus merged stats.
    pub fn map_read(&self, read: &DnaSeq) -> (Option<PangenomeMapping>, MapStats) {
        let mut best: Option<PangenomeMapping> = None;
        let mut stats = MapStats::default();
        for chromosome in &self.chromosomes {
            let (mapping, s) = chromosome.mapper.map_read(read);
            stats.merge(&s);
            if let Some(m) = mapping {
                let better = best
                    .as_ref()
                    .is_none_or(|b| m.alignment.edit_distance < b.mapping.alignment.edit_distance);
                if better {
                    best = Some(PangenomeMapping {
                        chromosome: chromosome.name.clone(),
                        mapping: m,
                    });
                }
            }
        }
        (best, stats)
    }

    /// Total reference memory (graph + index) across chromosomes.
    pub fn total_memory_bytes(&self) -> u64 {
        self.chromosomes.iter().map(|c| c.memory_bytes()).sum()
    }

    /// The paper's channel placement: assign chromosomes to `channels`
    /// memory channels, balancing per-channel bytes (greedy
    /// largest-first bin packing, shared with the engine's worker-to-shard
    /// pinning via [`balance_loads`](crate::balance_loads)). Returns, per
    /// channel, the chromosome indices assigned to it.
    pub fn channel_placement(&self, channels: usize) -> Vec<Vec<usize>> {
        let bytes: Vec<u64> = self
            .chromosomes
            .iter()
            .map(Chromosome::memory_bytes)
            .collect();
        crate::shard::balance_loads(&bytes, channels)
    }

    /// Imbalance of a placement: max channel load / mean channel load
    /// (1.0 = perfectly balanced).
    pub fn placement_imbalance(&self, placement: &[Vec<usize>]) -> f64 {
        let loads: Vec<u64> = placement
            .iter()
            .map(|chrs| {
                chrs.iter()
                    .map(|&i| self.chromosomes[i].memory_bytes())
                    .sum()
            })
            .collect();
        crate::shard::load_imbalance(&loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_graph::build_graph;
    use segram_sim::{generate_reference, simulate_variants, GenomeConfig, VariantConfig};

    fn pangenome(sizes: &[usize]) -> Pangenome {
        let chroms: Vec<(String, GenomeGraph)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let reference = generate_reference(&GenomeConfig::human_like(len, 300 + i as u64));
                let variants =
                    simulate_variants(&reference, &VariantConfig::human_like(400 + i as u64));
                (
                    format!("chr{}", i + 1),
                    build_graph(&reference, variants).unwrap().graph,
                )
            })
            .collect();
        Pangenome::new(chroms, SegramConfig::short_reads())
    }

    #[test]
    fn reads_map_to_their_chromosome() {
        let p = pangenome(&[20_000, 20_000, 20_000]);
        for (i, chromosome) in p.chromosomes().iter().enumerate() {
            let graph = chromosome.mapper().graph();
            let lin = segram_graph::LinearizedGraph::extract(graph, 5_000, 5_120).unwrap();
            let read: DnaSeq = lin.bases().iter().copied().collect();
            let (hit, _) = p.map_read(&read);
            let hit = hit.expect("read maps");
            assert_eq!(hit.chromosome, format!("chr{}", i + 1));
            assert_eq!(hit.mapping.alignment.edit_distance, 0);
        }
    }

    #[test]
    fn placement_balances_sizes() {
        let p = pangenome(&[40_000, 30_000, 20_000, 15_000, 10_000, 8_000]);
        let placement = p.channel_placement(3);
        assert_eq!(placement.len(), 3);
        let total_assigned: usize = placement.iter().map(|v| v.len()).sum();
        assert_eq!(total_assigned, 6);
        // Greedy largest-first keeps imbalance low.
        assert!(p.placement_imbalance(&placement) < 1.35);
        // Degenerate single-channel placement is trivially "balanced".
        let single = p.channel_placement(1);
        assert!((p.placement_imbalance(&single) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_accounting_sums_components() {
        let p = pangenome(&[15_000, 15_000]);
        let total = p.total_memory_bytes();
        let by_parts: u64 = p.chromosomes().iter().map(|c| c.memory_bytes()).sum();
        assert_eq!(total, by_parts);
        assert!(total > 0);
    }

    #[test]
    fn more_channels_never_increase_imbalance_error() {
        let p = pangenome(&[40_000, 30_000, 20_000, 10_000]);
        let two = p.channel_placement(2);
        assert_eq!(two.iter().map(|v| v.len()).sum::<usize>(), 4);
        // Channels beyond the chromosome count stay empty but valid.
        let many = p.channel_placement(8);
        assert_eq!(many.iter().map(|v| v.len()).sum::<usize>(), 4);
    }
}
