//! End-to-end CLI tests: drive the full `simulate -> construct -> index ->
//! map` pipeline through the same `dispatch` entry point the binary uses,
//! on real files in a temporary directory.

use std::fs;
use std::path::PathBuf;

use segram_cli::{dispatch, CliError};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("segram-cli-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run(args: &[&str]) -> Result<String, CliError> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    dispatch(&owned)
}

#[test]
fn full_pipeline_simulate_construct_index_map() {
    let dir = TempDir::new("pipeline");
    let prefix = dir.path("bundle");

    // 1. simulate a small bundle.
    let report = run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "30000",
        "--reads",
        "12",
        "--read-len",
        "120",
        "--seed",
        "7",
    ])
    .expect("simulate");
    assert!(report.contains("wrote"), "{report}");
    for ext in ["fa", "vcf", "gfa", "fq"] {
        assert!(
            fs::metadata(format!("{prefix}.{ext}")).is_ok(),
            "missing {prefix}.{ext}"
        );
    }

    // 2. re-construct the graph from the FASTA + VCF the simulator wrote;
    //    it must match the simulator's own GFA node-for-node.
    let graph2 = dir.path("rebuilt.gfa");
    let report = run(&[
        "construct",
        "--reference",
        &format!("{prefix}.fa"),
        "--vcf",
        &format!("{prefix}.vcf"),
        "--output",
        &graph2,
    ])
    .expect("construct");
    assert!(report.contains("variants embedded"), "{report}");
    let original = fs::read_to_string(format!("{prefix}.gfa")).unwrap();
    let rebuilt = fs::read_to_string(&graph2).unwrap();
    assert_eq!(
        original, rebuilt,
        "construct must reproduce the simulated graph"
    );

    // 3. index the graph.
    let report = run(&["index", "--graph", &graph2, "--buckets", "14"]).expect("index");
    assert!(report.contains("level 1 (buckets)"), "{report}");
    assert!(report.contains("total:"), "{report}");

    // 4a. map to SAM.
    let sam_path = dir.path("out.sam");
    let report = run(&[
        "map",
        "--graph",
        &graph2,
        "--reads",
        &format!("{prefix}.fq"),
        "--format",
        "sam",
        "--output",
        &sam_path,
        "--both-strands",
    ])
    .expect("map sam");
    assert!(report.contains("mapped"), "{report}");
    let sam = fs::read_to_string(&sam_path).unwrap();
    assert!(
        sam.starts_with("@HD"),
        "SAM header missing: {}",
        &sam[..40.min(sam.len())]
    );
    let mapped_lines = sam.lines().filter(|l| !l.starts_with('@')).count();
    assert_eq!(mapped_lines, 12, "one record per read");

    // 4b. map to GAF with a prefilter.
    let gaf_path = dir.path("out.gaf");
    let report = run(&[
        "map",
        "--graph",
        &graph2,
        "--reads",
        &format!("{prefix}.fq"),
        "--format",
        "gaf",
        "--filter",
        "cascade",
        "--output",
        &gaf_path,
        "--both-strands",
    ])
    .expect("map gaf");
    assert!(report.contains("mapped"), "{report}");
    let gaf = fs::read_to_string(&gaf_path).unwrap();
    let records = segram_io::read_gaf(&gaf).expect("own GAF must re-parse");
    assert!(!records.is_empty());
    for rec in &records {
        assert_eq!(rec.qstart, 0);
        assert_eq!(rec.qend, rec.qlen);
        assert!(rec.pend <= rec.plen);
        assert!(!rec.cigar.is_empty());
    }
}

/// True end-to-end smoke test: runs the compiled `segram` binary (not the
/// in-process `dispatch`) over a tiny simulated dataset and checks exit
/// codes plus the shape of the SAM/GAF files it writes.
#[test]
fn built_binary_end_to_end_smoke() {
    use std::process::Command;

    let binary = env!("CARGO_BIN_EXE_segram");
    let dir = TempDir::new("binary");
    let prefix = dir.path("smoke");

    let simulate = Command::new(binary)
        .args([
            "simulate",
            "--out-prefix",
            &prefix,
            "--length",
            "20000",
            "--reads",
            "8",
            "--read-len",
            "100",
            "--seed",
            "11",
        ])
        .output()
        .expect("run segram simulate");
    assert!(
        simulate.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&simulate.stderr)
    );
    assert!(String::from_utf8_lossy(&simulate.stdout).contains("wrote"));

    // Map to SAM with the binary and validate the output document shape.
    let sam_path = dir.path("smoke.sam");
    let map = Command::new(binary)
        .args([
            "map",
            "--graph",
            &format!("{prefix}.gfa"),
            "--reads",
            &format!("{prefix}.fq"),
            "--format",
            "sam",
            "--output",
            &sam_path,
            "--both-strands",
        ])
        .output()
        .expect("run segram map (sam)");
    assert!(
        map.status.success(),
        "map failed: {}",
        String::from_utf8_lossy(&map.stderr)
    );
    let sam = fs::read_to_string(&sam_path).unwrap();
    assert!(
        sam.starts_with("@HD\t"),
        "missing SAM header: {}",
        &sam[..40.min(sam.len())]
    );
    assert!(
        sam.lines().any(|l| l.starts_with("@SQ\t")),
        "missing @SQ line"
    );
    let records = sam.lines().filter(|l| !l.starts_with('@')).count();
    assert_eq!(records, 8, "one SAM record per read:\n{sam}");
    for line in sam.lines().filter(|l| !l.starts_with('@')) {
        assert!(line.split('\t').count() >= 11, "short SAM line: {line}");
    }

    // Map to GAF and validate with the workspace's own parser.
    let gaf_path = dir.path("smoke.gaf");
    let map = Command::new(binary)
        .args([
            "map",
            "--graph",
            &format!("{prefix}.gfa"),
            "--reads",
            &format!("{prefix}.fq"),
            "--format",
            "gaf",
            "--output",
            &gaf_path,
            "--both-strands",
        ])
        .output()
        .expect("run segram map (gaf)");
    assert!(map.status.success());
    let gaf = segram_io::read_gaf(&fs::read_to_string(&gaf_path).unwrap())
        .expect("binary GAF output must re-parse");
    assert!(gaf.len() >= 6, "only {}/8 reads mapped", gaf.len());

    // Exit codes: 2 for usage errors, 1 for I/O errors, 0 for help.
    let usage = Command::new(binary).arg("frobnicate").output().unwrap();
    assert_eq!(usage.status.code(), Some(2));
    let io_error = Command::new(binary)
        .args(["index", "--graph", &dir.path("missing.gfa")])
        .output()
        .unwrap();
    assert_eq!(io_error.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&io_error.stderr).contains("missing.gfa"));
    let help = Command::new(binary).arg("help").output().unwrap();
    assert_eq!(help.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&help.stdout).contains("COMMANDS"));
}

#[test]
fn help_is_available_everywhere() {
    assert!(run(&[]).unwrap().contains("USAGE"));
    assert!(run(&["help"]).unwrap().contains("COMMANDS"));
    for cmd in ["construct", "index", "map", "simulate"] {
        let text = run(&[cmd, "--help"]).unwrap();
        assert!(text.contains("OPTIONS"), "{cmd} help: {text}");
    }
    // `eval` hosts subcommands: bare, help, and per-subcommand help.
    assert!(run(&["eval"]).unwrap().contains("SUBCOMMANDS"));
    assert!(run(&["eval", "--help"]).unwrap().contains("compare"));
    let text = run(&["eval", "compare", "--help"]).unwrap();
    assert!(text.contains("--backends"), "{text}");
    let err = run(&["eval", "frobnicate"]).unwrap_err();
    assert_eq!(err.exit_code(), 2);
}

#[test]
fn usage_errors_are_reported_with_exit_code_2() {
    let err = run(&["frobnicate"]).unwrap_err();
    assert_eq!(err.exit_code(), 2);
    let err = run(&["map", "--graph", "x.gfa"]).unwrap_err(); // missing --reads
    assert_eq!(err.exit_code(), 2);
    let err = run(&["map", "--grap", "x.gfa", "--reads", "y.fq"]).unwrap_err(); // typo
    assert_eq!(err.exit_code(), 2);
}

#[test]
fn threads_option_is_validated_before_io() {
    // Both rejections are usage errors (exit 2), and they win over the
    // nonexistent input paths (which would be exit 1).
    for bad in ["0", "two", "-1", "1.5"] {
        let err = run(&[
            "map",
            "--graph",
            "x.gfa",
            "--reads",
            "y.fq",
            "--threads",
            bad,
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "--threads {bad} must be a usage error");
        assert!(err.to_string().contains("--threads"), "{err}");
    }
}

#[test]
fn failed_map_leaves_no_partial_output_file() {
    let dir = TempDir::new("partial");
    let prefix = dir.path("p");
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "20000",
        "--reads",
        "4",
        "--read-len",
        "100",
        "--seed",
        "29",
    ])
    .expect("simulate");

    // A FASTQ whose second record is malformed (quality shorter than the
    // sequence): the streaming map must fail and must not leave a
    // truncated SAM behind.
    let good = fs::read_to_string(format!("{prefix}.fq")).unwrap();
    let bad_path = dir.path("bad.fq");
    fs::write(&bad_path, format!("{good}@broken\nACGT\n+\nII\n")).unwrap();
    let out = dir.path("partial.sam");
    let err = run(&[
        "map",
        "--graph",
        &format!("{prefix}.gfa"),
        "--reads",
        &bad_path,
        "--output",
        &out,
    ])
    .unwrap_err();
    assert_eq!(err.exit_code(), 1);
    assert!(err.to_string().contains("bad.fq"), "{err}");
    assert!(
        fs::metadata(&out).is_err(),
        "partial output file must be removed on failure"
    );
}

#[test]
fn decode_error_reporting_is_deterministic_across_threads() {
    // Two malformed records — one early, one late — through a
    // multi-threaded run: whatever the worker interleaving, the engine
    // settles in-flight decode results on cancellation, so the reported
    // error must always name the *first* malformed record, exactly as a
    // serial run does.
    let dir = TempDir::new("decode-det");
    let prefix = dir.path("d");
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "20000",
        "--reads",
        "40",
        "--read-len",
        "100",
        "--seed",
        "31",
    ])
    .expect("simulate");

    let good = fs::read_to_string(format!("{prefix}.fq")).unwrap();
    let mut lines: Vec<String> = good.lines().map(str::to_owned).collect();
    assert!(lines.len() >= 4 * 40, "expected 40 four-line records");
    // Record i occupies lines 4i..4i+4; shorten the quality string of
    // records 4 and 24 so both fail to decode.
    lines[4 * 4 + 3].truncate(2);
    lines[4 * 24 + 3].truncate(2);
    let bad_path = dir.path("two-bad.fq");
    fs::write(&bad_path, lines.join("\n") + "\n").unwrap();

    let map_err = |threads: &str, out: &str| {
        run(&[
            "map",
            "--graph",
            &format!("{prefix}.gfa"),
            "--reads",
            &bad_path,
            "--threads",
            threads,
            "--output",
            &dir.path(out),
        ])
        .unwrap_err()
        .to_string()
    };
    // The serial run defines the expected message (it can only ever see
    // the first malformed record).
    let expected = map_err("1", "serial.sam");
    assert!(expected.contains("line"), "{expected}");
    for attempt in 0..5 {
        let got = map_err("4", &format!("parallel{attempt}.sam"));
        assert_eq!(
            got, expected,
            "attempt {attempt}: multi-threaded decode error must match the serial one"
        );
    }
}

#[test]
fn threads_choice_is_reported_and_output_is_thread_invariant() {
    let dir = TempDir::new("threads");
    let prefix = dir.path("t");
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "25000",
        "--reads",
        "10",
        "--read-len",
        "110",
        "--seed",
        "17",
    ])
    .expect("simulate");

    let map_args = |threads: Option<&str>, format: &str, out: &str| {
        let mut args = vec![
            "map".to_owned(),
            "--graph".to_owned(),
            format!("{prefix}.gfa"),
            "--reads".to_owned(),
            format!("{prefix}.fq"),
            "--format".to_owned(),
            format.to_owned(),
            "--output".to_owned(),
            dir.path(out),
            "--both-strands".to_owned(),
        ];
        if let Some(n) = threads {
            args.push("--threads".to_owned());
            args.push(n.to_owned());
        }
        args
    };
    let run_owned = |args: &[String]| dispatch(args).expect("map");

    // Explicit --threads is echoed in the run report, as is the default.
    let report = run_owned(&map_args(Some("2"), "sam", "t2.sam"));
    assert!(report.contains("threads: 2"), "{report}");
    assert!(report.contains("stage times: seeding"), "{report}");
    // The overlapped path reports the worker-stage decode time and the
    // writer-thread channel counters alongside the producer queue's.
    assert!(report.contains(", decode "), "{report}");
    assert!(report.contains("writer: max depth"), "{report}");
    let report = run_owned(&map_args(None, "sam", "tdefault.sam"));
    assert!(report.contains("threads: "), "{report}");

    // SAM and GAF bytes are identical across thread counts.
    for format in ["sam", "gaf"] {
        run_owned(&map_args(Some("1"), format, &format!("serial.{format}")));
        run_owned(&map_args(Some("4"), format, &format!("parallel.{format}")));
        let serial = fs::read(dir.path(&format!("serial.{format}"))).unwrap();
        let parallel = fs::read(dir.path(&format!("parallel.{format}"))).unwrap();
        assert_eq!(serial, parallel, "{format} output differs across threads");
    }
}

#[test]
fn sharded_mapping_is_reported_and_output_is_shard_invariant() {
    let dir = TempDir::new("shards");
    let prefix = dir.path("s");
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "30000",
        "--reads",
        "12",
        "--read-len",
        "110",
        "--seed",
        "23",
    ])
    .expect("simulate");

    let map_args = |shards: Option<&str>, threads: &str, format: &str, out: &str| {
        let mut args = vec![
            "map".to_owned(),
            "--graph".to_owned(),
            format!("{prefix}.gfa"),
            "--reads".to_owned(),
            format!("{prefix}.fq"),
            "--format".to_owned(),
            format.to_owned(),
            "--threads".to_owned(),
            threads.to_owned(),
            "--output".to_owned(),
            dir.path(out),
            "--both-strands".to_owned(),
        ];
        if let Some(n) = shards {
            args.push("--shards".to_owned());
            args.push(n.to_owned());
        }
        args
    };
    let run_owned = |args: &[String]| dispatch(args).expect("map");

    // A sharded run reports the per-shard section and worker affinity.
    let report = run_owned(&map_args(Some("3"), "2", "sam", "sharded.sam"));
    assert!(report.contains("shards: 3 coordinate ranges"), "{report}");
    assert!(report.contains("shard 0 ["), "{report}");
    assert!(report.contains("worker affinity plan: group 0"), "{report}");
    assert!(report.contains("queue: max depth"), "{report}");

    // SAM and GAF bytes are identical across shard counts, crossed with
    // thread counts (the in-process half of ci.sh's end-to-end gate).
    for format in ["sam", "gaf"] {
        run_owned(&map_args(None, "1", format, &format!("mono.{format}")));
        let mono = fs::read(dir.path(&format!("mono.{format}"))).unwrap();
        for (shards, threads) in [("2", "4"), ("4", "1"), ("4", "4")] {
            let out = format!("s{shards}t{threads}.{format}");
            run_owned(&map_args(Some(shards), threads, format, &out));
            let sharded = fs::read(dir.path(&out)).unwrap();
            assert_eq!(
                mono, sharded,
                "{format} output differs for --shards {shards} --threads {threads}"
            );
        }
    }

    // --shards is validated like --threads: usage errors before I/O.
    for bad in ["0", "many"] {
        let err = run(&[
            "map",
            "--graph",
            "missing.gfa",
            "--reads",
            "missing.fq",
            "--shards",
            bad,
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "--shards {bad} must be a usage error");
        assert!(err.to_string().contains("--shards"), "{err}");
    }
}

/// Backend usage errors through the *built binary* (exit codes + stderr),
/// not just the in-process dispatch: unknown names and invalid flag
/// combinations must fail fast with actionable messages.
#[test]
fn backend_errors_are_actionable_via_the_binary() {
    use std::process::Command;

    let binary = env!("CARGO_BIN_EXE_segram");
    // Unknown backend: usage error naming the valid choices, before I/O
    // (the input paths do not exist).
    let unknown = Command::new(binary)
        .args([
            "map",
            "--graph",
            "x.gfa",
            "--reads",
            "y.fq",
            "--backend",
            "bowtie",
        ])
        .output()
        .expect("run segram map");
    assert_eq!(unknown.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&unknown.stderr);
    assert!(stderr.contains("unknown backend \"bowtie\""), "{stderr}");
    assert!(stderr.contains("graphaligner"), "lists choices: {stderr}");

    // --shards with a baseline backend: usage error pointing at the fix.
    let foreign = Command::new(binary)
        .args([
            "map",
            "--graph",
            "x.gfa",
            "--reads",
            "y.fq",
            "--backend",
            "vg",
            "--shards",
            "4",
        ])
        .output()
        .expect("run segram map");
    assert_eq!(foreign.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&foreign.stderr);
    assert!(
        stderr.contains("--shards only applies to --backend segram"),
        "{stderr}"
    );
    assert!(
        stderr.contains("--backend vg"),
        "names the culprit: {stderr}"
    );

    // --filter with a baseline backend: same treatment as --shards (the
    // baselines never consult the SeGraM prefilter stage).
    let filtered = Command::new(binary)
        .args([
            "map",
            "--graph",
            "x.gfa",
            "--reads",
            "y.fq",
            "--backend",
            "hga",
            "--filter",
            "cascade",
        ])
        .output()
        .expect("run segram map");
    assert_eq!(filtered.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&filtered.stderr);
    assert!(
        stderr.contains("--filter only applies to --backend segram"),
        "{stderr}"
    );

    // eval compare: --shards without a segram backend in the list is a
    // usage error, not a silent no-op.
    let no_segram = Command::new(binary)
        .args([
            "eval",
            "compare",
            "--graph",
            "x.gfa",
            "--reads",
            "y.fq",
            "--backends",
            "vg,hga",
            "--shards",
            "4",
        ])
        .output()
        .expect("run segram eval compare");
    assert_eq!(no_segram.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&no_segram.stderr);
    assert!(
        stderr.contains("--backends does not include segram"),
        "{stderr}"
    );

    // The same rejections in eval compare's --backends list.
    let compare = Command::new(binary)
        .args([
            "eval",
            "compare",
            "--graph",
            "x.gfa",
            "--reads",
            "y.fq",
            "--backends",
            "segram,nope",
        ])
        .output()
        .expect("run segram eval compare");
    assert_eq!(compare.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&compare.stderr);
    assert!(stderr.contains("unknown backend \"nope\""), "{stderr}");
}

/// Acceptance path: `map --backend graphaligner --threads 4` and
/// `eval compare --backends segram,vg` run end-to-end on a simulated
/// dataset, and a baseline backend's output is thread-invariant.
#[test]
fn baseline_backends_map_and_compare_end_to_end() {
    let dir = TempDir::new("backends");
    let prefix = dir.path("b");
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "20000",
        "--reads",
        "8",
        "--read-len",
        "100",
        "--seed",
        "19",
    ])
    .expect("simulate");

    let map_backend = |backend: &str, threads: &str, out: &str| {
        run(&[
            "map",
            "--graph",
            &format!("{prefix}.gfa"),
            "--reads",
            &format!("{prefix}.fq"),
            "--backend",
            backend,
            "--threads",
            threads,
            "--output",
            &dir.path(out),
        ])
        .expect("map with backend")
    };

    let report = map_backend("graphaligner", "4", "ga4.sam");
    assert!(report.contains("backend: graphaligner"), "{report}");
    assert!(report.contains("threads: 4"), "{report}");
    let sam = fs::read_to_string(dir.path("ga4.sam")).unwrap();
    assert_eq!(
        sam.lines().filter(|l| !l.starts_with('@')).count(),
        8,
        "one record per read:\n{sam}"
    );

    // Thread invariance holds for baseline backends exactly as for the
    // native one (ci.sh runs the full backend matrix).
    map_backend("graphaligner", "1", "ga1.sam");
    assert_eq!(
        fs::read(dir.path("ga1.sam")).unwrap(),
        fs::read(dir.path("ga4.sam")).unwrap(),
        "graphaligner output differs across threads"
    );

    // eval compare: table + JSON artifact over two backends.
    let json_path = dir.path("cmp.json");
    let report = run(&[
        "eval",
        "compare",
        "--graph",
        &format!("{prefix}.gfa"),
        "--reads",
        &format!("{prefix}.fq"),
        "--backends",
        "segram,vg",
        "--threads",
        "2",
        "--json",
        &json_path,
    ])
    .expect("eval compare");
    assert!(
        report.contains("compared 2 backends on 8 reads"),
        "{report}"
    );
    assert!(report.contains("8 with truth labels"), "{report}");
    for column in ["backend", "accuracy", "reads/s", "hw-makespan-us"] {
        assert!(report.contains(column), "missing column {column}: {report}");
    }
    assert!(report.contains("segram"), "{report}");
    let json = fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"backend\": \"segram\""), "{json}");
    assert!(json.contains("\"backend\": \"vg\""), "{json}");
    assert!(json.contains("\"modeled_makespan_ns\""), "{json}");
}

#[test]
fn io_and_format_errors_are_reported_with_paths() {
    let dir = TempDir::new("errors");
    let err = run(&["index", "--graph", &dir.path("missing.gfa")]).unwrap_err();
    assert_eq!(err.exit_code(), 1);
    assert!(err.to_string().contains("missing.gfa"));

    let bad = dir.path("bad.fa");
    fs::write(&bad, ">x\nACGTN\n").unwrap();
    let err = run(&[
        "construct",
        "--reference",
        &bad,
        "--output",
        &dir.path("g.gfa"),
    ])
    .unwrap_err();
    assert!(err.to_string().contains("bad.fa"), "{err}");
    assert!(err.to_string().contains("invalid base"), "{err}");

    // --lenient rescues the same input.
    run(&[
        "construct",
        "--reference",
        &bad,
        "--output",
        &dir.path("g.gfa"),
        "--lenient",
    ])
    .expect("lenient construct");
}

#[test]
fn map_results_land_near_simulated_truth() {
    let dir = TempDir::new("truth");
    let prefix = dir.path("t");
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "40000",
        "--reads",
        "15",
        "--read-len",
        "150",
        "--seed",
        "21",
    ])
    .expect("simulate");

    let gaf_path = dir.path("t.gaf");
    run(&[
        "map",
        "--graph",
        &format!("{prefix}.gfa"),
        "--reads",
        &format!("{prefix}.fq"),
        "--format",
        "gaf",
        "--output",
        &gaf_path,
        "--both-strands",
    ])
    .expect("map");

    // Cross-check GAF mappings against the truth the simulator put in the
    // FASTQ descriptions.
    let fastq = segram_io::read_fastq(
        &fs::read_to_string(format!("{prefix}.fq")).unwrap(),
        segram_io::Ambiguity::Reject,
    )
    .unwrap();
    let gaf = segram_io::read_gaf(&fs::read_to_string(&gaf_path).unwrap()).unwrap();
    assert!(
        gaf.len() * 10 >= fastq.len() * 8,
        "expected >=80% of reads mapped, got {}/{}",
        gaf.len(),
        fastq.len()
    );
    let mut checked = 0;
    for rec in &gaf {
        let read = fastq
            .iter()
            .find(|r| r.id == rec.qname)
            .expect("known read");
        // identity should be high for 1%-error reads.
        assert!(
            rec.identity() > 0.9,
            "{}: identity {}",
            rec.qname,
            rec.identity()
        );
        let _ = read;
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn linear_reference_without_vcf_maps_as_s2s() {
    // `construct` without --vcf produces a linear (single-path) graph;
    // mapping against it is the paper's sequence-to-sequence special case.
    let dir = TempDir::new("s2s");
    let prefix = dir.path("lin");
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "20000",
        "--reads",
        "8",
        "--read-len",
        "100",
        "--seed",
        "3",
    ])
    .expect("simulate");

    let linear_gfa = dir.path("linear.gfa");
    run(&[
        "construct",
        "--reference",
        &format!("{prefix}.fa"),
        "--output",
        &linear_gfa,
    ])
    .expect("construct without VCF");

    let out = dir.path("s2s.sam");
    let report = run(&[
        "map",
        "--graph",
        &linear_gfa,
        "--reads",
        &format!("{prefix}.fq"),
        "--output",
        &out,
        "--both-strands",
    ])
    .expect("map against linear graph");
    assert!(report.contains("mapped"), "{report}");
    let sam = fs::read_to_string(&out).unwrap();
    // Most 1%-error reads map even against the variant-free reference
    // (variants the simulator embedded just cost an edit or two).
    let mapped = sam
        .lines()
        .filter(|l| !l.starts_with('@'))
        .filter(|l| l.split('\t').nth(1) != Some("4"))
        .count();
    assert!(
        mapped >= 6,
        "only {mapped}/8 reads mapped in S2S mode:\n{sam}"
    );
}
