//! A criterion-flavoured microbenchmark harness so `crates/bench/benches`
//! compile and run with no external dependencies. Benchmarks are declared
//! with [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) and `harness = false`.
//!
//! Measurement model: per benchmark, a short warm-up, then `sample_size`
//! timed batches whose batch size is auto-calibrated so each batch takes
//! roughly a millisecond; the report prints the median, min, and max
//! per-iteration time. Far simpler than criterion's bootstrap analysis,
//! but stable enough to compare kernels.
//!
//! Two environment variables support the CI bench-smoke tier:
//!
//! * `SEGRAM_BENCH_SAMPLES=N` — run exactly `N` samples per benchmark and
//!   skip warm-up/calibration (each sample is one iteration), so bench
//!   binaries can be smoke-tested in seconds;
//! * `SEGRAM_BENCH_JSON=path` — append one JSON object per benchmark
//!   (`{"group":…,"id":…,"median_s":…,"min_s":…,"max_s":…,"samples":…}`)
//!   to `path`, giving CI a machine-readable artifact.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

// Re-exported here so `use segram_testkit::bench::{criterion_group, ...}`
// mirrors `use criterion::{criterion_group, ...}`.
pub use crate::{criterion_group, criterion_main};

/// Top-level harness state (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// The `SEGRAM_BENCH_SAMPLES` smoke override, if set and parsable.
fn smoke_samples() -> Option<usize> {
    std::env::var("SEGRAM_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: usize| n.max(1))
}

/// A `name/parameter` benchmark id (mirrors `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Throughput annotation for a group (printed with each report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.into().id, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.into().id, self.throughput);
        self
    }

    /// Ends the group (report lines are printed eagerly; this exists for
    /// criterion source compatibility).
    pub fn finish(&mut self) {}
}

/// Hands the measured closure to the harness (mirrors
/// `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Per-iteration seconds, one entry per timed batch.
    measurements: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            measurements: Vec::new(),
        }
    }

    /// Measures `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Smoke mode: a fixed tiny sample count, one iteration per sample,
        // no warm-up — CI only checks that the benchmark still runs.
        if let Some(samples) = smoke_samples() {
            self.measurements.clear();
            for _ in 0..samples {
                let start = Instant::now();
                black_box(routine());
                self.measurements.push(start.elapsed().as_secs_f64());
            }
            return;
        }
        // Warm-up + batch-size calibration: grow until one batch costs
        // >= ~1 ms (or a growth cap for very slow routines).
        let mut batch = 1u64;
        let batch = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break batch;
            }
            batch *= 2;
        };
        self.measurements.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.measurements
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.measurements.is_empty() {
            println!("  {group}/{id}: no measurements");
            return;
        }
        let mut sorted = self.measurements.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let line = format!(
            "  {group}/{id}: median {} (min {}, max {}, {} samples)",
            format_time(median),
            format_time(sorted[0]),
            format_time(*sorted.last().unwrap()),
            sorted.len(),
        );
        match throughput {
            Some(Throughput::Bytes(bytes)) => {
                let rate = bytes as f64 / median / 1e6;
                println!("{line} [{rate:.1} MB/s]");
            }
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / median / 1e6;
                println!("{line} [{rate:.2} Melem/s]");
            }
            None => println!("{line}"),
        }
        self.append_json(group, id, median, sorted[0], *sorted.last().unwrap());
    }

    /// Appends this benchmark's result as one JSON line to the
    /// `SEGRAM_BENCH_JSON` artifact, when requested. Failures are
    /// reported but never fail the benchmark itself.
    fn append_json(&self, group: &str, id: &str, median: f64, min: f64, max: f64) {
        let Ok(path) = std::env::var("SEGRAM_BENCH_JSON") else {
            return;
        };
        let line = format!(
            "{{\"group\":{group:?},\"id\":{id:?},\"median_s\":{median:e},\
             \"min_s\":{min:e},\"max_s\":{max:e},\"samples\":{}}}",
            self.measurements.len()
        );
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{line}"));
        if let Err(err) = appended {
            eprintln!("SEGRAM_BENCH_JSON: cannot append to {path}: {err}");
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group of benchmark functions (mirrors criterion's macro;
/// only the positional `criterion_group!(name, target, ...)` form is
/// supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("testkit_selftest");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn smoke_mode_writes_json_artifact() {
        let path =
            std::env::temp_dir().join(format!("segram_bench_smoke_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("SEGRAM_BENCH_SAMPLES", "2");
        std::env::set_var("SEGRAM_BENCH_JSON", &path);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("json_selftest");
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        group.finish();
        std::env::remove_var("SEGRAM_BENCH_SAMPLES");
        std::env::remove_var("SEGRAM_BENCH_JSON");
        // Smoke mode ran exactly the requested samples (no calibration).
        assert_eq!(runs, 2);
        let artifact = std::fs::read_to_string(&path).expect("artifact written");
        let line = artifact
            .lines()
            .find(|l| l.contains("\"group\":\"json_selftest\""))
            .expect("selftest line present");
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"samples\":2"), "{line}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn format_time_picks_units() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with(" s"));
    }
}
