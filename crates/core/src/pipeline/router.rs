//! The seeding-stage router: dispatches a read's minimizers to the
//! shard(s) whose index slice can answer them and merges the per-shard
//! hits into one candidate-region list **before** prefilter/alignment.
//!
//! Byte-identity with the unsharded path holds by construction:
//!
//! 1. the shards partition the monolithic index's seed locations, so for
//!    every minimizer the summed per-shard frequency equals the global
//!    frequency (the frequency filter makes identical decisions);
//! 2. candidate regions are computed with the same Figure 9 arithmetic
//!    ([`segram_index::seed_region`]) against the same shared graph;
//! 3. the merged region list ends in the exact monolithic
//!    sort-by-`(start, end, seed)` + dedup-by-`(start, end)` ordering —
//!    but since the shards are coordinate-disjoint by construction of
//!    `split_by_ranges`, the merge concatenates the per-shard sorted
//!    lists in shard order instead of re-sorting the whole set, falling
//!    back to the monolithic sort only when region padding crosses a
//!    shard boundary (a debug assertion checks the result is sorted
//!    either way).
//!
//! The router also feeds each shard's occupancy counters (seed hits,
//! regions produced), the observability behind the paper's Section 8.3
//! load-balance study.

use segram_graph::{DnaSeq, GenomeGraph};
use segram_index::{extract_minimizers, seed_region, SeedRegion, SeedingResult, SeedingStats};

use crate::pipeline::Seeder;
use crate::shard::IndexShard;

/// The sharded [`Seeder`]: minimizer extraction once per read, a global
/// frequency decision, then per-shard index lookups merged into the
/// monolithic candidate order.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter<'a> {
    graph: &'a GenomeGraph,
    shards: &'a [IndexShard],
    error_rate: f64,
    frequency_threshold: u32,
}

impl<'a> ShardRouter<'a> {
    /// Binds the router to a shard set. `frequency_threshold` must be the
    /// *global* (whole-graph) threshold, not a shard-local one.
    pub fn new(
        graph: &'a GenomeGraph,
        shards: &'a [IndexShard],
        error_rate: f64,
        frequency_threshold: u32,
    ) -> Self {
        assert!(!shards.is_empty(), "router needs at least one shard");
        Self {
            graph,
            shards,
            error_rate,
            frequency_threshold,
        }
    }

    /// The shards this router dispatches to.
    pub fn shards(&self) -> &'a [IndexShard] {
        self.shards
    }

    /// Per-shard seed-hit counts for one read — the elastic scheduler's
    /// cheap pre-route pass. Extracts the read's minimizers once and
    /// applies the same global frequency filter as [`Seeder::seed`], but
    /// records **nothing** into the shard occupancy counters (routing a
    /// batch must not double-count the seeding load the mapping pass will
    /// record again).
    pub fn route_hits(&self, read: &DnaSeq) -> Vec<u64> {
        let scheme = *self.shards[0].mapper().index().scheme();
        let minimizers = extract_minimizers(read, &scheme);
        let mut hits = vec![0u64; self.shards.len()];
        let mut counts: Vec<u32> = vec![0; self.shards.len()];
        for m in &minimizers {
            for (count, shard) in counts.iter_mut().zip(self.shards) {
                *count = shard.mapper().index().lookup(m).len() as u32;
            }
            let freq: u32 = counts.iter().sum();
            if freq > self.frequency_threshold {
                continue;
            }
            for (hit, count) in hits.iter_mut().zip(&counts) {
                *hit += u64::from(*count);
            }
        }
        hits
    }
}

/// Merges per-shard candidate lists into the monolithic
/// `(start, end, seed)` order: each list is sorted, then the lists are
/// concatenated in shard (coordinate) order. `seed_region` pads windows
/// around the seed location, so a region from shard `i+1` can start
/// before shard `i`'s last — that boundary overlap is detected and falls
/// back to the monolithic whole-list sort (same bytes, since ties on the
/// full key always live in one shard and stable sorting preserves their
/// insertion order).
fn merge_shard_regions(mut per_shard: Vec<Vec<SeedRegion>>) -> Vec<SeedRegion> {
    let key = |r: &SeedRegion| (r.start, r.end, r.seed);
    for list in &mut per_shard {
        list.sort_by_key(key);
    }
    let mut concat_sorted = true;
    let mut last_key = None;
    for list in &per_shard {
        if let (Some(prev), Some(first)) = (last_key, list.first()) {
            if prev > key(first) {
                concat_sorted = false;
                break;
            }
        }
        if let Some(tail) = list.last() {
            last_key = Some(key(tail));
        }
    }
    let mut regions: Vec<SeedRegion> = per_shard.into_iter().flatten().collect();
    if !concat_sorted {
        regions.sort_by_key(key);
    }
    debug_assert!(
        regions.windows(2).all(|w| key(&w[0]) <= key(&w[1])),
        "merged per-shard regions must arrive sorted"
    );
    regions
}

impl Seeder for ShardRouter<'_> {
    fn seed(&self, read: &DnaSeq) -> SeedingResult {
        let scheme = *self.shards[0].mapper().index().scheme();
        let minimizers = extract_minimizers(read, &scheme);
        let mut stats = SeedingStats {
            minimizers: minimizers.len(),
            ..SeedingStats::default()
        };
        // Regions accumulate per shard so the merge can concatenate the
        // per-shard sorted lists instead of re-sorting everything.
        let mut shard_regions: Vec<Vec<SeedRegion>> = vec![Vec::new(); self.shards.len()];
        // One index probe per shard per minimizer: the location slice
        // answers both the routing question (who holds this minimizer)
        // and the frequency question (its length *is* the shard-local
        // frequency), so no separate frequency lookup is needed.
        let mut per_shard: Vec<&[segram_graph::GraphPos]> = Vec::with_capacity(self.shards.len());
        for m in &minimizers {
            per_shard.clear();
            per_shard.extend(self.shards.iter().map(|s| s.mapper().index().lookup(m)));
            // Summed shard-local frequencies reproduce the monolithic
            // frequency-filter decision (the shards partition the index).
            let freq: u32 = per_shard.iter().map(|locs| locs.len() as u32).sum();
            if freq > self.frequency_threshold {
                stats.filtered_minimizers += 1;
                continue;
            }
            for ((shard, locs), regions) in self
                .shards
                .iter()
                .zip(&per_shard)
                .zip(shard_regions.iter_mut())
            {
                if locs.is_empty() {
                    continue;
                }
                shard.record_seed_hits(locs.len() as u64);
                for &loc in *locs {
                    stats.seed_locations += 1;
                    if let Some(region) =
                        seed_region(self.graph, self.error_rate, read.len(), m, loc, scheme.k)
                    {
                        shard.record_region();
                        regions.push(region);
                    }
                }
            }
        }
        let mut regions = merge_shard_regions(shard_regions);
        regions.dedup_by_key(|r| (r.start, r.end));
        stats.regions = regions.len();
        SeedingResult { regions, stats }
    }
}
