//! Criterion bench: pre-alignment filter cost vs the BitAlign work they
//! save. A filter only pays off when checking a candidate costs much less
//! than aligning it — this bench quantifies that ratio for each filter on
//! true-positive and decoy candidates.

use segram_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segram_testkit::rng::ChaCha8Rng;
use segram_testkit::rng::{Rng, SeedableRng};

use segram_align::{bitalign, windowed_bitalign, StartMode, WindowConfig};
use segram_filter::{
    BaseCountFilter, EditLowerBound, QGramFilter, ShiftedHammingFilter, SneakySnakeFilter,
};
use segram_graph::{Base, DnaSeq, LinearizedGraph, BASES};

fn random_seq(rng: &mut ChaCha8Rng, len: usize) -> Vec<Base> {
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

/// A read copied from `text` with `errors` substitutions sprinkled in.
fn planted_read(rng: &mut ChaCha8Rng, text: &[Base], len: usize, errors: usize) -> Vec<Base> {
    let start = rng.gen_range(0..text.len() - len);
    let mut read = text[start..start + len].to_vec();
    for _ in 0..errors {
        let i = rng.gen_range(0..read.len());
        read[i] = BASES[rng.gen_range(0..4)];
    }
    read
}

fn bench_filters(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    for (read_len, k) in [(150usize, 12u32), (1_000, 80)] {
        let text = random_seq(&mut rng, read_len + read_len / 5);
        let positive = planted_read(&mut rng, &text, read_len, (read_len / 100).max(1));
        let decoy = random_seq(&mut rng, read_len);

        let mut group = c.benchmark_group(format!("filters/{read_len}bp"));
        for (name, filter) in [
            ("base-count", &BaseCountFilter as &dyn EditLowerBound),
            ("q-gram5", &QGramFilter::new(5)),
            ("shifted-hamming", &ShiftedHammingFilter),
            ("sneaky-snake", &SneakySnakeFilter),
        ] {
            group.bench_with_input(BenchmarkId::new(name, "positive"), &positive, |b, read| {
                b.iter(|| filter.lower_bound(std::hint::black_box(read), &text, k))
            });
            group.bench_with_input(BenchmarkId::new(name, "decoy"), &decoy, |b, read| {
                b.iter(|| filter.lower_bound(std::hint::black_box(read), &text, k))
            });
        }

        // The alignment work a rejection saves.
        let lin = LinearizedGraph::from_linear_seq(&text.iter().copied().collect::<DnaSeq>());
        let read_dna: DnaSeq = positive.iter().copied().collect();
        group.bench_function("bitalign-baseline", |b| {
            b.iter(|| {
                if read_len <= 128 {
                    let _ = bitalign(&lin, std::hint::black_box(&read_dna), k);
                } else {
                    let _ = windowed_bitalign(
                        &lin,
                        std::hint::black_box(&read_dna),
                        WindowConfig::bitalign(),
                        StartMode::Free,
                    );
                }
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
