//! A set-associative LRU cache simulator.
//!
//! Section 3's bottleneck analysis rests on two memory-system
//! observations: alignment's working set thrashes CPU caches
//! (Observation 2: GraphAligner shows a 41 % cache miss rate) and
//! seeding's index lookups are DRAM-latency-bound random accesses
//! (Observation 3). The paper measured both with VTune/Perf on a Xeon;
//! this module rebuilds the measurement instrument so the `obs_memory`
//! experiment can replay the same access patterns against modeled caches.

use std::fmt;

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A 32 kB, 8-way, 64 B-line L1D (the Xeon E5-2630 v4's L1).
    pub fn l1d() -> Self {
        Self {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// A 256 kB, 8-way L2 (per-core, same part).
    pub fn l2() -> Self {
        Self {
            size_bytes: 256 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// A 2.5 MB/core slice of the shared L3 (25 MB across 10 cores).
    pub fn l3_slice() -> Self {
        Self {
            size_bytes: 2_560 * 1024,
            line_bytes: 64,
            ways: 20,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (including cold misses).
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]` (0 when nothing was accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.misses as f64 / self.accesses as f64
    }

    /// Hits.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.1}%)",
            self.accesses,
            self.misses,
            self.miss_rate() * 100.0
        )
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are byte addresses; each access touches the line containing
/// the address (accesses are assumed not to straddle lines, which holds
/// for the word-granular traces the experiments generate).
///
/// # Examples
///
/// ```
/// use segram_hw::{CacheConfig, CacheSim};
///
/// let mut cache = CacheSim::new(CacheConfig { size_bytes: 128, line_bytes: 32, ways: 2 });
/// assert!(!cache.access(0));   // cold miss
/// assert!(cache.access(4));    // same line: hit
/// assert!(!cache.access(64));  // different line: miss
/// assert_eq!(cache.stats().misses, 2);
/// ```
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per-set list of (tag, last-use stamp).
    sets: Vec<Vec<(u64, u64)>>,
    clock: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// line size, or a capacity not divisible into sets).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.ways > 0, "cache needs at least one way");
        assert!(
            config.line_bytes.is_power_of_two() && config.line_bytes > 0,
            "line size must be a power of two"
        );
        assert!(
            config
                .size_bytes
                .is_multiple_of(config.line_bytes * config.ways)
                && config.sets() > 0,
            "capacity must divide into whole sets"
        );
        let sets = vec![Vec::with_capacity(config.ways); config.sets()];
        Self {
            config,
            sets,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses the byte at `addr`; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr / self.config.line_bytes as u64;
        let set_count = self.sets.len() as u64;
        let set_idx = (line % set_count) as usize;
        let tag = line / set_count;
        let set = &mut self.sets[set_idx];

        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            return true;
        }
        self.stats.misses += 1;
        if set.len() == self.config.ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("non-empty set");
            set.swap_remove(victim);
        }
        set.push((tag, self.clock));
        false
    }

    /// Replays a whole trace, returning the stats delta it produced.
    pub fn run_trace(&mut self, addrs: impl IntoIterator<Item = u64>) -> CacheStats {
        let before = self.stats;
        for addr in addrs {
            self.access(addr);
        }
        CacheStats {
            accesses: self.stats.accesses - before.accesses,
            misses: self.stats.misses - before.misses,
        }
    }

    /// Cumulative statistics since construction or the last reset.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the statistics but keeps cache contents (so a warm-up phase
    /// can be excluded from measurement).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Empties the cache and clears statistics.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets x 2 ways x 16-byte lines = 128 bytes.
        CacheSim::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            ways: 2,
        })
    }

    #[test]
    fn same_line_hits_after_cold_miss() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(15));
        assert!(!c.access(16));
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line numbers 0, 4, 8 with 4 sets).
        c.access(0); // line 0 -> set 0
        c.access(64); // line 4 -> set 0
        assert!(c.access(0)); // refresh line 0
        c.access(128); // line 8 -> set 0: evicts line 4 (LRU)
        assert!(c.access(0), "recently used line must survive");
        assert!(!c.access(64), "LRU line must have been evicted");
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = CacheSim::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 4,
        });
        let lines: Vec<u64> = (0..16).map(|i| i * 64).collect();
        c.run_trace(lines.iter().copied());
        c.reset_stats();
        for _ in 0..10 {
            c.run_trace(lines.iter().copied());
        }
        assert_eq!(c.stats().misses, 0, "resident working set must hit");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = CacheSim::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 4,
        });
        // 32 lines cycled in order through a 16-line LRU cache: every
        // access misses (the classic LRU sequential-thrash worst case).
        let lines: Vec<u64> = (0..32).map(|i| i * 64).collect();
        c.run_trace(lines.iter().copied());
        c.reset_stats();
        let stats = c.run_trace(lines.iter().copied());
        assert_eq!(stats.miss_rate(), 1.0);
    }

    #[test]
    fn stats_and_flush_behave() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert_eq!(c.stats().hits(), 1);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0), "contents survive reset_stats");
        c.flush();
        assert!(!c.access(0), "flush empties the cache");
    }

    #[test]
    fn xeon_presets_have_sane_geometry() {
        for config in [
            CacheConfig::l1d(),
            CacheConfig::l2(),
            CacheConfig::l3_slice(),
        ] {
            let c = CacheSim::new(config);
            assert!(c.config().sets() > 0);
        }
        assert_eq!(CacheConfig::l1d().sets(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_is_rejected() {
        let _ = CacheSim::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 64,
            ways: 0,
        });
    }
}
