//! File-based pipeline: the workflow a downstream user runs on real data —
//! parse a FASTA reference and a VCF, build the graph, write it as GFA,
//! map FASTQ reads with a pre-alignment filter enabled, and emit both SAM
//! (linear surjection) and GAF (explicit graph paths).
//!
//! Everything stays in memory as strings here so the example is
//! self-contained; the `segram` binary (`crates/cli`) performs the same
//! steps on actual files.
//!
//! Run with: `cargo run --release --example file_pipeline`

use segram_core::{mapq_estimate, sam_document, SamRecord, SegramConfig, SegramMapper};
use segram_filter::FilterSpec;
use segram_graph::{build_graph, gfa};
use segram_io::{read_fasta, read_fastq, read_vcf, write_gaf, Ambiguity, GafRecord, VcfOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The input files (inline for the example). The reference carries a
    //    SNP and an insertion in the population VCF.
    let fasta = format!(
        ">chr20 demo contig\n{}\n",
        "ACGTTGCAGCATGGCATTAC".repeat(40)
    );
    let vcf = concat!(
        "##fileformat=VCFv4.2\n",
        "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n",
        "chr20\t41\trs1\tA\tC\t.\tPASS\t.\n",
        "chr20\t200\t.\tT\tTGGA\t.\tPASS\t.\n",
    );

    // 2. Parse and construct (the paper's pre-processing, Section 5).
    let reference = &read_fasta(&fasta, Ambiguity::Reject)?[0];
    let variants = read_vcf(vcf, VcfOptions::default())?
        .chrom(&reference.id)
        .cloned()
        .unwrap_or_default();
    println!(
        "parsed {} ({} bp), {} variants",
        reference.id,
        reference.seq.len(),
        variants.len()
    );
    let built = build_graph(&reference.seq, variants.into_sorted())?;
    let gfa_text = gfa::to_gfa(&built.graph);
    println!(
        "graph: {} nodes / {} edges -> {} GFA lines",
        built.graph.node_count(),
        built.graph.edge_count(),
        gfa_text.lines().count()
    );

    // 3. Reads arrive as FASTQ. read1 spells the ALT path of the SNP;
    //    read2 contains the insertion allele; read3 is junk that should be
    //    rejected by the pre-alignment filter before BitAlign runs.
    let mut alt_window = String::new();
    for (i, base) in reference.seq.iter().enumerate().skip(20).take(60) {
        alt_window.push(if i == 40 { 'C' } else { char::from(base) });
    }
    let mut ins_window = String::new();
    for (i, base) in reference.seq.iter().enumerate().skip(170).take(60) {
        ins_window.push(char::from(base));
        if i == 199 {
            ins_window.push_str("GGA");
        }
    }
    let junk = "AC".repeat(30);
    let fastq = format!(
        "@read1 alt-snp\n{alt_window}\n+\n{}\n@read2 insertion\n{ins_window}\n+\n{}\n@read3 junk\n{junk}\n+\n{}\n",
        "I".repeat(alt_window.len()),
        "I".repeat(ins_window.len()),
        "I".repeat(junk.len()),
    );
    let reads = read_fastq(&fastq, Ambiguity::Reject)?;

    // 4. Map with the SneakySnake prefilter enabled (the footnote-6
    //    future-work study).
    let mut config = SegramConfig::short_reads();
    config.scheme = segram_index::MinimizerScheme::new(5, 11); // small demo genome
    config.prefilter = Some(FilterSpec::SneakySnake);
    let mapper = SegramMapper::new(built.graph.clone(), config);

    let mut sam_records = Vec::new();
    let mut gaf_records = Vec::new();
    for read in &reads {
        let (mapping, stats) = mapper.map_read(&read.seq);
        match mapping {
            Some(mapping) => {
                let mapq = mapq_estimate(
                    stats.regions_aligned,
                    mapping.alignment.edit_distance,
                    read.seq.len(),
                );
                println!(
                    "{}: mapped at linear {} with {} edits (CIGAR {}, {} regions filtered)",
                    read.id,
                    mapping.linear_start,
                    mapping.alignment.edit_distance,
                    mapping.alignment.cigar,
                    stats.regions_filtered,
                );
                sam_records.push(SamRecord::from_mapping(
                    &read.id,
                    &reference.id,
                    &read.seq,
                    &mapping,
                    mapq,
                ));
                gaf_records.push(GafRecord::from_char_path(
                    &read.id,
                    read.seq.len(),
                    mapper.graph(),
                    &mapping.path,
                    &mapping.alignment.cigar,
                    mapping.alignment.edit_distance,
                    mapq,
                )?);
            }
            None => {
                println!(
                    "{}: unmapped ({} regions filtered before alignment)",
                    read.id, stats.regions_filtered
                );
                sam_records.push(SamRecord::unmapped(&read.id, &read.seq));
            }
        }
    }

    // 5. Emit both output formats.
    let sam = sam_document(&reference.id, built.graph.total_chars(), &sam_records);
    let gaf = write_gaf(&gaf_records);
    println!("\n--- SAM ---\n{sam}");
    println!("--- GAF ---\n{gaf}");

    // The variant-carrying reads align cleanly (the graph absorbs the
    // variants) and the GAF paths walk through the ALT nodes.
    assert!(gaf_records.iter().any(|r| r.path.len() > 1));
    Ok(())
}
