//! The genome graph: a directed acyclic sequence graph in which every node
//! carries one or more base pairs and multiple outgoing edges capture genetic
//! variation (Figure 1 of the paper).

use std::collections::VecDeque;
use std::fmt;

use crate::{Base, DnaSeq, GraphError};

/// Identifier of a node in a [`GenomeGraph`].
///
/// Node ids are dense (`0..node_count`) and, after
/// [`GenomeGraph::topological_sort`], respect topological order: every edge
/// points from a smaller id to a larger id.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(id: u32) -> Self {
        NodeId(id)
    }
}

/// A position inside a genome graph: a node plus a character offset within
/// that node's sequence.
///
/// This is exactly the third-level entry of the paper's hash-table index
/// (Figure 6: "node ID, offset").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphPos {
    /// Node containing the character.
    pub node: NodeId,
    /// 0-based offset of the character within the node's sequence.
    pub offset: u32,
}

impl GraphPos {
    /// Creates a graph position.
    pub fn new(node: NodeId, offset: u32) -> Self {
        Self { node, offset }
    }
}

impl fmt::Display for GraphPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.offset)
    }
}

/// Summary statistics of a genome graph, mirroring the numbers the paper
/// reports for its 24 chromosome graphs (Section 10: "20.4 M nodes, 27.9 M
/// edges, 3.1 B sequence characters").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of nodes.
    pub node_count: usize,
    /// Number of directed edges.
    pub edge_count: usize,
    /// Total number of sequence characters across all nodes.
    pub total_chars: u64,
}

/// A directed acyclic genome graph.
///
/// Built through [`GraphBuilder`] or
/// [`build_graph`](crate::construct::build_graph); most pipeline stages
/// require the graph to be topologically sorted (the paper sorts with
/// `vg ids -s` during pre-processing, Section 5).
///
/// # Examples
///
/// ```
/// use segram_graph::{DnaSeq, GraphBuilder};
///
/// // The Figure 1 graph: ACG -> {T, G, TT, ε} -> ACGT
/// let mut b = GraphBuilder::new();
/// let acg = b.add_node("ACG".parse()?)?;
/// let t = b.add_node("T".parse()?)?;
/// let g = b.add_node("G".parse()?)?;
/// let tt = b.add_node("TT".parse()?)?;
/// let acgt = b.add_node("ACGT".parse()?)?;
/// for alt in [t, g, tt] {
///     b.add_edge(acg, alt)?;
///     b.add_edge(alt, acgt)?;
/// }
/// b.add_edge(acg, acgt)?; // deletion path
/// let graph = b.finish()?;
/// assert_eq!(graph.stats().node_count, 5);
/// assert!(graph.is_topologically_sorted());
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenomeGraph {
    seqs: Vec<DnaSeq>,
    out_edges: Vec<Vec<NodeId>>,
    in_edges: Vec<Vec<NodeId>>,
    /// Prefix sums of node sequence lengths; `char_starts[i]` is the linear
    /// coordinate of node `i`'s first character (valid in topological order).
    char_starts: Vec<u64>,
    total_chars: u64,
    edge_count: usize,
}

impl GenomeGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.seqs.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Total number of characters stored across all node sequences.
    pub fn total_chars(&self) -> u64 {
        self.total_chars
    }

    /// Summary statistics.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            node_count: self.node_count(),
            edge_count: self.edge_count(),
            total_chars: self.total_chars(),
        }
    }

    /// Sequence of a node.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of bounds.
    pub fn seq(&self, node: NodeId) -> &DnaSeq {
        &self.seqs[node.index()]
    }

    /// Length (in characters) of a node's sequence.
    pub fn node_len(&self, node: NodeId) -> usize {
        self.seqs[node.index()].len()
    }

    /// Outgoing edges of a node, sorted by destination id.
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        &self.out_edges[node.index()]
    }

    /// Incoming edges of a node, sorted by source id.
    pub fn predecessors(&self, node: NodeId) -> &[NodeId] {
        &self.in_edges[node.index()]
    }

    /// Iterates over all node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.seqs.len() as u32).map(NodeId)
    }

    /// Iterates over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids()
            .flat_map(move |from| self.successors(from).iter().map(move |&to| (from, to)))
    }

    /// Returns `true` when every edge points from a smaller id to a larger
    /// id, i.e. node ids form a topological order.
    pub fn is_topologically_sorted(&self) -> bool {
        self.edges().all(|(a, b)| a < b)
    }

    /// Returns a relabelled copy of the graph whose node ids are in
    /// topological order, together with the mapping `old id -> new id`.
    ///
    /// This mirrors the paper's `vg ids -s` pre-processing step (Section 5).
    /// The sort is Kahn's algorithm with a smallest-id-first tie-break so the
    /// result is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CyclicGraph`] when the graph has a cycle.
    pub fn topological_sort(&self) -> Result<(GenomeGraph, Vec<NodeId>), GraphError> {
        let n = self.node_count();
        let mut in_deg: Vec<usize> = self.in_edges.iter().map(|v| v.len()).collect();
        // Min-heap behaviour via sorted queue: use BinaryHeap of Reverse.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n as u32)
            .filter(|&i| in_deg[i as usize] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(v)) = ready.pop() {
            order.push(NodeId(v));
            for &u in &self.out_edges[v as usize] {
                in_deg[u.index()] -= 1;
                if in_deg[u.index()] == 0 {
                    ready.push(std::cmp::Reverse(u.0));
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::CyclicGraph);
        }
        // old -> new mapping
        let mut mapping = vec![NodeId(0); n];
        for (new, &old) in order.iter().enumerate() {
            mapping[old.index()] = NodeId(new as u32);
        }
        let mut builder = GraphBuilder::new();
        for &old in &order {
            builder.add_node(self.seqs[old.index()].clone())?;
        }
        for (from, to) in self.edges() {
            builder.add_edge(mapping[from.index()], mapping[to.index()])?;
        }
        Ok((builder.finish()?, mapping))
    }

    /// Linear coordinate of a node's first character.
    ///
    /// Linear coordinates index the concatenation of all node sequences in
    /// id order; they are the coordinate system in which MinSeed computes
    /// candidate regions (Figure 9).
    pub fn char_start(&self, node: NodeId) -> u64 {
        self.char_starts[node.index()]
    }

    /// Converts a graph position to its linear coordinate.
    ///
    /// # Errors
    ///
    /// Returns an error when the node or the offset is out of bounds.
    pub fn linear_pos(&self, pos: GraphPos) -> Result<u64, GraphError> {
        let idx = pos.node.index();
        if idx >= self.node_count() {
            return Err(GraphError::NodeOutOfBounds {
                node: pos.node.0,
                node_count: self.node_count(),
            });
        }
        let node_len = self.seqs[idx].len();
        if pos.offset as usize >= node_len {
            return Err(GraphError::OffsetOutOfBounds {
                node: pos.node.0,
                offset: pos.offset,
                node_len,
            });
        }
        Ok(self.char_starts[idx] + pos.offset as u64)
    }

    /// Converts a linear coordinate back to a graph position.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LinearPosOutOfBounds`] when `pos` is at or past
    /// [`total_chars`](Self::total_chars).
    pub fn graph_pos(&self, pos: u64) -> Result<GraphPos, GraphError> {
        if pos >= self.total_chars {
            return Err(GraphError::LinearPosOutOfBounds {
                pos,
                total: self.total_chars,
            });
        }
        // char_starts is sorted; find the last node whose start is <= pos.
        let idx = match self.char_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Ok(GraphPos::new(
            NodeId(idx as u32),
            (pos - self.char_starts[idx]) as u32,
        ))
    }

    /// Returns the base at a graph position.
    ///
    /// # Errors
    ///
    /// Returns an error when the position is out of bounds.
    pub fn base_at(&self, pos: GraphPos) -> Result<Base, GraphError> {
        let idx = pos.node.index();
        if idx >= self.node_count() {
            return Err(GraphError::NodeOutOfBounds {
                node: pos.node.0,
                node_count: self.node_count(),
            });
        }
        self.seqs[idx]
            .get(pos.offset as usize)
            .ok_or(GraphError::OffsetOutOfBounds {
                node: pos.node.0,
                offset: pos.offset,
                node_len: self.seqs[idx].len(),
            })
    }

    /// Walks a path of node ids and concatenates their sequences.
    ///
    /// # Errors
    ///
    /// Returns an error when consecutive nodes are not connected by an edge
    /// or a node id is out of bounds.
    pub fn path_seq(&self, path: &[NodeId]) -> Result<DnaSeq, GraphError> {
        let mut seq = DnaSeq::new();
        for (i, &node) in path.iter().enumerate() {
            if node.index() >= self.node_count() {
                return Err(GraphError::NodeOutOfBounds {
                    node: node.0,
                    node_count: self.node_count(),
                });
            }
            if i > 0 {
                let prev = path[i - 1];
                if !self.successors(prev).contains(&node) {
                    return Err(GraphError::DuplicateEdge {
                        from: prev.0,
                        to: node.0,
                    });
                }
            }
            seq.extend_from_seq(&self.seqs[node.index()]);
        }
        Ok(seq)
    }

    /// Performs a breadth-first search from `start` and returns all nodes
    /// reachable within `max_nodes` expansions (including `start`).
    pub fn reachable_from(&self, start: NodeId, max_nodes: usize) -> Vec<NodeId> {
        let mut seen = vec![false; self.node_count()];
        let mut queue = VecDeque::from([start]);
        let mut out = Vec::new();
        seen[start.index()] = true;
        while let Some(v) = queue.pop_front() {
            out.push(v);
            if out.len() >= max_nodes {
                break;
            }
            for &u in self.successors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
        out
    }
}

/// Incremental builder for [`GenomeGraph`] (see [`GenomeGraph`] docs for an
/// example).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    seqs: Vec<DnaSeq>,
    out_edges: Vec<Vec<NodeId>>,
    in_edges: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.seqs.len()
    }

    /// Adds a node carrying `seq` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyNode`] when `seq` is empty: the paper's
    /// node table stores at least one character per node.
    pub fn add_node(&mut self, seq: DnaSeq) -> Result<NodeId, GraphError> {
        if seq.is_empty() {
            return Err(GraphError::EmptyNode);
        }
        let id = NodeId(self.seqs.len() as u32);
        self.seqs.push(seq);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        Ok(id)
    }

    /// Adds a directed edge `from -> to`.
    ///
    /// # Errors
    ///
    /// Returns an error when either endpoint is unknown, when the edge is a
    /// self loop, or when the edge already exists.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        let n = self.seqs.len();
        for node in [from, to] {
            if node.index() >= n {
                return Err(GraphError::NodeOutOfBounds {
                    node: node.0,
                    node_count: n,
                });
            }
        }
        if from == to {
            return Err(GraphError::SelfLoop { node: from.0 });
        }
        if self.out_edges[from.index()].contains(&to) {
            return Err(GraphError::DuplicateEdge {
                from: from.0,
                to: to.0,
            });
        }
        self.out_edges[from.index()].push(to);
        self.in_edges[to.index()].push(from);
        self.edge_count += 1;
        Ok(())
    }

    /// Returns `true` if the edge already exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.out_edges
            .get(from.index())
            .is_some_and(|v| v.contains(&to))
    }

    /// Finalizes the graph, sorting adjacency lists and computing linear
    /// coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CyclicGraph`] when the edges form a cycle.
    pub fn finish(mut self) -> Result<GenomeGraph, GraphError> {
        for edges in self.out_edges.iter_mut().chain(self.in_edges.iter_mut()) {
            edges.sort_unstable();
        }
        let mut char_starts = Vec::with_capacity(self.seqs.len());
        let mut total = 0u64;
        for seq in &self.seqs {
            char_starts.push(total);
            total += seq.len() as u64;
        }
        let graph = GenomeGraph {
            seqs: self.seqs,
            out_edges: self.out_edges,
            in_edges: self.in_edges,
            char_starts,
            total_chars: total,
            edge_count: self.edge_count,
        };
        // Cycle check: Kahn over the finished graph.
        let mut in_deg: Vec<usize> = graph.in_edges.iter().map(|v| v.len()).collect();
        let mut queue: VecDeque<usize> = (0..graph.node_count())
            .filter(|&i| in_deg[i] == 0)
            .collect();
        let mut visited = 0usize;
        while let Some(v) = queue.pop_front() {
            visited += 1;
            for &u in &graph.out_edges[v] {
                in_deg[u.index()] -= 1;
                if in_deg[u.index()] == 0 {
                    queue.push_back(u.index());
                }
            }
        }
        if visited != graph.node_count() {
            return Err(GraphError::CyclicGraph);
        }
        Ok(graph)
    }
}

/// Builds a graph with a single linear chain of nodes from a sequence —
/// the degenerate "linear reference" case that makes SeGraM a
/// sequence-to-sequence mapper (Section 9: "a graph where each node has an
/// outgoing edge to exactly one other node").
///
/// The sequence is split into nodes of at most `node_len` characters.
///
/// # Errors
///
/// Returns [`GraphError::EmptyNode`] when `seq` is empty or `node_len` is 0.
///
/// # Examples
///
/// ```
/// use segram_graph::linear_graph;
///
/// let graph = linear_graph(&"ACGTACGT".parse()?, 3)?;
/// assert_eq!(graph.node_count(), 3); // ACG, TAC, GT
/// assert!(graph.is_topologically_sorted());
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
pub fn linear_graph(seq: &DnaSeq, node_len: usize) -> Result<GenomeGraph, GraphError> {
    if seq.is_empty() || node_len == 0 {
        return Err(GraphError::EmptyNode);
    }
    let mut builder = GraphBuilder::new();
    let mut prev: Option<NodeId> = None;
    let mut start = 0;
    while start < seq.len() {
        let end = (start + node_len).min(seq.len());
        let id = builder.add_node(seq.slice(start, end))?;
        if let Some(p) = prev {
            builder.add_edge(p, id)?;
        }
        prev = Some(id);
        start = end;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_graph() -> GenomeGraph {
        // Figure 1: linear sequence ACGTACGT with variations producing
        // sequences ACGTACGT / ACGGACGT / ACGTTACGT / ACGACGT.
        let mut b = GraphBuilder::new();
        let acg = b.add_node("ACG".parse().unwrap()).unwrap();
        let t = b.add_node("T".parse().unwrap()).unwrap();
        let g = b.add_node("G".parse().unwrap()).unwrap();
        let tt = b.add_node("TT".parse().unwrap()).unwrap();
        let acgt = b.add_node("ACGT".parse().unwrap()).unwrap();
        for alt in [t, g, tt] {
            b.add_edge(acg, alt).unwrap();
            b.add_edge(alt, acgt).unwrap();
        }
        b.add_edge(acg, acgt).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn figure1_stats() {
        let g = figure1_graph();
        assert_eq!(g.stats().node_count, 5);
        assert_eq!(g.stats().edge_count, 7);
        assert_eq!(g.stats().total_chars, 3 + 1 + 1 + 2 + 4);
        assert!(g.is_topologically_sorted());
    }

    #[test]
    fn figure1_represents_all_four_sequences() {
        let g = figure1_graph();
        let paths: [(&str, Vec<NodeId>); 4] = [
            ("ACGTACGT", vec![NodeId(0), NodeId(1), NodeId(4)]),
            ("ACGGACGT", vec![NodeId(0), NodeId(2), NodeId(4)]),
            ("ACGTTACGT", vec![NodeId(0), NodeId(3), NodeId(4)]),
            ("ACGACGT", vec![NodeId(0), NodeId(4)]),
        ];
        for (expect, path) in paths {
            assert_eq!(g.path_seq(&path).unwrap().to_string(), expect);
        }
    }

    #[test]
    fn path_seq_rejects_disconnected_hops() {
        let g = figure1_graph();
        assert!(g.path_seq(&[NodeId(1), NodeId(2)]).is_err());
    }

    #[test]
    fn linear_coordinates_round_trip() {
        let g = figure1_graph();
        for node in g.node_ids() {
            for offset in 0..g.node_len(node) as u32 {
                let pos = GraphPos::new(node, offset);
                let linear = g.linear_pos(pos).unwrap();
                assert_eq!(g.graph_pos(linear).unwrap(), pos);
            }
        }
        assert!(g.graph_pos(g.total_chars()).is_err());
        assert!(g
            .linear_pos(GraphPos::new(NodeId(0), 3))
            .is_err_and(|e| matches!(e, GraphError::OffsetOutOfBounds { .. })));
    }

    #[test]
    fn base_at_reads_node_sequences() {
        let g = figure1_graph();
        assert_eq!(g.base_at(GraphPos::new(NodeId(0), 2)).unwrap(), Base::G);
        assert_eq!(g.base_at(GraphPos::new(NodeId(4), 0)).unwrap(), Base::A);
        assert!(g.base_at(GraphPos::new(NodeId(9), 0)).is_err());
    }

    #[test]
    fn builder_rejects_bad_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A".parse().unwrap()).unwrap();
        let c = b.add_node("C".parse().unwrap()).unwrap();
        assert!(b.add_edge(a, a).is_err());
        b.add_edge(a, c).unwrap();
        assert!(matches!(
            b.add_edge(a, c),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(b.add_edge(a, NodeId(7)).is_err());
        assert!(b.add_node(DnaSeq::new()).is_err());
    }

    #[test]
    fn cycle_is_detected_at_finish() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A".parse().unwrap()).unwrap();
        let c = b.add_node("C".parse().unwrap()).unwrap();
        b.add_edge(a, c).unwrap();
        b.add_edge(c, a).unwrap();
        assert_eq!(b.finish().unwrap_err(), GraphError::CyclicGraph);
    }

    #[test]
    fn topological_sort_relabels_reverse_graph() {
        // Build a graph with ids deliberately in reverse topological order.
        let mut b = GraphBuilder::new();
        let last = b.add_node("T".parse().unwrap()).unwrap();
        let mid = b.add_node("G".parse().unwrap()).unwrap();
        let first = b.add_node("A".parse().unwrap()).unwrap();
        b.add_edge(first, mid).unwrap();
        b.add_edge(mid, last).unwrap();
        let g = b.finish().unwrap();
        assert!(!g.is_topologically_sorted());
        let (sorted, mapping) = g.topological_sort().unwrap();
        assert!(sorted.is_topologically_sorted());
        assert_eq!(mapping[first.index()], NodeId(0));
        assert_eq!(mapping[mid.index()], NodeId(1));
        assert_eq!(mapping[last.index()], NodeId(2));
        assert_eq!(sorted.seq(NodeId(0)).to_string(), "A");
        assert_eq!(sorted.seq(NodeId(2)).to_string(), "T");
    }

    #[test]
    fn linear_graph_chains_nodes() {
        let g = linear_graph(&"ACGTACGTAC".parse().unwrap(), 4).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.seq(NodeId(2)).to_string(), "AC");
        // Every node except the last has exactly one successor.
        for node in g.node_ids() {
            let expected = usize::from(node.index() + 1 < g.node_count());
            assert_eq!(g.successors(node).len(), expected);
        }
    }

    #[test]
    fn reachable_from_respects_cap() {
        let g = figure1_graph();
        let all = g.reachable_from(NodeId(0), 100);
        assert_eq!(all.len(), 5);
        let capped = g.reachable_from(NodeId(0), 2);
        assert_eq!(capped.len(), 2);
    }
}
