//! Statistical effectiveness tests: soundness (never reject a true pair)
//! is enforced by `soundness_props`; a filter is only *useful* if it also
//! rejects most hopeless candidates. These tests pin the rejection power
//! on random decoys so a regression that silently weakens a bound (e.g.
//! an over-lenient envelope) fails loudly.

use segram_testkit::rng::ChaCha8Rng;
use segram_testkit::rng::{Rng, SeedableRng};

use segram_filter::{
    BaseCountFilter, EditLowerBound, QGramFilter, ShiftedHammingFilter, SneakySnakeFilter,
};
use segram_graph::{Base, BASES};

fn random_seq(rng: &mut ChaCha8Rng, len: usize) -> Vec<Base> {
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

/// Rejection rate of `filter` over `trials` random (read, text) pairs.
fn decoy_reject_rate(filter: &dyn EditLowerBound, k: u32, len: usize, trials: usize) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF11E);
    let mut rejected = 0usize;
    for _ in 0..trials {
        let read = random_seq(&mut rng, len);
        let text = random_seq(&mut rng, len + len / 10);
        if !filter.accepts(&read, &text, k) {
            rejected += 1;
        }
    }
    rejected as f64 / trials as f64
}

#[test]
fn sneaky_snake_rejects_most_decoys() {
    // Random 100 bp pairs are ~75 edits apart; at k = 10 the snake's
    // bound must see through nearly all of them.
    let rate = decoy_reject_rate(&SneakySnakeFilter, 10, 100, 200);
    assert!(rate > 0.95, "SneakySnake decoy rejection only {rate:.2}");
}

#[test]
fn qgram_rejects_most_decoys() {
    let rate = decoy_reject_rate(&QGramFilter::new(5), 10, 100, 200);
    assert!(rate > 0.8, "q-gram decoy rejection only {rate:.2}");
}

#[test]
fn weak_filters_are_weak_but_not_useless_at_tiny_k() {
    // The composition bound catches some decoys at k = 2 (a realistic
    // short-read threshold for low error rates).
    let base_count = decoy_reject_rate(&BaseCountFilter, 2, 100, 200);
    assert!(
        base_count > 0.3,
        "base-count rejection only {base_count:.2}"
    );
    // The sound SHD core without the (unsound) streak amendment is very
    // lenient by design; document its measured weakness here so a future
    // "improvement" that changes this is noticed and justified.
    let shd = decoy_reject_rate(&ShiftedHammingFilter, 2, 100, 200);
    assert!(
        shd < 0.5,
        "sound-core SHD unexpectedly aggressive: {shd:.2}"
    );
}

#[test]
fn rejection_power_grows_as_k_shrinks() {
    let strict = decoy_reject_rate(&SneakySnakeFilter, 5, 100, 100);
    let loose = decoy_reject_rate(&SneakySnakeFilter, 40, 100, 100);
    assert!(
        strict >= loose,
        "rejection must be monotone in k: k=5 {strict:.2} vs k=40 {loose:.2}"
    );
}

#[test]
fn planted_pairs_always_pass_at_generous_k() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    for _ in 0..100 {
        let text = random_seq(&mut rng, 160);
        let start = rng.gen_range(0..40);
        let mut read = text[start..start + 100].to_vec();
        for _ in 0..3 {
            let i = rng.gen_range(0..read.len());
            read[i] = BASES[rng.gen_range(0..4)];
        }
        // k = 10 >> 3 planted substitutions.
        for filter in [
            &BaseCountFilter as &dyn EditLowerBound,
            &QGramFilter::new(5),
            &ShiftedHammingFilter,
            &SneakySnakeFilter,
        ] {
            assert!(
                filter.accepts(&read, &text, 10),
                "{} rejected a 3-edit planted pair",
                filter.name()
            );
        }
    }
}
