//! Workspace umbrella crate: re-exports every SeGraM crate so the
//! root-level examples and integration tests have a single import surface.

pub use segram_align as align;
pub use segram_cli as cli;
pub use segram_core as core;
pub use segram_filter as filter;
pub use segram_graph as graph;
pub use segram_hw as hw;
pub use segram_index as index;
pub use segram_io as io;
pub use segram_sim as sim;
