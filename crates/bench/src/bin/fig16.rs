//! **Figure 16**: end-to-end throughput of GraphAligner, vg, and SeGraM
//! for short reads (Illumina, 100/150/250 bp at 1 % error).
//!
//! Paper result: SeGraM outperforms GraphAligner by 106× and vg by 742× on
//! average; the improvement *shrinks as reads get longer* (more seeds per
//! read), but stays above 52×. Power: 3.0×/3.2× lower than the baselines.

use segram_bench::experiments::{figure_row, print_rows, PowerComparison};
use segram_bench::{header, row, write_results, Scale};
use segram_core::SegramConfig;
use segram_testkit::Serialize;

#[derive(Serialize)]
struct Fig16 {
    rows: Vec<segram_bench::experiments::FigureRow>,
    power: PowerComparison,
    paper_speedup_vs_graphaligner: f64,
    paper_speedup_vs_vg: f64,
}

fn main() {
    let scale = Scale::from_env();
    header(&format!(
        "Figure 16: short-read end-to-end throughput ({} reads per dataset)",
        scale.read_count
    ));

    let mut rows = Vec::new();
    for (seed, len) in [(161u64, 100usize), (162, 150), (163, 250)] {
        let dataset = scale.dataset_config(seed).illumina(len);
        rows.push(figure_row(&dataset, SegramConfig::short_reads()));
    }
    let power = PowerComparison::short_reads();
    print_rows(&rows, &power);

    header("Shape checks against the paper");
    let speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.segram_system_reads_per_s / r.software[0].reads_per_s)
        .collect();
    row(
        "speedup vs GA-like by read length",
        format!(
            "{:.0}x (100bp) -> {:.0}x (150bp) -> {:.0}x (250bp)",
            speedups[0], speedups[1], speedups[2]
        ),
    );
    row(
        "paper shape",
        "improvement decreases as read length grows (more seeds/read)",
    );
    let monotone = speedups[0] >= speedups[2];
    row(
        "shape holds?",
        if monotone {
            "yes"
        } else {
            "no (see EXPERIMENTS.md)"
        },
    );

    write_results(
        "fig16",
        &Fig16 {
            rows,
            power,
            paper_speedup_vs_graphaligner: 106.0,
            paper_speedup_vs_vg: 742.0,
        },
    );
}
