//! **Ablation: the three scaling dimensions** of Section 11.2's "Sources
//! of Improvement": (1) PEs within a BitAlign array, (2) pipelined seeds
//! within an accelerator, (3) accelerators across HBM channels/stacks.
//!
//! The paper claims linear scaling in all three "as long as the memory
//! bandwidth remains unsaturated"; this sweep regenerates those curves
//! from the hardware model, including where bandwidth finally saturates.

use segram_bench::{header, write_results};
use segram_hw::{HbmConfig, SeedWorkload, SegramAccelerator, SegramSystem};
use segram_testkit::Serialize;

#[derive(Serialize)]
struct ScalingSweep {
    accelerators: Vec<(usize, f64)>,
    pe_count: Vec<(usize, u64)>,
    bandwidth_demand_gbps: f64,
    channel_bandwidth_gbps: f64,
    saturation_accelerators_per_channel: usize,
}

fn main() {
    let workload = SeedWorkload {
        read_len: 10_000,
        minimizers_per_read: 1200.0,
        surviving_minimizers: 1100.0,
        seeds_per_read: 3500.0,
        avg_region_len: 11_000.0,
    };

    header("Scaling dimension 3: accelerators (one per HBM channel)");
    println!(
        "  {:>13} {:>16} {:>10}",
        "accelerators", "reads/s", "linear?"
    );
    let mut accel_rows = Vec::new();
    let mut base = 0.0;
    for stacks in [1usize, 2, 4, 8] {
        let mut system = SegramSystem::default();
        system.hbm.stacks = stacks;
        let accels = system.hbm.total_channels();
        let throughput = system.throughput_reads_per_s(&workload);
        if stacks == 1 {
            base = throughput / accels as f64;
        }
        let linear = (throughput / accels as f64 - base).abs() < base * 1e-9;
        println!(
            "  {:>13} {:>16.1} {:>10}",
            accels,
            throughput,
            if linear { "yes" } else { "no" }
        );
        accel_rows.push((accels, throughput));
    }

    header("Scaling dimension 1: PEs within a BitAlign array");
    println!("  {:>6} {:>16} {:>12}", "PEs", "cycles(10kbp)", "speedup");
    let mut pe_rows = Vec::new();
    let mut pe_base = 0u64;
    for pes in [8usize, 16, 32, 64] {
        let hw = segram_hw::BitAlignHwConfig {
            window_bits: 128,
            pe_count: pes,
            stride: 80,
            clock_ghz: 1.0,
        };
        // The analytic decomposition: the 64 `R[d]` iterations of a window
        // are partitioned across the PEs (Algorithm 1 lines 16-24); with
        // fewer PEs they wrap around the array, multiplying window time.
        let passes = 64usize.div_ceil(pes) as u64;
        let cycles = hw.window_count(10_000) * passes * (128 + pes as u64 + 80);
        if pes == 8 {
            pe_base = cycles;
        }
        println!(
            "  {:>6} {:>16} {:>11.2}x",
            pes,
            cycles,
            pe_base as f64 / cycles as f64
        );
        pe_rows.push((pes, cycles));
    }
    println!("  (paper: 'we can incorporate as many as 64 PEs and still attain");
    println!("   linear performance improvements')");

    header("Scaling dimension 2: bandwidth headroom per channel");
    let acc = SegramAccelerator::default();
    let hbm = HbmConfig::default();
    let demand = acc.bandwidth_demand_bytes_per_s(&workload, &hbm) / 1e9;
    let capacity = hbm.channel_bw_bytes_per_ns;
    let saturation = (capacity / demand).floor() as usize;
    println!("  per-read-stream demand: {demand:.2} GB/s (paper: 3.4 GB/s) of {capacity:.0} GB/s");
    println!("  a channel could feed ~{saturation} read streams before saturating;");
    println!("  the paper runs 1 per channel, far below saturation -> linear scaling.");

    write_results(
        "ablation_scaling",
        &ScalingSweep {
            accelerators: accel_rows,
            pe_count: pe_rows,
            bandwidth_demand_gbps: demand,
            channel_bandwidth_gbps: capacity,
            saturation_accelerators_per_channel: saturation,
        },
    );
}
