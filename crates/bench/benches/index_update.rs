//! Criterion benchmarks for the incremental index maintenance path: what
//! `segram index update` buys over rebuilding from scratch when a small
//! VCF delta lands on a large reference, and what the dirty-shard hot
//! swap buys over re-sharding the whole store.

use segram_core::{SegramConfig, ShardedIndex};
use segram_graph::{build_graph, DnaSeq, Variant, VariantSet};
use segram_index::{
    frequency_threshold, initial_changelog, update_store, GraphIndex, PersistedIndex,
};
use segram_sim::{generate_reference, simulate_variants, GenomeConfig, VariantConfig};
use segram_testkit::bench::{black_box, criterion_group, criterion_main, Criterion};

const REF_LEN: usize = 200_000;
const SHARDS: usize = 8;

fn store_from(reference: &DnaSeq, variants: VariantSet, source: &str) -> PersistedIndex {
    let config = SegramConfig::short_reads();
    let built = build_graph(reference, variants).expect("variants apply");
    let changelog = initial_changelog(reference.clone(), &built, source);
    let index = GraphIndex::build(&built.graph, config.scheme, config.bucket_bits);
    let freq_threshold = frequency_threshold(&index, config.discard_frac);
    PersistedIndex {
        graph: built.graph,
        index,
        discard_frac: config.discard_frac,
        freq_threshold,
        changelog: Some(changelog),
        provenance: None,
    }
}

/// An epoch-0 store over a human-like 200 kb reference with simulated
/// variant density, plus a delta confined to the last ~5 % of the
/// coordinate space (indels only, so no alt can collide with the
/// generated reference base).
fn setup() -> (DnaSeq, PersistedIndex, VariantSet) {
    let reference = generate_reference(&GenomeConfig::human_like(REF_LEN, 211));
    let base = simulate_variants(&reference, &VariantConfig::human_like(211 ^ 0xabcd));
    let v1 = store_from(&reference, base, "base.vcf");
    let delta: VariantSet = vec![
        Variant::insertion(190_500, "ACGT".parse().expect("valid bases")),
        Variant::deletion(191_200, 5),
        Variant::insertion(195_000, "TTCA".parse().expect("valid bases")),
        Variant::deletion(199_000, 3),
    ]
    .into_iter()
    .collect();
    (reference, v1, delta)
}

/// The headline trade of the versioned store: `update_store` replays the
/// graph delta and re-extracts minimizers only inside the touched
/// coordinate ranges, where the scratch path re-runs graph construction
/// and full index extraction over all 200 kb.
fn bench_update_vs_scratch(c: &mut Criterion) {
    let (reference, v1, delta) = setup();
    let combined: VariantSet = v1
        .changelog
        .as_ref()
        .expect("versioned")
        .applied
        .iter()
        .chain(delta.iter())
        .cloned()
        .collect();
    let config = SegramConfig::short_reads();

    let mut group = c.benchmark_group("index_update_200kb");
    group.sample_size(10);
    group.bench_function("scratch_rebuild", |b| {
        b.iter(|| {
            let built =
                build_graph(black_box(&reference), combined.clone()).expect("variants apply");
            let index = GraphIndex::build(&built.graph, config.scheme, config.bucket_bits);
            black_box(index.footprint().total_bytes())
        })
    });
    group.bench_function("update_store", |b| {
        b.iter(|| {
            let out = update_store(black_box(&v1), &delta, "delta.vcf").expect("delta applies");
            black_box(out.persisted.index.footprint().total_bytes())
        })
    });
    group.finish();

    let out = update_store(&v1, &delta, "delta.vcf").expect("delta applies");
    println!(
        "  info: delta re-extracted {} of {} chars across {} fresh nodes \
         ({} locations carried, {} extracted)",
        out.stats.extracted_chars,
        out.persisted.graph.total_chars(),
        out.stats.fresh_nodes,
        out.stats.carried_locations,
        out.stats.extracted_locations
    );
}

/// The serve-side half: swapping only the shards whose coordinate ranges
/// the delta touched vs. re-sharding the whole new store.
fn bench_shard_swap(c: &mut Criterion) {
    let (_, v1, delta) = setup();
    let v2 = update_store(&v1, &delta, "delta.vcf")
        .expect("delta applies")
        .persisted;
    let mut config = SegramConfig::short_reads();
    config.scheme = *v2.index.scheme();
    config.bucket_bits = v2.index.bucket_bits();
    config.discard_frac = v2.discard_frac;
    let base = ShardedIndex::from_persisted(v1, config, SHARDS);

    let mut group = c.benchmark_group("shard_swap_200kb");
    group.sample_size(10);
    group.bench_function("reshard_scratch", |b| {
        b.iter(|| {
            let sharded = ShardedIndex::from_persisted(v2.clone(), config, SHARDS);
            black_box(sharded.shards().len())
        })
    });
    group.bench_function("apply_delta", |b| {
        b.iter(|| {
            let (swapped, report) = base.apply_delta(black_box(&v2)).expect("parent matches");
            black_box((swapped.shards().len(), report.dirty))
        })
    });
    group.finish();

    let (_, report) = base.apply_delta(&v2).expect("parent matches");
    println!(
        "  info: delta swap rebuilt {} of {} shards ({} kept clean)",
        report.dirty,
        SHARDS,
        report.clean()
    );
}

criterion_group!(benches, bench_update_vs_scratch, bench_shard_swap);
criterion_main!(benches);
