//! # segram-align
//!
//! Alignment algorithms for the SeGraM reproduction (ISCA 2022):
//!
//! * **BitAlign** ([`BitAligner`], [`bitalign`]) — the paper's novel
//!   bitvector-based sequence-to-graph alignment algorithm (Section 7,
//!   Algorithm 1), including the memory-saving traceback that regenerates
//!   intermediate bitvectors from the stored `R[d]` vectors;
//! * **windowed BitAlign** ([`windowed_bitalign`]) — the divide-and-conquer
//!   mode that processes long reads in `W = 128`-bit windows, exactly like
//!   the 64-PE systolic accelerator;
//! * **GenASM** ([`genasm_align`]) — the sequence-to-sequence ancestor
//!   (`W = 64`), used by the paper's §11.3 comparison;
//! * **exact graph DP** ([`graph_dp_align`], [`graph_dp_distance`]) — the
//!   PaSGAL-style baseline and the ground truth for property tests;
//! * **Myers' bitvector algorithm** ([`myers_distance`]) and a classical
//!   semi-global DP ([`semiglobal_distance`]) for sequence-to-sequence
//!   cross-checks.
//!
//! All aligners share *semi-global* semantics: the query read is consumed
//! in full, the text (graph path) start is free or anchored, and the end is
//! free.
//!
//! ## Example
//!
//! ```
//! use segram_align::{bitalign, graph_dp_distance, StartMode};
//! use segram_graph::{build_graph, Base, LinearizedGraph, Variant};
//!
//! let built = build_graph(
//!     &"ACGTACGT".parse()?,
//!     [Variant::snp(3, Base::G)].into_iter().collect(),
//! )?;
//! let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars())?;
//! let read = "ACGGACGT".parse()?; // the ALT allele
//! let a = bitalign(&lin, &read, 2)?;
//! let (dp, _) = graph_dp_distance(&lin, &read, StartMode::Free)?;
//! assert_eq!(a.edit_distance, dp);
//! assert_eq!(a.edit_distance, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitalign;
mod bitvector;
mod cigar;
mod error;
mod genasm;
mod graph_dp;
mod myers;
mod pattern;
mod windowed;

pub use bitalign::{bitalign, Alignment, BitAlignConfig, BitAligner, EditPreference, StartMode};
pub use bitvector::Bitvector;
pub use cigar::{Cigar, CigarOp, ParseCigarError};
pub use error::AlignError;
pub use genasm::{genasm_align, genasm_distance};
pub use graph_dp::{dp_cell_count, graph_dp_align, graph_dp_distance, semiglobal_distance};
pub use myers::myers_distance;
pub use pattern::PatternBitmasks;
pub use windowed::{windowed_bitalign, WindowConfig};
