//! Accelerator sizing study: drive the hardware cost + performance models
//! together to explore design points around the paper's configuration —
//! what an architect would do with the released model.
//!
//! Also cross-validates the analytical pipeline model against the
//! discrete-event simulator on a measured workload.
//!
//! Run with: `cargo run --release --example accelerator_sizing`

use segram_core::{measure_workload, SegramConfig, SegramMapper};
use segram_hw::{
    simulate_pipeline, system_cost, uniform_jobs, AcceleratorCost, BitAlignHwConfig,
    BitAlignStorage, HbmConfig, MinSeedScratchpads, SegramAccelerator, SegramSystem,
};
use segram_sim::DatasetConfig;

fn main() {
    // 1. Measure a workload with the software pipeline.
    let dataset = DatasetConfig {
        reference_len: 100_000,
        read_count: 40,
        long_read_len: 2_000,
        seed: 4242,
    }
    .illumina(150);
    let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let measurement = measure_workload(&mapper, &dataset.reads, 150);
    let workload = measurement.workload;
    println!(
        "measured workload: {:.1} minimizers, {:.1} seeds per {} bp read",
        workload.minimizers_per_read, workload.seeds_per_read, workload.read_len
    );

    // 2. Sweep the BitAlign window width (the dominant sizing knob: it
    //    sets bitvector scratchpad capacity AND cycle count).
    println!("\n window | cycles/10kbp | scratchpad kB | accel mm2 | accel mW");
    for window_bits in [64usize, 128, 256] {
        let hw = BitAlignHwConfig {
            window_bits,
            pe_count: 64,
            stride: window_bits * 5 / 8,
            clock_ghz: 1.0,
        };
        let mut storage = BitAlignStorage::default();
        // Bitvector scratchpad scales with the window width.
        storage.bitvector_per_pe.bytes = (window_bits as u64 / 128).max(1) * 2 * 1024;
        storage.hop_queue_bytes_per_pe = (window_bits as u64 / 8) * 12;
        let cost = AcceleratorCost::for_storage(&MinSeedScratchpads::default(), &storage);
        let total = cost.total();
        let marker = if window_bits == 128 { "  <- paper" } else { "" };
        println!(
            " {:>6} | {:>12} | {:>13} | {:>9.3} | {:>8.0}{}",
            window_bits,
            hw.cycles_per_alignment(10_000),
            storage.total_bytes() / 1024,
            total.area_mm2,
            total.power_mw,
            marker
        );
    }

    // 3. Validate the analytic pipeline formula against the event-driven
    //    simulator for this workload.
    let acc = SegramAccelerator::default();
    let hbm = HbmConfig::default();
    let seeds = workload.seeds_per_read.round() as usize;
    let minseed_ns = acc.minseed.per_seed_ns(&workload, &hbm);
    let bitalign_ns = acc.bitalign.alignment_ns(workload.read_len);
    let trace = simulate_pipeline(&uniform_jobs(seeds, minseed_ns, bitalign_ns));
    let analytic_ns = acc.per_read_ns(&workload, &hbm);
    let drift = (trace.makespan_ns() - analytic_ns).abs() / analytic_ns;
    println!(
        "\npipeline model check: event sim {:.0} ns vs analytic {:.0} ns ({:.2}% drift)",
        trace.makespan_ns(),
        analytic_ns,
        drift * 100.0
    );
    println!(
        "BitAlign utilization {:.0}%, MinSeed utilization {:.0}% (BitAlign-bound, as in the paper)",
        trace.bitalign_utilization() * 100.0,
        trace.minseed_utilization() * 100.0
    );
    assert!(drift < 0.05, "models must agree");

    // 4. Where does the whole system land?
    let system = SegramSystem::default();
    let cost = system_cost(32, HbmConfig::default().total_dynamic_power_w());
    println!(
        "\nsystem: {:.0} reads/s on 32 accelerators, {:.1} mm2, {:.1} W total",
        system.throughput_reads_per_s(&workload),
        cost.all_accelerators.area_mm2,
        cost.total_power_w
    );
}
