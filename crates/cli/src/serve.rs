//! `segram serve` and `segram request`: the long-lived mapping daemon and
//! its minimal line-protocol client.
//!
//! The daemon loads a persistent `.sgi` index once (the expensive part of
//! every `segram map` run), then multiplexes N concurrent map requests
//! through one shared [`MultiEngine`]: per-request cancellation (a client
//! disconnect cancels only that request), per-request ordered output,
//! QoS-aware scheduling (priority classes + deadline hints), queued-batch
//! admission control (`BUSY` replies past the limit, with a retry hint),
//! and zero-downtime index reload (`RELOAD` swaps the mapper between
//! requests; in-flight requests finish on the index they opened against).
//!
//! ## Wire protocol (one request per TCP connection, line-framed)
//!
//! ```text
//! client:  MAP/2 <payload-bytes> [key=value ...]\n
//!              keys: fmt=sam|gaf (default sam)
//!                    prio=interactive|normal|bulk (default normal)
//!                    deadline-ms=<int> (optional deadline hint)
//!              then exactly <payload-bytes> bytes of FASTQ, or
//!          MAP <sam|gaf> <payload-bytes>\n    the v1 compatibility form
//!              (normal priority, no deadline), or
//!          RELOAD <index.sgi>\n               hot-swap the index, or
//!          QUIT\n                             stop the daemon
//! server:  OK\n                               request accepted + mapped,
//!          CHUNK <len>\n + <len> bytes        output document pieces,
//!          END reads=<n> mapped=<m> prio=<class>
//!              p50us=<a> p95us=<b> p99us=<c>\n request complete
//!              (queueing-delay percentiles of this request); or
//!          BUSY <queued-batches> retry-ms=<n>\n admission refused, or
//!          RELOADED <index.sgi>\n             swap complete, or
//!          ERR <message>\n                    malformed request/input, or
//!          BYE\n                              QUIT acknowledged
//! ```
//!
//! A request's output document is byte-identical to a one-shot
//! `segram map --index ref.sgi` over the same reads — `ci.sh`'s serve
//! tiers diff exactly that, including across a mid-flight `RELOAD`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use segram_core::{
    gaf_record_for, sam_record_for, DeltaSwapReport, EngineOptions, MultiEngine, Priority,
    QueueDelayStats, ReadMapper, RebalanceConfig, Rebalancer, RequestHandle, RouteHook,
    SegramMapper, ShardAffinity, ShardedIndex,
};
use segram_graph::DnaSeq;
use segram_io::{Ambiguity, FastqReader, FastqRecord, GafWriter, SamWriter};

use crate::args::Options;
use crate::commands::{
    mapper_from_persisted, persisted_from_index_file, preset, provenance_label, schedule_kind,
    shard_count, sharded_from_persisted, thread_count, write_file, Schedule,
};
use crate::error::CliError;

/// Reads per engine batch: small enough that a request's first outputs
/// stream back while its payload is still arriving.
const SERVE_BATCH: usize = 32;

/// Maximum bytes per `CHUNK` reply line.
const CHUNK_BYTES: usize = 64 * 1024;

const SERVE_HELP: &str = "\
segram serve — long-lived mapping daemon over a persistent .sgi index

Loads the index once, then answers concurrent `segram request` calls
through one shared multi-request engine: per-request cancellation (a
client disconnect cancels only that request), per-request ordered output
(byte-identical to a one-shot `segram map --index`), priority- and
deadline-aware scheduling (interactive > normal > bulk; overdue requests
first), queued-batch admission control (BUSY past the limit, with a
retry-ms hint), and zero-downtime index reload (`segram request
--reload new.sgi`: in-flight requests finish on the old index, new ones
map against the new one). Stops when a client sends QUIT
(`segram request --shutdown`).

OPTIONS:
    --index <ref.sgi>      persistent index from `segram index build`
                           (required)
    --addr <host:port>     listen address (default 127.0.0.1:0 = any free
                           port; the chosen address is printed as
                           `listening on <addr>`)
    --addr-file <path>     also write the chosen address to this file
                           (for scripts that need to find the port)
    --threads <int>        worker threads (default: all available cores)
    --shards <int>         re-shard the loaded index into N coordinate
                           ranges with a seeding router in front
                           (default 1; replies stay byte-identical)
    --schedule <fanout|elastic>
                           worker schedule (default fanout: all workers
                           serve every request batch). elastic splits the
                           workers into per-shard-group pools, routes each
                           request batch to the pool owning its dominant
                           shard group (idle pools steal), and rebalances
                           shard ownership from live seed-hit counters
    --queue-depth <int>    per-request input-queue capacity in batches
                           (default 2 x threads)
    --max-queued <int>     total queued batches before new requests are
                           refused BUSY (default 4 x queue depth)
    --preset <short|long5|long10>
                           mapper preset for thresholds (default short;
                           scheme/buckets/discard come from the .sgi file)
    --both-strands         also try each read's reverse complement
    --quiet                suppress per-request log lines on stderr
";

const REQUEST_HELP: &str = "\
segram request — line-protocol client for `segram serve`

Sends one FASTQ payload, receives the mapped SAM/GAF document. With
--cancel-after it instead disconnects mid-payload, which makes the
server cancel just that request (the test hook for cancellation
isolation). With --reload it asks the daemon to hot-swap its index; with
--shutdown it asks the daemon to stop.

OPTIONS:
    --addr <host:port>     server address (required; the daemon prints it)
    --reads <reads.fq>     input FASTQ (required unless --shutdown or
                           --reload)
    --format <sam|gaf>     output format (default sam)
    --priority <class>     interactive|normal|bulk (default normal; any
                           value other than the default sends the MAP/2
                           header)
    --deadline-ms <int>    deadline hint: past it, the server schedules
                           this request ahead of every on-time one
    --retry                on BUSY, honor the server's retry-ms hint with
                           one bounded retry (default: fail immediately)
    --output <path>        write the returned document here (default:
                           stdout section of report)
    --cancel-after <int>   send only this many payload bytes, then
                           disconnect without reading a reply
    --reload <index.sgi>   send RELOAD <path> instead of a mapping request
                           (the daemon builds the new index, then swaps it
                           in between requests — zero downtime)
    --shutdown             send QUIT instead of a mapping request
";

fn seq_of(record: &FastqRecord) -> &DnaSeq {
    &record.seq
}

/// Validated output format of one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WireFormat {
    Sam,
    Gaf,
}

impl WireFormat {
    fn parse(name: &str) -> Option<Self> {
        match name {
            "sam" => Some(Self::Sam),
            "gaf" => Some(Self::Gaf),
            _ => None,
        }
    }
}

/// A parsed `MAP`/`MAP/2` request line: what to map, how much of it, and
/// how urgently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RequestHeader {
    format: WireFormat,
    payload_len: u64,
    priority: Priority,
    deadline: Option<Duration>,
}

/// Everything that can be wrong with a request line, as named variants so
/// tests pin the classification (the client only ever sees the rendered
/// `ERR` message).
#[derive(Debug, PartialEq, Eq)]
enum HeaderError {
    /// First token is not `MAP`, `MAP/…`, `RELOAD`, or `QUIT`.
    UnknownCommand(String),
    /// A `MAP/<version>` this server does not speak.
    UnsupportedVersion(String),
    /// Missing or unparsable payload byte count.
    BadPayloadLen(String),
    /// v1 format token or v2 `fmt=` value is not `sam`/`gaf`.
    BadFormat(String),
    /// v2 `prio=` value is not a known class.
    BadPriority(String),
    /// v2 `deadline-ms=` value is not a non-negative integer.
    BadDeadline(String),
    /// A v2 token without `=`, or a key this server does not know.
    UnknownKey(String),
    /// Extra tokens after a complete v1 header.
    TrailingTokens(String),
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownCommand(header) => {
                write!(
                    f,
                    "unknown command {header:?} (expected MAP, RELOAD, or QUIT)"
                )
            }
            Self::UnsupportedVersion(version) => {
                write!(
                    f,
                    "unsupported protocol version MAP/{version} (this server speaks MAP and MAP/2)"
                )
            }
            Self::BadPayloadLen(token) => write!(f, "bad payload length {token:?}"),
            Self::BadFormat(token) => write!(f, "bad format {token:?} (expected sam|gaf)"),
            Self::BadPriority(token) => {
                write!(
                    f,
                    "bad priority {token:?} (expected interactive|normal|bulk)"
                )
            }
            Self::BadDeadline(token) => {
                write!(
                    f,
                    "bad deadline-ms {token:?} (expected a non-negative integer)"
                )
            }
            Self::UnknownKey(token) => write!(
                f,
                "unknown key {token:?} (expected key=value with key in fmt|prio|deadline-ms)"
            ),
            Self::TrailingTokens(header) => write!(f, "trailing tokens in {header:?}"),
        }
    }
}

/// Parses a request line: the versioned `MAP/2 <bytes> key=value...` form
/// or the v1 `MAP <sam|gaf> <bytes>` compatibility form.
fn parse_request_header(header: &str) -> Result<RequestHeader, HeaderError> {
    let mut tokens = header.split_whitespace();
    let command = tokens.next().unwrap_or("");
    let v2 = match command {
        "MAP" => false,
        "MAP/2" => true,
        _ => {
            return Err(match command.strip_prefix("MAP/") {
                Some(version) => HeaderError::UnsupportedVersion(version.to_owned()),
                None => HeaderError::UnknownCommand(header.to_owned()),
            })
        }
    };
    if !v2 {
        let format_token = tokens.next().unwrap_or("");
        let format = WireFormat::parse(format_token)
            .ok_or_else(|| HeaderError::BadFormat(format_token.to_owned()))?;
        let len_token = tokens.next().unwrap_or("");
        let payload_len: u64 = len_token
            .parse()
            .map_err(|_| HeaderError::BadPayloadLen(len_token.to_owned()))?;
        if tokens.next().is_some() {
            return Err(HeaderError::TrailingTokens(header.to_owned()));
        }
        return Ok(RequestHeader {
            format,
            payload_len,
            priority: Priority::Normal,
            deadline: None,
        });
    }
    let len_token = tokens.next().unwrap_or("");
    let payload_len: u64 = len_token
        .parse()
        .map_err(|_| HeaderError::BadPayloadLen(len_token.to_owned()))?;
    let mut parsed = RequestHeader {
        format: WireFormat::Sam,
        payload_len,
        priority: Priority::Normal,
        deadline: None,
    };
    for token in tokens {
        let Some((key, value)) = token.split_once('=') else {
            return Err(HeaderError::UnknownKey(token.to_owned()));
        };
        match key {
            "fmt" => {
                parsed.format = WireFormat::parse(value)
                    .ok_or_else(|| HeaderError::BadFormat(value.to_owned()))?;
            }
            "prio" => {
                parsed.priority = Priority::parse(value)
                    .ok_or_else(|| HeaderError::BadPriority(value.to_owned()))?;
            }
            "deadline-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| HeaderError::BadDeadline(value.to_owned()))?;
                parsed.deadline = Some(Duration::from_millis(ms));
            }
            _ => return Err(HeaderError::UnknownKey(token.to_owned())),
        }
    }
    Ok(parsed)
}

/// Lifetime counters the daemon reports when it exits.
#[derive(Default)]
struct ServeStats {
    served: AtomicU64,
    cancelled: AtomicU64,
    refused: AtomicU64,
    failed: AtomicU64,
    reloads: AtomicU64,
    /// Reloads that took the dirty-shard delta route (parent-checksum
    /// match) instead of a full rebuild.
    delta_reloads: AtomicU64,
    /// Shards rebuilt across every delta reload.
    dirty_shards: AtomicU64,
    /// Shards carried over (Arc-shared or id-remapped) across every delta
    /// reload.
    clean_shards: AtomicU64,
}

impl ServeStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// How a `RELOAD` produced its replacement mapper.
enum ReloadKind {
    /// Built from scratch off the `.sgi` file. `fallback` carries the
    /// reason the delta route was declined when one was attempted (parent
    /// mismatch, epoch skew, legacy store without a changelog).
    Full { fallback: Option<String> },
    /// Derived from the active sharded index by rebuilding only the
    /// shards whose coordinate ranges the delta touched.
    Delta(DeltaSwapReport),
}

/// What the reload hook hands back: the replacement mapper, how it was
/// built, and the store's provenance label for the daemon report.
struct ReloadOutcome<M> {
    mapper: Arc<M>,
    kind: ReloadKind,
    label: String,
}

/// What the accept loop should do after a connection is handled.
enum Control {
    Continue,
    Quit,
}

/// A reader that counts how many payload bytes actually arrived, so a
/// short payload (the client vanished mid-transfer) is distinguishable
/// from a complete one that merely ended at a record boundary.
struct CountingReader<R> {
    inner: R,
    seen: Arc<AtomicU64>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.seen.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

/// `segram serve`.
pub fn serve(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(SERVE_HELP.to_owned());
    }
    options.reject_unknown(&[
        "index",
        "addr",
        "addr-file",
        "threads",
        "shards",
        "schedule",
        "queue-depth",
        "max-queued",
        "preset",
        "both-strands",
        "quiet",
    ])?;
    let index_path = options.require("index")?;
    let threads = thread_count(options)?;
    let shards = shard_count(options)?;
    let schedule = schedule_kind(options)?;
    let config = preset(options.get("preset").unwrap_or("short"))?;
    let quiet = options.switch("quiet");
    // The shared builder `map` and the benches use too; `MultiEngine`
    // derives its own defaults from the zero fields.
    let engine_options = EngineOptions::new()
        .threads(threads)
        .queue_depth(options.number("queue-depth", 0)?)
        .max_queued(options.number("max-queued", 0)?)
        .both_strands(options.switch("both-strands"));

    let loaded = persisted_from_index_file(index_path)?;
    let boot_label = provenance_label(&loaded);

    if shards <= 1 && schedule == Schedule::Fanout {
        let mapper = mapper_from_persisted(loaded, config);
        let engine = MultiEngine::new(Arc::new(mapper), seq_of, engine_options);
        // The monolithic mapper has no shards to swap piecemeal: every
        // reload is a full rebuild.
        let reload = move |path: &str, _current: &SegramMapper| {
            let loaded = persisted_from_index_file(path)?;
            let label = provenance_label(&loaded);
            Ok(ReloadOutcome {
                mapper: Arc::new(mapper_from_persisted(loaded, config)),
                kind: ReloadKind::Full { fallback: None },
                label,
            })
        };
        return run_daemon(options, engine, index_path, boot_label, reload, quiet, None);
    }

    // Re-shard the persisted index: same graph, same frequency threshold,
    // so replies stay byte-identical to the monolithic daemon. A RELOAD
    // whose store is the direct child of the active one (parent checksum
    // matches) takes the delta route — only dirty shards are rebuilt,
    // clean shards keep sharing the active Arcs; anything else falls back
    // to a full re-shard of the new file.
    let sharded = Arc::new(sharded_from_persisted(loaded, config, shards));
    let reload = move |path: &str, current: &ShardedIndex| {
        let loaded = persisted_from_index_file(path)?;
        let label = provenance_label(&loaded);
        match current.apply_delta(&loaded) {
            Ok((next, report)) => Ok(ReloadOutcome {
                mapper: Arc::new(next),
                kind: ReloadKind::Delta(report),
                label,
            }),
            Err(why) => Ok(ReloadOutcome {
                mapper: Arc::new(sharded_from_persisted(loaded, config, shards)),
                kind: ReloadKind::Full {
                    fallback: Some(why.to_string()),
                },
                label,
            }),
        }
    };
    match schedule {
        Schedule::Fanout => {
            let engine = MultiEngine::new(Arc::clone(&sharded), seq_of, engine_options);
            run_daemon(options, engine, index_path, boot_label, reload, quiet, None)
        }
        Schedule::Elastic => {
            let affinity = ShardAffinity::pin_workers(&sharded.shard_loads(), threads);
            let pools = affinity.groups().len();
            let rebalancer = Arc::new(Mutex::new(Rebalancer::new(
                affinity.groups(),
                shards,
                RebalanceConfig::default(),
            )));
            // The route hook keeps consulting the boot-time index after a
            // RELOAD: routing is a locality hint only, so a stale hint
            // degrades placement, never correctness or output bytes.
            let route = pool_route(Arc::clone(&sharded), Arc::clone(&rebalancer), pools);
            let engine = MultiEngine::with_routing(
                Arc::clone(&sharded),
                seq_of,
                engine_options,
                pools,
                Some(route),
            );
            run_daemon(
                options,
                engine,
                index_path,
                boot_label,
                reload,
                quiet,
                Some(rebalancer),
            )
        }
    }
}

/// The serve-side analogue of the elastic producer's pre-route pass: tag a
/// request batch with the pool owning its dominant shard group (strict
/// majority of routed seed hits), or `None` to spill to the least-loaded
/// pool. Each call also feeds the live per-shard seed-hit counters to the
/// rebalancer, so pool ownership follows observed load across requests.
fn pool_route(
    index: Arc<ShardedIndex>,
    rebalancer: Arc<Mutex<Rebalancer>>,
    pools: usize,
) -> RouteHook<FastqRecord> {
    Arc::new(move |batch| {
        let router = index.router();
        let mut shard_hits = vec![0u64; index.shards().len()];
        for record in batch {
            for (shard, hits) in router.route_hits(&record.seq).into_iter().enumerate() {
                shard_hits[shard] += hits;
            }
        }
        let live: Vec<u64> = index.shard_stats().iter().map(|s| s.seed_hits).collect();
        let Ok(mut rebalancer) = rebalancer.lock() else {
            return None;
        };
        rebalancer.observe(&live);
        let mut pool_hits = vec![0u64; pools];
        for (shard, &hits) in shard_hits.iter().enumerate() {
            pool_hits[rebalancer.pool_of(shard)] += hits;
        }
        let total: u64 = pool_hits.iter().sum();
        let (pool, best) = pool_hits
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(pool, hits)| (hits, std::cmp::Reverse(pool)))?;
        (total > 0 && 2 * best > total).then_some(pool)
    })
}

/// The index-reload hook a daemon runs on `RELOAD <path>`: given the
/// path and the active mapper, produce the replacement (delta or full).
type ReloadFn<'a, M> = dyn Fn(&str, &M) -> Result<ReloadOutcome<M>, CliError> + Send + Sync + 'a;

/// Per-daemon context the connection handlers share: the engine, the
/// index-reload hook, and the lifetime counters.
struct Daemon<'a, M: ReadMapper + Send + Sync + 'static> {
    engine: &'a MultiEngine<M, FastqRecord>,
    reload: &'a ReloadFn<'a, M>,
    /// Path of the index new requests currently map against (updated by
    /// each successful `RELOAD`).
    active_index: &'a Mutex<String>,
    /// Provenance label of the active index (epoch, build preset).
    active_label: &'a Mutex<String>,
    quiet: bool,
    stats: &'a ServeStats,
}

// Manual impl (the derive would demand `M: Clone`): the context is shared
// by reference across connection threads.
impl<M: ReadMapper + Send + Sync + 'static> Clone for Daemon<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M: ReadMapper + Send + Sync + 'static> Copy for Daemon<'_, M> {}

/// The daemon proper: accept loop, per-connection handlers, lifetime
/// report. Generic over the mapper behind the engine — the monolithic
/// [`SegramMapper`] or a routed [`ShardedIndex`] — because requests are
/// handled identically either way. `reload` builds a fresh mapper of the
/// same shape from an `.sgi` path (the `RELOAD` hook).
fn run_daemon<M: ReadMapper + Send + Sync + 'static>(
    options: &Options,
    engine: MultiEngine<M, FastqRecord>,
    index_path: &str,
    boot_label: String,
    reload: impl Fn(&str, &M) -> Result<ReloadOutcome<M>, CliError> + Send + Sync,
    quiet: bool,
    rebalancer: Option<Arc<Mutex<Rebalancer>>>,
) -> Result<String, CliError> {
    let addr = options.get("addr").unwrap_or("127.0.0.1:0");
    let listener = TcpListener::bind(addr).map_err(|e| CliError::io(addr, e))?;
    let local = listener.local_addr().map_err(|e| CliError::io(addr, e))?;
    // Announce the address *before* blocking in accept: stdout for humans,
    // --addr-file for scripts and tests that must discover the port.
    println!("listening on {local}");
    let _ = std::io::stdout().flush();
    if let Some(path) = options.get("addr-file") {
        write_file(path, &format!("{local}\n"))?;
    }

    let stats = ServeStats::default();
    let active_index = Mutex::new(index_path.to_owned());
    let active_label = Mutex::new(boot_label);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let daemon = Daemon {
                engine: &engine,
                reload: &reload,
                active_index: &active_index,
                active_label: &active_label,
                quiet,
                stats: &stats,
            };
            let stop = &stop;
            scope.spawn(move || {
                if let Control::Quit = handle_connection(stream, daemon) {
                    stop.store(true, Ordering::SeqCst);
                    // The accept loop is blocked in `incoming()`; one
                    // throwaway connection wakes it to observe `stop`.
                    let _ = TcpStream::connect(local);
                }
            });
        }
    });
    let pools = engine.pools();
    let counters = engine.pool_counters();
    let delays = engine.queue_delays();
    engine.shutdown();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "served {} requests ({} cancelled by clients, {} refused busy, {} failed)",
        stats.served.load(Ordering::Relaxed),
        stats.cancelled.load(Ordering::Relaxed),
        stats.refused.load(Ordering::Relaxed),
        stats.failed.load(Ordering::Relaxed)
    );
    for (priority, delay) in &delays {
        let _ = writeln!(
            report,
            "queueing delay {}: batches={} {}",
            priority.name(),
            delay.batches,
            delay_fields(delay)
        );
    }
    let reloads = stats.reloads.load(Ordering::Relaxed);
    let delta = stats.delta_reloads.load(Ordering::Relaxed);
    let _ = writeln!(
        report,
        "reloads: {}, active index: {} ({}; {} delta, {} full; dirty shards swapped: {}, \
         clean shards kept: {})",
        reloads,
        active_index.lock().unwrap_or_else(|e| e.into_inner()),
        active_label.lock().unwrap_or_else(|e| e.into_inner()),
        delta,
        reloads - delta,
        stats.dirty_shards.load(Ordering::Relaxed),
        stats.clean_shards.load(Ordering::Relaxed)
    );
    if pools > 1 {
        let migrations = rebalancer
            .as_ref()
            .and_then(|r| r.lock().ok().map(|r| r.migrations()))
            .unwrap_or(0);
        let _ = writeln!(
            report,
            "elastic schedule: {pools} pools, {} batches routed, {} spilled, {} stolen, \
             {migrations} shard migrations",
            counters.routed, counters.spilled, counters.stolen
        );
    }
    Ok(report)
}

/// Renders queueing-delay percentiles the way both the report and the
/// `END` line spell them: whole microseconds, so scripts compare integers.
fn delay_fields(stats: &QueueDelayStats) -> String {
    format!(
        "p50us={} p95us={} p99us={}",
        stats.p50.as_micros(),
        stats.p95.as_micros(),
        stats.p99.as_micros()
    )
}

/// Handles one client connection: parse the header line, then run the
/// request (or RELOAD the index, or acknowledge QUIT). Reply-side write
/// failures are ignored — the client is gone, and its request has already
/// been settled.
fn handle_connection<M: ReadMapper + Send + Sync + 'static>(
    stream: TcpStream,
    daemon: Daemon<'_, M>,
) -> Control {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".to_owned());
    let Ok(read_half) = stream.try_clone() else {
        return Control::Continue;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    let mut header = String::new();
    if reader.read_line(&mut header).is_err() || header.is_empty() {
        return Control::Continue;
    }
    let header = header.trim_end();
    if header == "QUIT" {
        let _ = writer.write_all(b"BYE\n");
        let _ = writer.flush();
        if !daemon.quiet {
            eprintln!("serve: shutdown requested by {peer}");
        }
        return Control::Quit;
    }
    if let Some(path) = header.strip_prefix("RELOAD ") {
        handle_reload(writer, path.trim(), daemon, &peer);
        return Control::Continue;
    }

    match parse_request_header(header) {
        Err(error) => {
            let _ = writeln!(writer, "ERR {error}");
            let _ = writer.flush();
        }
        Ok(request) => {
            handle_map(reader, writer, request, daemon, &peer);
        }
    }
    Control::Continue
}

/// Runs a `RELOAD <path>`: builds the replacement mapper on this
/// connection's thread — never a worker thread, so mapping throughput is
/// untouched — then swaps it in for future requests. In-flight requests
/// keep the mapper they opened with, so there is no drain barrier and no
/// downtime; a failed build leaves the active index exactly as it was.
///
/// The reload hook sees the currently active mapper, so a sharded daemon
/// can take the dirty-shard delta route when the new store's parent
/// checksum matches the active one; the `RELOADED` reply reports which
/// route it took (`mode=delta dirty=… clean=…` or `mode=full`).
fn handle_reload<M: ReadMapper + Send + Sync + 'static>(
    mut writer: BufWriter<TcpStream>,
    path: &str,
    daemon: Daemon<'_, M>,
    peer: &str,
) {
    if !daemon.quiet {
        eprintln!("serve: reload of {path} requested by {peer}");
    }
    let current = daemon.engine.active_mapper();
    match (daemon.reload)(path, &current) {
        Ok(outcome) => {
            daemon.engine.swap_mapper(outcome.mapper);
            *daemon
                .active_index
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = path.to_owned();
            *daemon
                .active_label
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = outcome.label;
            ServeStats::bump(&daemon.stats.reloads);
            let detail = match &outcome.kind {
                ReloadKind::Delta(report) => {
                    ServeStats::bump(&daemon.stats.delta_reloads);
                    daemon
                        .stats
                        .dirty_shards
                        .fetch_add(report.dirty as u64, Ordering::Relaxed);
                    daemon
                        .stats
                        .clean_shards
                        .fetch_add(report.clean() as u64, Ordering::Relaxed);
                    format!(
                        "mode=delta epoch={} dirty={} clean={}",
                        report.epoch,
                        report.dirty,
                        report.clean()
                    )
                }
                ReloadKind::Full { fallback } => {
                    if let Some(reason) = fallback {
                        if !daemon.quiet {
                            eprintln!(
                                "serve: delta route unavailable for {path} ({reason}); \
                                 rebuilt from scratch"
                            );
                        }
                    }
                    "mode=full".to_owned()
                }
            };
            if !daemon.quiet {
                eprintln!("serve: index swapped to {path} ({detail})");
            }
            let _ = writeln!(writer, "RELOADED {path} {detail}");
        }
        Err(error) => {
            if !daemon.quiet {
                eprintln!("serve: reload of {path} failed: {error}");
            }
            let _ = writeln!(writer, "ERR reload failed: {error}");
        }
    }
    let _ = writer.flush();
}

/// Runs one MAP request end to end: admission (QoS class + deadline from
/// the header), streaming FASTQ decode off the socket (pushing batches as
/// they parse, so mapping overlaps the transfer), ordered drain, reply.
fn handle_map<M: ReadMapper + Send + Sync + 'static>(
    reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
    request: RequestHeader,
    daemon: Daemon<'_, M>,
    peer: &str,
) {
    let Daemon {
        engine,
        quiet,
        stats,
        ..
    } = daemon;
    let RequestHeader {
        format,
        payload_len,
        priority,
        deadline,
    } = request;
    let mut handle = match engine.open_with(priority, deadline) {
        Ok(handle) => handle,
        Err(busy) => {
            ServeStats::bump(&stats.refused);
            if !quiet {
                eprintln!("serve: refused {peer}: {busy}");
            }
            // Drain the announced payload before replying: closing the
            // socket while the client is still sending would RST the BUSY
            // line away before the client reads it.
            let _ = std::io::copy(&mut reader.take(payload_len), &mut std::io::sink());
            let _ = writeln!(
                writer,
                "BUSY {} retry-ms={}",
                busy.queued,
                busy.retry_hint.as_millis()
            );
            let _ = writer.flush();
            return;
        }
    };
    let id = handle.id();
    if !quiet {
        eprintln!(
            "serve: request {id} from {peer}: {payload_len} payload bytes, {} priority",
            priority.name()
        );
    }

    // Input side: decode FASTQ straight off the socket, bounded by the
    // declared payload length so the parser cannot over-read into a next
    // request. The byte counter distinguishes "client disconnected
    // mid-payload" (cancel this request only) from a complete payload.
    let seen = Arc::new(AtomicU64::new(0));
    let mut limited = BufReader::new(CountingReader {
        inner: reader.take(payload_len),
        seen: Arc::clone(&seen),
    });
    let mut decode_failure: Option<String> = None;
    let mut batch: Vec<FastqRecord> = Vec::with_capacity(SERVE_BATCH);
    for record in FastqReader::new(&mut limited, Ambiguity::Reject) {
        match record {
            Ok(record) => {
                batch.push(record);
                if batch.len() == SERVE_BATCH && !handle.push(std::mem::take(&mut batch)) {
                    break;
                }
            }
            Err(err) => {
                decode_failure = Some(err.to_string());
                break;
            }
        }
    }
    if decode_failure.is_none() && !batch.is_empty() {
        handle.push(std::mem::take(&mut batch));
    }

    let short_payload = seen.load(Ordering::Relaxed) < payload_len;
    if !short_payload {
        // Drain any unparsed remainder (a decode error stops the parser
        // mid-payload): replying over a socket with unread inbound bytes
        // risks an RST that discards the reply in flight.
        let _ = std::io::copy(&mut limited, &mut std::io::sink());
    }
    if short_payload || decode_failure.is_some() {
        // Cancel *this* request: queued and in-flight batches wind down,
        // every other request is untouched.
        handle.cancel();
        ServeStats::bump(&stats.cancelled);
        if let Some(message) = decode_failure {
            let _ = writeln!(writer, "ERR {message}");
            let _ = writer.flush();
        }
        if !quiet {
            eprintln!(
                "serve: request {id} cancelled ({} of {payload_len} payload bytes)",
                seen.load(Ordering::Relaxed)
            );
        }
        return;
    }
    handle.finish_input();

    // Output side: drain strictly-ordered batches into the same document
    // writers `segram map` uses, so the reply bytes diff clean against a
    // one-shot run.
    match render_document(handle, format) {
        Ok((document, reads, mapped, delay)) => {
            ServeStats::bump(&stats.served);
            if !quiet {
                eprintln!("serve: request {id} done: {mapped}/{reads} reads mapped");
            }
            let _ = writeln!(writer, "OK");
            for chunk in document.chunks(CHUNK_BYTES) {
                let _ = writeln!(writer, "CHUNK {}", chunk.len());
                let _ = writer.write_all(chunk);
            }
            let _ = writeln!(
                writer,
                "END reads={reads} mapped={mapped} prio={} {}",
                priority.name(),
                delay_fields(&delay.unwrap_or_default())
            );
            let _ = writer.flush();
        }
        Err(message) => {
            ServeStats::bump(&stats.failed);
            if !quiet {
                eprintln!("serve: request {id} failed: {message}");
            }
            let _ = writeln!(writer, "ERR {message}");
            let _ = writer.flush();
        }
    }
}

/// Drains a finished-input request into a rendered SAM/GAF document,
/// against the graph of the mapper the request captured at open time (a
/// concurrent `RELOAD` must not change what an in-flight request renders).
/// Returns `(document bytes, reads, mapped, queueing delay)`.
fn render_document<M: ReadMapper + Send + Sync + 'static>(
    mut handle: RequestHandle<M, FastqRecord>,
    format: WireFormat,
) -> Result<(Vec<u8>, usize, usize, Option<QueueDelayStats>), String> {
    enum Doc {
        Sam(SamWriter<Vec<u8>>),
        Gaf(GafWriter<Vec<u8>>),
    }
    let mapper = handle.mapper();
    let graph = mapper.graph();
    let mut doc = match format {
        WireFormat::Sam => Doc::Sam(
            SamWriter::new(Vec::new(), "graph", graph.total_chars())
                .map_err(|e| format!("render failed: {e}"))?,
        ),
        WireFormat::Gaf => Doc::Gaf(GafWriter::new(Vec::new())),
    };
    while let Some(batch) = handle.next_output() {
        for (record, outcome) in &batch {
            let result = match &mut doc {
                Doc::Sam(w) => {
                    let rec = sam_record_for(&record.id, &record.seq, outcome);
                    w.write_line(&rec.to_sam_line()).map_err(|e| e.to_string())
                }
                Doc::Gaf(w) => match gaf_record_for(&record.id, &record.seq, graph, outcome) {
                    Err(e) => Err(e.to_string()),
                    Ok(None) => Ok(()),
                    Ok(Some(rec)) => w.write_record(&rec).map_err(|e| e.to_string()),
                },
            };
            if let Err(message) = result {
                handle.cancel();
                return Err(format!("render failed: {message}"));
            }
        }
    }
    // Sampled before `finish` removes the request from the engine.
    let delay = handle.queue_delay();
    let report = handle
        .finish()
        .map_err(|p| format!("mapping panicked: {}", p.message))?;
    let bytes = match doc {
        Doc::Sam(w) => w.finish(),
        Doc::Gaf(w) => w.finish(),
    }
    .map_err(|e| format!("render failed: {e}"))?;
    Ok((bytes, report.reads, report.mapped, delay))
}

/// Sends one control line (`QUIT`, `RELOAD <path>`) and returns the
/// server's one-line reply, trimmed.
fn one_line_command(addr: &str, command: &str) -> Result<String, CliError> {
    let stream = TcpStream::connect(addr).map_err(|e| CliError::io(addr, e))?;
    let read_half = stream.try_clone().map_err(|e| CliError::io(addr, e))?;
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "{command}")
        .and_then(|()| writer.flush())
        .map_err(|e| CliError::io(addr, e))?;
    let mut line = String::new();
    BufReader::new(read_half)
        .read_line(&mut line)
        .map_err(|e| CliError::io(addr, e))?;
    Ok(line.trim_end().to_owned())
}

/// `segram request`.
pub fn request(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(REQUEST_HELP.to_owned());
    }
    options.reject_unknown(&[
        "addr",
        "reads",
        "format",
        "priority",
        "deadline-ms",
        "retry",
        "output",
        "cancel-after",
        "reload",
        "shutdown",
    ])?;
    let addr = options.require("addr")?;

    if options.switch("shutdown") {
        let reply = one_line_command(addr, "QUIT")?;
        if reply != "BYE" {
            return Err(CliError::server(format!(
                "unexpected shutdown reply {reply:?}"
            )));
        }
        return Ok("server acknowledged shutdown\n".to_owned());
    }
    if let Some(path) = options.get("reload") {
        let reply = one_line_command(addr, &format!("RELOAD {path}"))?;
        if let Some(message) = reply.strip_prefix("ERR ") {
            return Err(CliError::server(message.to_owned()));
        }
        let Some(detail) = reply.strip_prefix("RELOADED ") else {
            return Err(CliError::server(format!(
                "unexpected reload reply {reply:?}"
            )));
        };
        // `detail` is `<path> mode=delta dirty=… clean=…` or
        // `<path> mode=full` — surfaced so scripts can assert which route
        // the daemon took.
        return Ok(format!("server swapped its index to {detail}\n"));
    }

    let reads_path = options.require("reads")?;
    let format = options.get("format").unwrap_or("sam");
    if WireFormat::parse(format).is_none() {
        return Err(CliError::usage(format!(
            "unknown format {format:?} (expected sam|gaf)"
        )));
    }
    let priority = options.get("priority").unwrap_or("normal");
    if Priority::parse(priority).is_none() {
        return Err(CliError::usage(format!(
            "unknown priority {priority:?} (expected interactive|normal|bulk)"
        )));
    }
    let deadline_ms: Option<u64> =
        match options.get("deadline-ms") {
            Some(text) => Some(text.parse().map_err(|_| {
                CliError::usage(format!("--deadline-ms: unparsable value {text:?}"))
            })?),
            None => None,
        };
    let payload = std::fs::read(reads_path).map_err(|e| CliError::io(reads_path, e))?;

    // QoS fields need the v2 header; plain requests stay on the v1 form so
    // old daemons keep answering them.
    let mut header = if priority != "normal" || deadline_ms.is_some() {
        let mut line = format!("MAP/2 {} fmt={format} prio={priority}", payload.len());
        if let Some(ms) = deadline_ms {
            let _ = write!(line, " deadline-ms={ms}");
        }
        line
    } else {
        format!("MAP {format} {}", payload.len())
    };
    header.push('\n');

    let mut retries = if options.switch("retry") { 1u32 } else { 0 };
    let (document, summary) = loop {
        let stream = TcpStream::connect(addr).map_err(|e| CliError::io(addr, e))?;
        let read_half = stream.try_clone().map_err(|e| CliError::io(addr, e))?;
        let mut writer = BufWriter::new(stream);
        writer
            .write_all(header.as_bytes())
            .map_err(|e| CliError::io(addr, e))?;

        if let Some(text) = options.get("cancel-after") {
            let cut: usize = text.parse().map_err(|_| {
                CliError::usage(format!("--cancel-after: unparsable value {text:?}"))
            })?;
            let cut = cut.min(payload.len());
            writer
                .write_all(&payload[..cut])
                .and_then(|()| writer.flush())
                .map_err(|e| CliError::io(addr, e))?;
            // Drop both halves: the server sees EOF mid-payload and
            // cancels only this request.
            drop(writer);
            drop(read_half);
            return Ok(format!(
                "disconnected after {cut} of {} payload bytes (server cancels this request)\n",
                payload.len()
            ));
        }

        writer
            .write_all(&payload)
            .and_then(|()| writer.flush())
            .map_err(|e| CliError::io(addr, e))?;

        let mut reader = BufReader::new(read_half);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| CliError::io(addr, e))?;
        let status = line.trim_end().to_owned();
        if let Some(busy) = status.strip_prefix("BUSY ") {
            // `BUSY <depth> retry-ms=<hint>`: one bounded retry when the
            // caller opted in, after (a capped version of) the server's
            // drain estimate.
            if retries > 0 {
                retries -= 1;
                let hint_ms: u64 = busy
                    .split_whitespace()
                    .find_map(|token| token.strip_prefix("retry-ms="))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(100);
                std::thread::sleep(Duration::from_millis(hint_ms.min(2_000)));
                continue;
            }
            return Err(CliError::server(format!(
                "server busy ({busy}); retry later"
            )));
        }
        if let Some(message) = status.strip_prefix("ERR ") {
            return Err(CliError::server(message.to_owned()));
        }
        if status != "OK" {
            return Err(CliError::server(format!("unexpected reply {status:?}")));
        }

        let mut document: Vec<u8> = Vec::new();
        let summary = loop {
            line.clear();
            reader
                .read_line(&mut line)
                .map_err(|e| CliError::io(addr, e))?;
            let trimmed = line.trim_end();
            if let Some(len) = trimmed.strip_prefix("CHUNK ") {
                let len: usize = len
                    .parse()
                    .map_err(|_| CliError::server(format!("bad chunk length {trimmed:?}")))?;
                let start = document.len();
                document.resize(start + len, 0);
                reader
                    .read_exact(&mut document[start..])
                    .map_err(|e| CliError::io(addr, e))?;
            } else if let Some(summary) = trimmed.strip_prefix("END ") {
                break summary.to_owned();
            } else {
                return Err(CliError::server(format!("unexpected reply {trimmed:?}")));
            }
        };
        break (document, summary);
    };

    let mut report = String::new();
    let _ = writeln!(
        report,
        "received {} document bytes from {addr} ({summary})",
        document.len()
    );
    match options.get("output") {
        Some(path) => {
            // Raw bytes, not a lossy string round-trip: the document must
            // diff byte-identically against a one-shot `segram map` run.
            if let Some(parent) = Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).map_err(|e| CliError::io(path, e))?;
                }
            }
            std::fs::write(path, &document).map_err(|e| CliError::io(path, e))?;
            let _ = writeln!(report, "wrote {} to {path}", format.to_uppercase());
        }
        None => report.push_str(&String::from_utf8_lossy(&document)),
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(header: &str) -> Result<RequestHeader, HeaderError> {
        parse_request_header(header)
    }

    #[test]
    fn v1_header_parses_with_default_qos() {
        let parsed = parse("MAP gaf 1234").expect("valid v1 header");
        assert!(parsed.format == WireFormat::Gaf);
        assert_eq!(parsed.payload_len, 1234);
        assert_eq!(parsed.priority, Priority::Normal);
        assert_eq!(parsed.deadline, None);
    }

    #[test]
    fn v2_header_parses_with_defaults_and_full_qos() {
        let bare = parse("MAP/2 77").expect("keys are all optional");
        assert!(bare.format == WireFormat::Sam);
        assert_eq!(bare.payload_len, 77);
        assert_eq!(bare.priority, Priority::Normal);
        assert_eq!(bare.deadline, None);

        let full =
            parse("MAP/2 512 fmt=gaf prio=interactive deadline-ms=250").expect("valid v2 header");
        assert!(full.format == WireFormat::Gaf);
        assert_eq!(full.payload_len, 512);
        assert_eq!(full.priority, Priority::Interactive);
        assert_eq!(full.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn v2_keys_are_order_independent_and_last_wins() {
        let parsed = parse("MAP/2 9 prio=bulk fmt=sam prio=interactive").expect("valid");
        assert_eq!(parsed.priority, Priority::Interactive);
        assert!(parsed.format == WireFormat::Sam);
    }

    #[test]
    fn errors_are_classified_by_named_variant() {
        assert_eq!(
            parse("PING"),
            Err(HeaderError::UnknownCommand("PING".to_owned()))
        );
        assert_eq!(
            parse("MAP/3 10"),
            Err(HeaderError::UnsupportedVersion("3".to_owned()))
        );
        assert_eq!(
            parse("MAP/2 ten"),
            Err(HeaderError::BadPayloadLen("ten".to_owned()))
        );
        assert_eq!(
            parse("MAP/2"),
            Err(HeaderError::BadPayloadLen(String::new()))
        );
        assert_eq!(
            parse("MAP/2 10 fmt=bam"),
            Err(HeaderError::BadFormat("bam".to_owned()))
        );
        assert_eq!(
            parse("MAP/2 10 prio=urgent"),
            Err(HeaderError::BadPriority("urgent".to_owned()))
        );
        assert_eq!(
            parse("MAP/2 10 deadline-ms=-5"),
            Err(HeaderError::BadDeadline("-5".to_owned()))
        );
        assert_eq!(
            parse("MAP/2 10 color=red"),
            Err(HeaderError::UnknownKey("color=red".to_owned()))
        );
        assert_eq!(
            parse("MAP/2 10 junk"),
            Err(HeaderError::UnknownKey("junk".to_owned()))
        );
        assert_eq!(
            parse("MAP bam 10"),
            Err(HeaderError::BadFormat("bam".to_owned()))
        );
        assert_eq!(
            parse("MAP sam ten"),
            Err(HeaderError::BadPayloadLen("ten".to_owned()))
        );
        assert_eq!(
            parse("MAP sam 10 extra"),
            Err(HeaderError::TrailingTokens("MAP sam 10 extra".to_owned()))
        );
        // v1 has no QoS keys: they read as trailing junk, not as options.
        assert_eq!(
            parse("MAP sam 10 prio=interactive"),
            Err(HeaderError::TrailingTokens(
                "MAP sam 10 prio=interactive".to_owned()
            ))
        );
    }
}
