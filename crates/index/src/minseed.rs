//! The MinSeed algorithm (Section 6): minimizer extraction from the query
//! read, frequency-filtered index lookup, and candidate-region calculation
//! (Figure 9).

use segram_graph::{DnaSeq, GenomeGraph, GraphError, GraphPos, LinearizedGraph};

use crate::index::GraphIndex;
use crate::minimizer::{extract_minimizers, Minimizer};

/// Configuration of MinSeed's filtering and region arithmetic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinSeedConfig {
    /// Expected error rate `E` of the reads (enters the left/right
    /// extension of Figure 9).
    pub error_rate: f64,
    /// Discard minimizers whose occurrence frequency exceeds this
    /// threshold. The paper pre-computes it per chromosome so that the top
    /// 0.02 % most frequent minimizers are discarded; see
    /// [`frequency_threshold`].
    pub frequency_threshold: u32,
}

impl Default for MinSeedConfig {
    fn default() -> Self {
        Self {
            error_rate: 0.10,
            frequency_threshold: u32::MAX,
        }
    }
}

/// Computes the frequency cutoff that discards the `discard_frac` most
/// frequent distinct minimizers (the paper's 0.02 % rule, Section 6).
///
/// Returns `u32::MAX` for an empty index (nothing to discard).
pub fn frequency_threshold(index: &GraphIndex, discard_frac: f64) -> u32 {
    let mut freqs: Vec<u32> = index.frequencies().collect();
    if freqs.is_empty() {
        return u32::MAX;
    }
    freqs.sort_unstable();
    let discard = ((freqs.len() as f64) * discard_frac).ceil() as usize;
    if discard == 0 {
        return u32::MAX;
    }
    let idx = freqs.len().saturating_sub(discard + 1);
    freqs[idx].max(1)
}

/// Figure 9's candidate-region arithmetic as a free function, shared by
/// [`MinSeed`] and the sharded seeding router. With the minimizer spanning
/// read offsets `[a, b]` and the seed spanning reference linear
/// coordinates `[c, d]`:
///
/// ```text
/// x = c - a * (1 + E)            (left extension)
/// y = d + (m - b - 1) * (1 + E)  (right extension)
/// ```
///
/// Returns `None` when the seed's linear coordinate cannot be resolved or
/// the clamped window collapses to nothing.
pub fn seed_region(
    graph: &GenomeGraph,
    error_rate: f64,
    read_len: usize,
    minimizer: &Minimizer,
    loc: GraphPos,
    k: usize,
) -> Option<SeedRegion> {
    let a = minimizer.pos as f64;
    let b = (minimizer.end(k) - 1) as f64;
    let m = read_len as f64;
    let c = graph.linear_pos(loc).ok()?;
    let d = c + k as u64 - 1;
    let left = (a * (1.0 + error_rate)).ceil() as u64;
    let right = ((m - b - 1.0) * (1.0 + error_rate)).ceil() as u64;
    let start = c.saturating_sub(left);
    let end = (d + right + 1).min(graph.total_chars());
    (end > start).then_some(SeedRegion {
        start,
        end,
        seed: loc,
        read_offset: minimizer.pos,
    })
}

/// A candidate mapping region: the subgraph window MinSeed hands BitAlign.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeedRegion {
    /// Leftmost linear coordinate `x` of the candidate region (Figure 9).
    pub start: u64,
    /// Rightmost linear coordinate `y` (exclusive).
    pub end: u64,
    /// The seed's location in the graph.
    pub seed: GraphPos,
    /// Offset of the matching minimizer within the query read.
    pub read_offset: u32,
}

impl SeedRegion {
    /// Region width in characters.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Regions are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Per-read seeding statistics (drives the §11.4 MinSeed analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeedingStats {
    /// Minimizers extracted from the read.
    pub minimizers: usize,
    /// Minimizers discarded by the frequency filter.
    pub filtered_minimizers: usize,
    /// Seed locations fetched from the index.
    pub seed_locations: usize,
    /// Candidate regions produced (after dedup).
    pub regions: usize,
}

/// Output of [`MinSeed::seed`]: candidate regions plus statistics.
#[derive(Clone, Debug, Default)]
pub struct SeedingResult {
    /// Candidate regions, sorted by start coordinate.
    pub regions: Vec<SeedRegion>,
    /// Statistics for this read.
    pub stats: SeedingStats,
}

/// The MinSeed front-end bound to one graph + index.
///
/// # Examples
///
/// ```
/// use segram_index::{frequency_threshold, GraphIndex, MinSeed, MinSeedConfig, MinimizerScheme};
/// use segram_graph::linear_graph;
///
/// let text: segram_graph::DnaSeq = "ACGTTGCAGTCATGCAACGGTTAC".repeat(30).parse()?;
/// let graph = linear_graph(&text, 64)?;
/// let index = GraphIndex::build(&graph, MinimizerScheme::new(5, 11), 12);
/// let minseed = MinSeed::new(&graph, &index, MinSeedConfig {
///     error_rate: 0.0,
///     frequency_threshold: frequency_threshold(&index, 0.0002),
/// });
/// let read = text.slice(100, 180);
/// let result = minseed.seed(&read);
/// assert!(result.regions.iter().any(|r| r.start <= 100 && r.end >= 180));
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MinSeed<'a> {
    graph: &'a GenomeGraph,
    index: &'a GraphIndex,
    config: MinSeedConfig,
}

impl<'a> MinSeed<'a> {
    /// Binds MinSeed to a graph and its index.
    pub fn new(graph: &'a GenomeGraph, index: &'a GraphIndex, config: MinSeedConfig) -> Self {
        Self {
            graph,
            index,
            config,
        }
    }

    /// The bound configuration.
    pub fn config(&self) -> MinSeedConfig {
        self.config
    }

    /// Runs the complete seeding step for one read: extract minimizers,
    /// filter by frequency, fetch locations, compute candidate regions
    /// (steps 2–6 of Figure 4).
    pub fn seed(&self, read: &DnaSeq) -> SeedingResult {
        let scheme = self.index.scheme();
        let minimizers = extract_minimizers(read, scheme);
        let mut stats = SeedingStats {
            minimizers: minimizers.len(),
            ..SeedingStats::default()
        };
        let mut regions: Vec<SeedRegion> = Vec::new();
        for m in &minimizers {
            let freq = self.index.frequency(m.rank);
            if freq > self.config.frequency_threshold {
                stats.filtered_minimizers += 1;
                continue;
            }
            for &loc in self.index.lookup(m) {
                stats.seed_locations += 1;
                if let Some(region) = self.region_for(read.len(), m, loc, scheme.k) {
                    regions.push(region);
                }
            }
        }
        regions.sort_by_key(|r| (r.start, r.end, r.seed));
        regions.dedup_by_key(|r| (r.start, r.end));
        stats.regions = regions.len();
        SeedingResult { regions, stats }
    }

    /// Figure 9's region arithmetic (delegates to the shared
    /// [`seed_region`] free function).
    fn region_for(
        &self,
        read_len: usize,
        minimizer: &Minimizer,
        loc: GraphPos,
        k: usize,
    ) -> Option<SeedRegion> {
        seed_region(
            self.graph,
            self.config.error_rate,
            read_len,
            minimizer,
            loc,
            k,
        )
    }

    /// Batched seeding (Section 8.3: "If the minimizers do not fit in the
    /// minimizer scratchpad, we can perform a batching approach, where ...
    /// a batch (i.e., a subset) of minimizers is found, stored, and used,
    /// and then the next batch will be generated out of the read").
    ///
    /// Produces exactly the same result as [`Self::seed`] while touching at
    /// most `batch_size` minimizers at a time; also returns the number of
    /// batches the hardware would execute.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is 0.
    pub fn seed_in_batches(&self, read: &DnaSeq, batch_size: usize) -> (SeedingResult, usize) {
        assert!(batch_size > 0, "batch size must be positive");
        let scheme = self.index.scheme();
        let minimizers = extract_minimizers(read, scheme);
        let mut stats = SeedingStats {
            minimizers: minimizers.len(),
            ..SeedingStats::default()
        };
        let mut regions: Vec<SeedRegion> = Vec::new();
        let mut batches = 0usize;
        for batch in minimizers.chunks(batch_size) {
            batches += 1;
            for m in batch {
                let freq = self.index.frequency(m.rank);
                if freq > self.config.frequency_threshold {
                    stats.filtered_minimizers += 1;
                    continue;
                }
                for &loc in self.index.lookup(m) {
                    stats.seed_locations += 1;
                    if let Some(region) = self.region_for(read.len(), m, loc, scheme.k) {
                        regions.push(region);
                    }
                }
            }
        }
        regions.sort_by_key(|r| (r.start, r.end, r.seed));
        regions.dedup_by_key(|r| (r.start, r.end));
        stats.regions = regions.len();
        (SeedingResult { regions, stats }, batches.max(1))
    }

    /// Extracts the linearized subgraph of a candidate region (step 7 of
    /// Figure 4 — the fetch into BitAlign's input scratchpad).
    ///
    /// # Errors
    ///
    /// Propagates window-extraction errors.
    pub fn extract_region(&self, region: &SeedRegion) -> Result<LinearizedGraph, GraphError> {
        LinearizedGraph::extract(self.graph, region.start, region.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimizer::MinimizerScheme;
    use segram_graph::{linear_graph, Base};

    fn lcg_seq(len: usize, seed: u64) -> DnaSeq {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                Base::from_code_masked((state >> 33) as u8)
            })
            .collect()
    }

    fn setup(len: usize) -> (GenomeGraph, GraphIndex) {
        let text = lcg_seq(len, 11);
        let graph = linear_graph(&text, 64).unwrap();
        let index = GraphIndex::build(&graph, MinimizerScheme::new(5, 11), 12);
        (graph, index)
    }

    use segram_graph::GenomeGraph;

    #[test]
    fn perfect_read_region_covers_true_location() {
        let (graph, index) = setup(4000);
        let minseed = MinSeed::new(
            &graph,
            &index,
            MinSeedConfig {
                error_rate: 0.0,
                frequency_threshold: u32::MAX,
            },
        );
        // A read copied from linear position 1000..1120.
        let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap();
        let read: DnaSeq = (1000..1120).map(|i| lin.base(i)).collect();
        let result = minseed.seed(&read);
        assert!(result.stats.minimizers > 0);
        assert!(
            result
                .regions
                .iter()
                .any(|r| r.start <= 1000 && r.end >= 1120),
            "no region covers the true location: {:?}",
            result.regions
        );
    }

    #[test]
    fn error_rate_widens_regions() {
        let (graph, index) = setup(4000);
        let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap();
        let read: DnaSeq = (2000..2100).map(|i| lin.base(i)).collect();
        let narrow = MinSeed::new(
            &graph,
            &index,
            MinSeedConfig {
                error_rate: 0.0,
                frequency_threshold: u32::MAX,
            },
        )
        .seed(&read);
        let wide = MinSeed::new(
            &graph,
            &index,
            MinSeedConfig {
                error_rate: 0.15,
                frequency_threshold: u32::MAX,
            },
        )
        .seed(&read);
        let narrow_max = narrow.regions.iter().map(|r| r.len()).max().unwrap();
        let wide_max = wide.regions.iter().map(|r| r.len()).max().unwrap();
        assert!(wide_max > narrow_max);
    }

    #[test]
    fn frequency_filter_reduces_seeds() {
        // Build a graph with a heavy repeat so some minimizers are frequent.
        let unit = lcg_seq(80, 21).to_string();
        let text: DnaSeq = format!(
            "{}{}{}{}{}",
            unit,
            lcg_seq(500, 22),
            unit,
            lcg_seq(500, 23),
            unit
        )
        .parse()
        .unwrap();
        let graph = linear_graph(&text, 64).unwrap();
        let index = GraphIndex::build(&graph, MinimizerScheme::new(4, 9), 10);
        let read: DnaSeq = format!("{}{}", unit, &lcg_seq(500, 22).to_string()[..40])
            .parse()
            .unwrap();
        let unfiltered = MinSeed::new(
            &graph,
            &index,
            MinSeedConfig {
                error_rate: 0.0,
                frequency_threshold: u32::MAX,
            },
        )
        .seed(&read);
        let filtered = MinSeed::new(
            &graph,
            &index,
            MinSeedConfig {
                error_rate: 0.0,
                frequency_threshold: 2,
            },
        )
        .seed(&read);
        assert!(filtered.stats.filtered_minimizers > 0);
        assert!(filtered.stats.seed_locations < unfiltered.stats.seed_locations);
    }

    #[test]
    fn threshold_quantile_behaviour() {
        let (_, index) = setup(6000);
        // Discarding nothing -> MAX threshold.
        assert_eq!(frequency_threshold(&index, 0.0), u32::MAX);
        // Discarding everything -> minimal threshold.
        let all = frequency_threshold(&index, 1.0);
        assert!(all <= index.frequencies().max().unwrap());
        // The paper's 0.02% keeps nearly everything on a small index.
        let paper = frequency_threshold(&index, 0.0002);
        let kept = index.frequencies().filter(|&f| f <= paper).count();
        assert!(kept as f64 / index.distinct_minimizers() as f64 > 0.99);
    }

    #[test]
    fn figure9_arithmetic() {
        // Hand-checked example: read m=100, minimizer at read [20, 30]
        // (k=11 => a=20, b=30), seed at linear c=500 (d=510), E=0.1:
        // x = 500 - ceil(20*1.1) = 500 - 22 = 478
        // y = 510 + ceil((100-30-1)*1.1) = 510 + ceil(75.9) = 586 (incl.)
        let (graph, index) = setup(4000);
        let minseed = MinSeed::new(
            &graph,
            &index,
            MinSeedConfig {
                error_rate: 0.1,
                frequency_threshold: u32::MAX,
            },
        );
        let m = Minimizer {
            rank: 0,
            packed: 0,
            pos: 20,
        };
        let loc = graph.graph_pos(500).unwrap();
        let region = minseed.region_for(100, &m, loc, 11).unwrap();
        assert_eq!(region.start, 478);
        assert_eq!(region.end, 587); // exclusive end = y + 1
    }

    #[test]
    fn batched_seeding_equals_unbatched() {
        let (graph, index) = setup(4000);
        let minseed = MinSeed::new(
            &graph,
            &index,
            MinSeedConfig {
                error_rate: 0.05,
                frequency_threshold: u32::MAX,
            },
        );
        let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap();
        let read: DnaSeq = (500..900).map(|i| lin.base(i)).collect();
        let whole = minseed.seed(&read);
        for batch_size in [1usize, 3, 7, 1000] {
            let (batched, batches) = minseed.seed_in_batches(&read, batch_size);
            assert_eq!(batched.regions, whole.regions, "batch size {batch_size}");
            assert_eq!(batched.stats, whole.stats, "batch size {batch_size}");
            let expected = whole.stats.minimizers.div_ceil(batch_size).max(1);
            assert_eq!(batches, expected, "batch size {batch_size}");
        }
    }

    #[test]
    fn regions_clamped_to_graph() {
        let (graph, index) = setup(500);
        let minseed = MinSeed::new(
            &graph,
            &index,
            MinSeedConfig {
                error_rate: 0.5,
                frequency_threshold: u32::MAX,
            },
        );
        let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap();
        let read: DnaSeq = (0..200).map(|i| lin.base(i)).collect();
        let result = minseed.seed(&read);
        for r in &result.regions {
            assert!(r.end <= graph.total_chars());
            assert!(r.start < r.end);
            assert!(minseed.extract_region(r).is_ok());
        }
    }
}
