//! # segram-index
//!
//! MinSeed: the minimizer-based seeding front-end of the SeGraM
//! reproduction (ISCA 2022, Sections 5–6):
//!
//! * `<w,k>`-minimizer extraction in `O(m)` ([`extract_minimizers`],
//!   Figure 8);
//! * the three-level hash-table index over graph nodes ([`GraphIndex`],
//!   Figure 6) with the paper's exact byte accounting ([`IndexFootprint`],
//!   Figure 7);
//! * the seeding step itself ([`MinSeed`]): frequency filtering (top
//!   0.02 % rule) and candidate-region arithmetic (Figure 9).
//!
//! ## Example
//!
//! ```
//! use segram_index::{GraphIndex, MinSeed, MinSeedConfig, MinimizerScheme};
//! use segram_graph::linear_graph;
//!
//! let text: segram_graph::DnaSeq = "ACGTTGCAGTCATGCAACGGTTAC".repeat(30).parse()?;
//! let graph = linear_graph(&text, 64)?;
//! let index = GraphIndex::build(&graph, MinimizerScheme::new(5, 11), 12);
//! let minseed = MinSeed::new(&graph, &index, MinSeedConfig::default());
//! let result = minseed.seed(&text.slice(64, 164));
//! assert!(!result.regions.is_empty());
//! # Ok::<(), segram_graph::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chain;
mod index;
mod minimizer;
mod minseed;
mod persist;
mod update;

pub use chain::{chain_anchors, Anchor, Chain, ChainConfig};
pub use index::{
    shard_boundaries, DeltaStats, GraphIndex, IndexFootprint, BUCKET_ENTRY_BYTES,
    DEFAULT_BUCKET_BITS, LOCATION_ENTRY_BYTES, MINIMIZER_ENTRY_BYTES,
};
pub use minimizer::{
    density, extract_minimizers, extract_minimizers_from, hash64, kmer_mask, pack_kmer,
    KmerOrdering, Minimizer, MinimizerScheme,
};
pub use minseed::{
    frequency_threshold, seed_region, MinSeed, MinSeedConfig, SeedRegion, SeedingResult,
    SeedingStats,
};
pub use persist::{
    decode_index, encode_index, read_index_file, write_index_file, EpochEntry, IndexProvenance,
    PersistError, PersistedIndex, StoreChangelog, CHANGELOG_VERSION, INDEX_FORMAT_VERSION,
    INDEX_MAGIC, PROVENANCE_VERSION,
};
pub use update::{initial_changelog, update_store, UpdateOutcome};
