//! The batched, multi-threaded, order-preserving map engine.
//!
//! [`MapEngine`] is the production driver around
//! [`SegramMapper`](crate::SegramMapper): it consumes a stream of reads,
//! groups them into fixed-size batches, fans the batches out to
//! `std::thread::scope` workers through a bounded work queue (so an
//! arbitrarily long input stream never piles up in memory), and emits
//! per-read outcomes to a sink **in input order**, whatever the worker
//! interleaving. Per-stage [`MapStats`] are aggregated across all workers.
//!
//! Ordering guarantee: batches are numbered by the producer and a reorder
//! buffer releases them to the sink strictly sequentially, so the output
//! of `threads = N` is byte-identical to `threads = 1` for any `N` (the
//! mapper itself is deterministic). `ci.sh` enforces this end to end.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

use segram_graph::DnaSeq;
use segram_sim::Strand;

use crate::mapper::{MapStats, Mapping, SegramMapper};

/// Tuning knobs of a [`MapEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker thread count (clamped to at least 1).
    pub threads: usize,
    /// Reads per work item; batching amortizes queue synchronization.
    pub batch_size: usize,
    /// Bounded work-queue capacity in batches (0 = `2 × threads`). Bounds
    /// how far the producer can run ahead of the workers.
    pub queue_depth: usize,
    /// Map each read on both strands and keep the better mapping.
    pub both_strands: bool,
}

impl EngineConfig {
    /// A configuration with `threads` workers and default batching.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Returns a copy with both-strand mapping enabled or disabled.
    pub fn both_strands(mut self, enabled: bool) -> Self {
        self.both_strands = enabled;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_size: 16,
            queue_depth: 0,
            both_strands: false,
        }
    }
}

/// The engine's per-read result: the mapping (if any), the strand it was
/// found on, and this read's per-stage statistics (the inputs SAM/GAF
/// rendering needs, e.g. for MAPQ estimation).
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// The winning mapping, if the read mapped.
    pub mapping: Option<Mapping>,
    /// Strand the mapping was found on ([`Strand::Forward`] unless
    /// [`EngineConfig::both_strands`] found a better reverse mapping).
    pub strand: Strand,
    /// This read's pipeline statistics.
    pub stats: MapStats,
}

/// Aggregate of one engine run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineReport {
    /// Reads consumed from the input stream.
    pub reads: usize,
    /// Reads that produced a mapping.
    pub mapped: usize,
    /// Batches the input was split into.
    pub batches: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Per-stage statistics summed over every read and worker.
    pub stats: MapStats,
}

/// A bounded single-producer / multi-consumer batch queue (Mutex +
/// Condvar; no external dependencies). `push` blocks while the queue is
/// full, `pop` blocks while it is empty, and `close` wakes everyone so
/// drained workers observe end-of-stream.
struct WorkQueue<T> {
    inner: Mutex<WorkQueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct WorkQueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> WorkQueue<T> {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(WorkQueueInner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        while inner.items.len() >= inner.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("work queue poisoned");
        }
        if inner.closed {
            return;
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
    }

    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("work queue poisoned");
        }
    }

    fn close(&self) {
        match self.inner.lock() {
            Ok(mut inner) => inner.closed = true,
            // Closing must succeed even after a worker panicked while
            // holding the lock — liveness beats the poison flag here.
            Err(poisoned) => poisoned.into_inner().closed = true,
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Closes the queue when dropped — including during a panic unwind. Both
/// the producer and every worker hold one, so a panic anywhere (input
/// iterator, sink, pipeline) releases the threads blocked on the queue
/// and lets `std::thread::scope` propagate the panic instead of
/// deadlocking.
struct CloseOnDrop<'a, T>(&'a WorkQueue<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// The in-order emission side: completed batches park in `pending` until
/// every earlier batch has been handed to the sink.
struct Reorder<T, F> {
    next: usize,
    pending: BTreeMap<usize, Vec<(T, ReadOutcome)>>,
    sink: F,
    report: EngineReport,
}

/// The batched, multi-threaded, order-preserving mapping engine.
///
/// # Examples
///
/// ```
/// use segram_core::{EngineConfig, MapEngine, SegramConfig, SegramMapper};
/// use segram_sim::DatasetConfig;
///
/// let dataset = DatasetConfig::tiny(3).illumina(100);
/// let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
/// let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
/// let reads: Vec<_> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
/// let (outcomes, report) = engine.map_batch(&reads);
/// assert_eq!(outcomes.len(), reads.len());
/// assert_eq!(report.reads, reads.len());
/// assert!(report.mapped > 0);
/// ```
#[derive(Debug)]
pub struct MapEngine<'m> {
    mapper: &'m SegramMapper,
    config: EngineConfig,
}

impl<'m> MapEngine<'m> {
    /// Binds the engine to a mapper.
    pub fn new(mapper: &'m SegramMapper, config: EngineConfig) -> Self {
        Self { mapper, config }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Maps one read according to the engine's strand policy.
    fn map_one(&self, read: &DnaSeq) -> ReadOutcome {
        if self.config.both_strands {
            let (best, stats) = self.mapper.map_read_both(read);
            let (mapping, strand) = match best {
                Some((mapping, strand)) => (Some(mapping), strand),
                None => (None, Strand::Forward),
            };
            ReadOutcome {
                mapping,
                strand,
                stats,
            }
        } else {
            let (mapping, stats) = self.mapper.map_read(read);
            ReadOutcome {
                mapping,
                strand: Strand::Forward,
                stats,
            }
        }
    }

    /// Streams `reads` through the engine, calling `sink(item, outcome)`
    /// once per read **in input order**.
    ///
    /// `read_of` projects the sequence out of an arbitrary item type, so
    /// callers can stream `FastqRecord`s, `SimulatedRead`s, or bare
    /// [`DnaSeq`]s and get the item back in the sink alongside its
    /// outcome. The input iterator is consumed incrementally on the
    /// calling thread, and a worker that runs too far ahead of a slow
    /// batch parks until the reorder buffer drains, so at most
    /// `2 × queue_depth + 2 × threads` batches exist at any moment —
    /// memory stays bounded for arbitrarily long streams.
    pub fn map_stream<T, R, F>(
        &self,
        mut reads: impl Iterator<Item = T>,
        read_of: R,
        sink: F,
    ) -> EngineReport
    where
        T: Send,
        R: Fn(&T) -> &DnaSeq + Sync,
        F: FnMut(T, ReadOutcome) + Send,
    {
        let threads = self.config.threads.max(1);
        let batch_size = self.config.batch_size.max(1);
        let queue_depth = if self.config.queue_depth == 0 {
            threads * 2
        } else {
            self.config.queue_depth
        };
        let queue: WorkQueue<(usize, Vec<T>)> = WorkQueue::new(queue_depth);
        // The reorder buffer is bounded too: a worker whose finished batch
        // is further than this ahead of the next-to-emit batch parks until
        // the slow batch releases, so one pathological read cannot make
        // `pending` absorb the rest of the stream.
        let max_ahead = queue_depth + threads;
        let output = Mutex::new(Reorder {
            next: 0,
            pending: BTreeMap::new(),
            sink,
            report: EngineReport::default(),
        });
        let released = Condvar::new();
        let read_of = &read_of;
        let mut batches = 0usize;

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // Unblocks the producer and fellow workers if this
                    // worker panics (sink, pipeline, or poisoned lock).
                    let _close_guard = CloseOnDrop(&queue);
                    while let Some((index, items)) = queue.pop() {
                        let outcomes: Vec<(T, ReadOutcome)> = items
                            .into_iter()
                            .map(|item| {
                                let outcome = self.map_one(read_of(&item));
                                (item, outcome)
                            })
                            .collect();
                        let mut guard = output.lock().expect("engine output poisoned");
                        // Backpressure: the worker owning batch `next` is
                        // never parked here, so emission always advances.
                        while index >= guard.next + max_ahead {
                            guard = released.wait(guard).expect("engine output poisoned");
                        }
                        let out = &mut *guard;
                        out.pending.insert(index, outcomes);
                        // Release every batch that is now contiguous with
                        // the emitted prefix, in order.
                        let mut advanced = false;
                        while let Some(ready) = out.pending.remove(&out.next) {
                            out.next += 1;
                            advanced = true;
                            for (item, outcome) in ready {
                                out.report.reads += 1;
                                if outcome.mapping.is_some() {
                                    out.report.mapped += 1;
                                }
                                out.report.stats.merge(&outcome.stats);
                                (out.sink)(item, outcome);
                            }
                        }
                        drop(guard);
                        if advanced {
                            released.notify_all();
                        }
                    }
                });
            }

            // The calling thread is the producer: batch the stream into
            // the bounded queue, then signal end-of-input (the guard also
            // closes the queue if the input iterator panics, so workers
            // are never left blocked).
            let _close_guard = CloseOnDrop(&queue);
            loop {
                let batch: Vec<T> = reads.by_ref().take(batch_size).collect();
                if batch.is_empty() {
                    break;
                }
                queue.push((batches, batch));
                batches += 1;
            }
        });

        let mut report = output.into_inner().expect("engine output poisoned").report;
        report.batches = batches;
        report.threads = threads;
        report
    }

    /// Maps a slice of reads, returning the outcomes in input order plus
    /// the aggregate report (the batch-oriented convenience entry point).
    pub fn map_batch(&self, reads: &[DnaSeq]) -> (Vec<ReadOutcome>, EngineReport) {
        let mut outcomes = Vec::with_capacity(reads.len());
        let report = self.map_stream(
            reads.iter(),
            |read| *read,
            |_, outcome| outcomes.push(outcome),
        );
        (outcomes, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegramConfig;
    use segram_sim::DatasetConfig;
    use std::time::Duration;

    fn setup() -> (segram_sim::Dataset, SegramMapper) {
        let dataset = DatasetConfig::tiny(91).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        (dataset, mapper)
    }

    #[test]
    fn outcomes_preserve_input_order_across_thread_counts() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let serial = MapEngine::new(&mapper, EngineConfig::with_threads(1));
        let (base, base_report) = serial.map_batch(&reads);
        assert_eq!(base_report.reads, reads.len());
        for threads in [2usize, 4] {
            let mut config = EngineConfig::with_threads(threads);
            config.batch_size = 3; // force interleaving across workers
            let engine = MapEngine::new(&mapper, config);
            let (outcomes, report) = engine.map_batch(&reads);
            assert_eq!(report.threads, threads);
            assert_eq!(report.reads, reads.len());
            assert_eq!(report.mapped, base_report.mapped);
            for (a, b) in base.iter().zip(&outcomes) {
                assert_eq!(
                    a.mapping
                        .as_ref()
                        .map(|m| (m.linear_start, m.alignment.edit_distance)),
                    b.mapping
                        .as_ref()
                        .map(|m| (m.linear_start, m.alignment.edit_distance)),
                );
                assert_eq!(a.strand, b.strand);
            }
        }
    }

    #[test]
    fn tiny_queue_backpressure_still_preserves_order() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let (base, _) = MapEngine::new(&mapper, EngineConfig::with_threads(1)).map_batch(&reads);
        // One-read batches through a one-slot queue with four workers:
        // maximum contention on both the work queue and the bounded
        // reorder buffer (max_ahead = 5 with 20 batches in flight).
        let mut config = EngineConfig::with_threads(4);
        config.batch_size = 1;
        config.queue_depth = 1;
        let engine = MapEngine::new(&mapper, config);
        let (outcomes, report) = engine.map_batch(&reads);
        assert_eq!(report.reads, reads.len());
        assert_eq!(report.batches, reads.len());
        for (a, b) in base.iter().zip(&outcomes) {
            assert_eq!(
                a.mapping.as_ref().map(|m| m.linear_start),
                b.mapping.as_ref().map(|m| m.linear_start),
            );
        }
    }

    #[test]
    fn per_stage_stats_aggregation_matches_serial_sums() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();

        // Serial reference: sum per-read stats by hand.
        let mut serial = MapStats::default();
        let mut serial_mapped = 0usize;
        for read in &reads {
            let (mapping, stats) = mapper.map_read(read);
            serial.merge(&stats);
            if mapping.is_some() {
                serial_mapped += 1;
            }
        }

        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(4));
        let (_, report) = engine.map_batch(&reads);
        // Counts are deterministic and must match the serial sums exactly;
        // durations are wall-clock measurements, so only their presence is
        // checked.
        assert_eq!(report.mapped, serial_mapped);
        assert_eq!(report.stats.minimizers, serial.minimizers);
        assert_eq!(report.stats.filtered_minimizers, serial.filtered_minimizers);
        assert_eq!(report.stats.seed_locations, serial.seed_locations);
        assert_eq!(report.stats.regions_aligned, serial.regions_aligned);
        assert_eq!(report.stats.regions_filtered, serial.regions_filtered);
        assert_eq!(report.stats.total_region_len, serial.total_region_len);
        assert!(report.stats.seeding > Duration::ZERO);
        assert!(report.stats.alignment > Duration::ZERO);
    }

    #[test]
    fn prefiltered_engine_accounts_filtering_time_separately() {
        let dataset = DatasetConfig::tiny(93).illumina(100);
        let config =
            SegramConfig::short_reads().with_prefilter(segram_filter::FilterSpec::cascade());
        let mapper = SegramMapper::new(dataset.graph().clone(), config);
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
        let (_, report) = engine.map_batch(&reads);
        assert!(report.stats.filtering > Duration::ZERO);
        let fraction = report.stats.alignment_fraction();
        assert!(fraction > 0.0 && fraction < 1.0);
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let (_, mapper) = setup();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(3));
        let report = engine.map_stream(std::iter::empty::<DnaSeq>(), |r| r, |_, _| {});
        assert_eq!(report.reads, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.mapped, 0);
    }

    #[test]
    fn both_strand_engine_recovers_reverse_reads() {
        let dataset = DatasetConfig::tiny(95).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let stranded = segram_sim::simulate_stranded_reads(
            dataset.graph(),
            &segram_sim::ReadConfig::short_reads(10, 100, 96),
            1.0,
        );
        let reads: Vec<DnaSeq> = stranded.iter().map(|r| r.seq.clone()).collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2).both_strands(true));
        let (outcomes, report) = engine.map_batch(&reads);
        assert!(report.mapped >= 8, "only {} of 10 mapped", report.mapped);
        assert!(outcomes
            .iter()
            .filter_map(|o| o.mapping.as_ref().map(|_| o.strand))
            .any(|s| s == Strand::Reverse));
    }
}
