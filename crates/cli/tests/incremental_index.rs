//! End-to-end tests for the versioned store lifecycle at the CLI:
//! `index build` -> split-VCF `index update` -> `index inspect`, with the
//! updated store proven payload-identical to a from-scratch build over
//! the combined VCF and byte-identical under `map`; plus the CLI faces
//! of the corruption-class matrix and the `--compress-output` round trip.

use std::fs;
use std::path::PathBuf;

use segram_cli::{dispatch, CliError};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("segram-incr-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run(args: &[&str]) -> Result<String, CliError> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    dispatch(&owned)
}

/// Simulates a bundle and splits its VCF into a base half and a delta
/// half by position (data lines are position-sorted, so the halves do
/// not interleave). Returns the bundle prefix.
fn simulate_and_split(dir: &TempDir) -> String {
    let prefix = dir.path("bundle");
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "25000",
        "--reads",
        "16",
        "--read-len",
        "110",
        "--seed",
        "7",
    ])
    .expect("simulate");

    let vcf = fs::read_to_string(format!("{prefix}.vcf")).expect("vcf exists");
    let header: Vec<&str> = vcf.lines().filter(|l| l.starts_with('#')).collect();
    let data: Vec<&str> = vcf.lines().filter(|l| !l.starts_with('#')).collect();
    assert!(
        data.len() >= 4,
        "need enough variants to split: {}",
        data.len()
    );
    let mid = data.len() / 2;
    let stitch = |lines: &[&str]| {
        let mut text = header.join("\n");
        text.push('\n');
        text.push_str(&lines.join("\n"));
        text.push('\n');
        text
    };
    fs::write(dir.path("base.vcf"), stitch(&data[..mid])).expect("write base vcf");
    fs::write(dir.path("delta.vcf"), stitch(&data[mid..])).expect("write delta vcf");
    prefix
}

/// Extracts the stamped changelog identity from an `index inspect`
/// report — the fnv1a64 over the encoded GRAPH + INDEX payloads, i.e.
/// byte-identity of everything mapping consumes.
fn inspect_identity(report: &str) -> String {
    let line = report
        .lines()
        .find(|l| l.trim_start().starts_with("changelog:"))
        .expect("inspect prints a changelog line");
    let tail = line.split("identity ").nth(1).expect("identity field");
    tail.split(',').next().expect("delimited").to_owned()
}

#[test]
fn index_update_matches_a_scratch_build_over_the_combined_vcf() {
    let dir = TempDir::new("update");
    let prefix = simulate_and_split(&dir);

    let v1 = dir.path("v1.sgi");
    let v2 = dir.path("v2.sgi");
    let scratch = dir.path("scratch.sgi");

    run(&[
        "index",
        "build",
        "--reference",
        &format!("{prefix}.fa"),
        "--vcf",
        &dir.path("base.vcf"),
        "--output",
        &v1,
    ])
    .expect("index build v1");

    // The update works from the persisted store alone — no FASTA passed.
    let report = run(&[
        "index",
        "update",
        "--index",
        &v1,
        "--vcf",
        &dir.path("delta.vcf"),
        "--output",
        &v2,
    ])
    .expect("index update");
    assert!(report.contains("epoch 1"), "{report}");
    assert!(report.contains("locations carried"), "{report}");
    // Partial re-index: the report names the touched ranges and the
    // re-extracted character count, and the carried set dominates.
    let touched = report
        .lines()
        .find(|l| l.contains("touched") && l.contains("re-extracted"))
        .expect("update reports touched ranges");
    let re_extracted: u64 = touched
        .split_whitespace()
        .skip_while(|w| *w != "re-extracted")
        .nth(1)
        .and_then(|w| w.parse().ok())
        .expect("re-extracted count");
    let total: u64 = touched
        .split_whitespace()
        .skip_while(|w| *w != "of")
        .nth(1)
        .and_then(|w| w.parse().ok())
        .expect("total char count");
    assert!(
        re_extracted < total / 2,
        "re-extracted {re_extracted} of {total} chars — not a partial update"
    );

    run(&[
        "index",
        "build",
        "--reference",
        &format!("{prefix}.fa"),
        "--vcf",
        &format!("{prefix}.vcf"),
        "--output",
        &scratch,
    ])
    .expect("index build scratch");

    // Payload identity: the updated store's graph + index bytes equal the
    // scratch build's, even though their changelogs/provenance differ.
    let inspect_v2 = run(&["index", "inspect", "--index", &v2]).expect("inspect v2");
    let inspect_scratch = run(&["index", "inspect", "--index", &scratch]).expect("inspect scratch");
    assert_eq!(
        inspect_identity(&inspect_v2),
        inspect_identity(&inspect_scratch),
        "updated store diverged from the scratch build\n-- v2 --\n{inspect_v2}\n-- scratch --\n{inspect_scratch}"
    );

    // And the proof that matters downstream: mapping through either store
    // produces the same bytes, sharded or not.
    let reads = format!("{prefix}.fq");
    for (tag, extra) in [("flat", &[][..]), ("sharded", &["--shards", "2"][..])] {
        let out_a = dir.path(&format!("{tag}-updated.sam"));
        let out_b = dir.path(&format!("{tag}-scratch.sam"));
        for (index, out) in [(&v2, &out_a), (&scratch, &out_b)] {
            let mut args = vec![
                "map", "--index", index, "--reads", &reads, "--format", "sam", "--output", out,
            ];
            args.extend_from_slice(extra);
            run(&args).expect("map");
        }
        assert_eq!(
            fs::read(&out_a).unwrap(),
            fs::read(&out_b).unwrap(),
            "{tag} SAM output diverged between updated and scratch stores"
        );
    }

    // The version chain is visible in inspect: two history entries, the
    // delta VCF recorded in provenance.
    assert!(inspect_v2.contains("changelog: epoch 1"), "{inspect_v2}");
    assert!(inspect_v2.contains("epoch 0:"), "{inspect_v2}");
    assert!(inspect_v2.contains("epoch 1:"), "{inspect_v2}");
    assert!(inspect_v2.contains("vcf[1]"), "{inspect_v2}");
    assert!(
        inspect_scratch.contains("changelog: epoch 0"),
        "{inspect_scratch}"
    );
}

#[test]
fn corrupted_stores_error_cleanly_at_the_cli() {
    let dir = TempDir::new("corrupt");
    let prefix = simulate_and_split(&dir);
    let v1 = dir.path("v1.sgi");
    run(&[
        "index",
        "build",
        "--reference",
        &format!("{prefix}.fa"),
        "--vcf",
        &dir.path("base.vcf"),
        "--output",
        &v1,
    ])
    .expect("index build");
    let bytes = fs::read(&v1).unwrap();

    // Truncations at the header, mid-file, and the final byte: every one
    // is a named error, never a panic, and never a partial output file.
    for cut in [10, bytes.len() / 2, bytes.len() - 1] {
        let broken = dir.path("broken.sgi");
        fs::write(&broken, &bytes[..cut]).unwrap();
        let out = dir.path("never.sgi");
        let err = run(&[
            "index",
            "update",
            "--index",
            &broken,
            "--vcf",
            &dir.path("delta.vcf"),
            "--output",
            &out,
        ])
        .expect_err("truncated store must not update");
        assert_eq!(err.exit_code(), 1, "cut at {cut}: {err}");
        assert!(
            fs::metadata(&out).is_err(),
            "cut at {cut} left a partial output file"
        );
        run(&["index", "inspect", "--index", &broken])
            .expect_err("truncated store must not inspect");
    }

    // A flipped payload byte trips the section checksum.
    let mut flipped = bytes.clone();
    let pos = bytes.len() - 40;
    flipped[pos] ^= 0x40;
    let broken = dir.path("flipped.sgi");
    fs::write(&broken, &flipped).unwrap();
    let err = run(&["index", "inspect", "--index", &broken]).expect_err("flip detected");
    assert!(err.to_string().contains("checksum"), "{err}");
}

#[test]
fn compress_output_round_trips_through_bgzf() {
    let dir = TempDir::new("compress");
    let prefix = simulate_and_split(&dir);
    let index = dir.path("v1.sgi");
    run(&[
        "index",
        "build",
        "--reference",
        &format!("{prefix}.fa"),
        "--vcf",
        &format!("{prefix}.vcf"),
        "--output",
        &index,
    ])
    .expect("index build");

    let plain = dir.path("plain.sam");
    let packed = dir.path("packed.sam.gz");
    run(&[
        "map",
        "--index",
        &index,
        "--reads",
        &format!("{prefix}.fq"),
        "--format",
        "sam",
        "--output",
        &plain,
    ])
    .expect("plain map");
    let report = run(&[
        "map",
        "--index",
        &index,
        "--reads",
        &format!("{prefix}.fq"),
        "--format",
        "sam",
        "--output",
        &packed,
        "--compress-output",
    ])
    .expect("compressed map");
    assert!(report.contains("BGZF-compressed"), "{report}");

    let compressed = fs::read(&packed).unwrap();
    assert!(
        compressed.ends_with(&segram_io::BGZF_EOF),
        "clean close must append the 28-byte BGZF EOF marker"
    );
    let mut inflated = Vec::new();
    for block in segram_io::BgzfBlocks::new(&compressed[..]) {
        inflated.extend(block.expect("well-formed").inflate().expect("verifies"));
    }
    assert_eq!(
        inflated,
        fs::read(&plain).unwrap(),
        "BGZF output must inflate to the plain SAM bytes"
    );

    // --compress-output without a file target is a usage error.
    let err = run(&[
        "map",
        "--index",
        &index,
        "--reads",
        &format!("{prefix}.fq"),
        "--format",
        "sam",
        "--compress-output",
    ])
    .expect_err("stdout cannot be compressed");
    assert_eq!(err.exit_code(), 2, "{err}");
}
