//! The mapping pipeline as explicit stages plus the batched parallel
//! engine on top.
//!
//! The paper's end-to-end system is a pipeline — MinSeed feeds candidate
//! regions through optional pre-alignment filtering into BitAlign
//! (Figure 2). This module makes that dataflow explicit:
//!
//! ```text
//!            ┌────────┐   regions   ┌───────────┐  surviving  ┌─────────┐
//!   read ───►│ Seeder │────────────►│ Prefilter │────────────►│ Aligner │──► Mapping
//!            └────────┘             └───────────┘   regions   └─────────┘
//!             MinSeed               SHD-family                 BitAlign
//! ```
//!
//! * [`Seeder`] / [`Prefilter`] / [`Aligner`] — the stage traits, with
//!   [`MinSeedStage`], [`SpecPrefilter`], and [`BitAlignStage`] as the
//!   paper's default implementations ([`stages`]);
//! * [`MapPipeline`] — the per-read driver: candidate clustering, region
//!   extraction/widening, early exit, and per-stage time accounting;
//! * [`MapEngine`] — the batched, multi-threaded, order-preserving driver
//!   for read streams ([`engine`]), generic over any
//!   [`ReadMapper`](crate::ReadMapper), with overlapped IO: raw-record
//!   decode runs in the worker stage and the sink runs on a dedicated
//!   writer thread, with a [`CancelToken`] stopping both ends promptly on
//!   failure;
//! * [`ShardRouter`] — the sharded seeding stage: per-shard index lookups
//!   merged into the monolithic candidate order before
//!   prefilter/alignment ([`router`]);
//! * [`ElasticScheduler`] — the per-shard-group pool schedule over a
//!   sharded index ([`elastic`]): batches routed to dedicated pools by the
//!   router's shard decision, with a live imbalance-driven [`Rebalancer`]
//!   migrating shard ownership between pools — same bytes as the fanout
//!   engine, by the shared reorder buffer;
//! * [`sam_record_for`] / [`gaf_record_for`] — render one engine outcome
//!   into the interchange formats, shared by the CLI and the test suite.
//!
//! [`SegramMapper`](crate::SegramMapper) is a thin facade over this
//! module: it owns the graph + index and wires the default stages into a
//! [`MapPipeline`].

mod elastic;
mod engine;
mod multi;
mod router;
mod stages;

pub use elastic::{ElasticReport, ElasticScheduler, PoolReport, RebalanceConfig, Rebalancer};
pub use engine::{
    BatchBounds, BatchTrajectory, CancelToken, DecodedBlock, EngineConfig, EngineOptions,
    EngineReport, MapEngine, QueueStats, ReadOutcome, ShardAffinity, WorkQueue,
};
pub use multi::{
    EngineBusy, MultiConfig, MultiEngine, PoolCounters, Priority, QueueDelayStats, RequestHandle,
    RequestPanicked, RouteHook,
};
pub use router::ShardRouter;
pub use stages::{Aligner, BitAlignStage, MinSeedStage, Prefilter, Seeder, SpecPrefilter};

use std::time::{Duration, Instant};

use segram_graph::{DnaSeq, GenomeGraph, LinearizedGraph};
use segram_index::SeedRegion;
use segram_io::{FormatError, GafRecord};
use segram_sim::Strand;

use crate::config::SegramConfig;
use crate::mapper::{MapStats, Mapping};
use crate::sam::{mapq_estimate, SamRecord};

/// The per-read pipeline: three stages plus the driver logic that connects
/// them (candidate clustering, region extraction and widening, early
/// exit, and per-stage statistics).
///
/// Generic over the stage implementations so alternative components can be
/// benchmarked against the defaults without touching the driver.
#[derive(Clone, Copy, Debug)]
pub struct MapPipeline<'g, S, P, A> {
    graph: &'g GenomeGraph,
    seeder: S,
    prefilter: P,
    aligner: A,
    config: SegramConfig,
}

impl<'g, S: Seeder, P: Prefilter, A: Aligner> MapPipeline<'g, S, P, A> {
    /// Assembles a pipeline from its stages.
    ///
    /// `config` supplies the driver knobs (`max_regions`, `error_rate`,
    /// `early_exit_edits`, thresholds); the stages carry their own
    /// parameters.
    pub fn new(
        graph: &'g GenomeGraph,
        seeder: S,
        prefilter: P,
        aligner: A,
        config: SegramConfig,
    ) -> Self {
        Self {
            graph,
            seeder,
            prefilter,
            aligner,
            config,
        }
    }

    /// The reference graph the pipeline maps against.
    pub fn graph(&self) -> &'g GenomeGraph {
        self.graph
    }

    /// The seeding stage.
    pub fn seeder(&self) -> &S {
        &self.seeder
    }

    /// The pre-alignment filter stage.
    pub fn prefilter(&self) -> &P {
        &self.prefilter
    }

    /// The alignment stage.
    pub fn aligner(&self) -> &A {
        &self.aligner
    }

    /// The pipeline's optional clustering step (Figure 2, step 2): seeds
    /// from one locus produce near-identical regions, so cluster them
    /// before truncating — otherwise the cap keeps only the read's first
    /// (often repeat-heavy) minimizers and drops the true locus entirely.
    /// MinSeed itself stays cluster-free (Section 11.4); this only runs
    /// when the caller opted into a region cap.
    fn cap_regions(&self, mut regions: Vec<SeedRegion>, read_len: usize) -> Vec<SeedRegion> {
        if self.config.max_regions == 0 || regions.len() <= self.config.max_regions {
            return regions;
        }
        regions.sort_by_key(|r| r.start);
        let merge_within = (read_len as u64).max(64);
        let mut clusters: Vec<(SeedRegion, usize)> = Vec::new();
        for region in regions.drain(..) {
            match clusters.last_mut() {
                Some((head, count)) if region.start.saturating_sub(head.start) < merge_within => {
                    *count += 1;
                }
                _ => clusters.push((region, 1)),
            }
        }
        // Rank loci by seed support: the true locus collects hits from
        // many of the read's minimizers, repeats collect few each.
        clusters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.start.cmp(&b.0.start)));
        clusters
            .into_iter()
            .take(self.config.max_regions)
            .map(|(region, _)| region)
            .collect()
    }

    /// Maps one read end to end; returns the best mapping (fewest edits,
    /// then leftmost) and the per-stage pipeline statistics.
    pub fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
        let mut stats = MapStats::default();
        let t0 = Instant::now();
        let seeding = self.seeder.seed(read);
        stats.seeding = t0.elapsed();
        stats.minimizers = seeding.stats.minimizers;
        stats.filtered_minimizers = seeding.stats.filtered_minimizers;
        stats.seed_locations = seeding.stats.seed_locations;

        let t1 = Instant::now();
        let mut filtering = Duration::ZERO;
        let mut best: Option<Mapping> = None;
        let regions = self.cap_regions(seeding.regions, read.len());
        // An alignment whose edit count stays below this is plausibly
        // error-only; anything above it hints that the read's path left the
        // linear-coordinate window (e.g. a hop across a structural-variant
        // deletion, whose deleted characters sit inline in the
        // linearization), so the region is retried wider.
        let plausible = ((read.len() as f64) * self.config.error_rate * 1.5).ceil() as u32 + 4;
        let filter_k = self.config.threshold_for(read.len()).max(plausible);
        for region in regions {
            let mut window_start = region.start;
            let mut window_end = region.end;
            let mut outcome: Option<(segram_align::Alignment, LinearizedGraph)> = None;
            for attempt in 0..3u32 {
                let Ok(lin) = LinearizedGraph::extract(self.graph, window_start, window_end) else {
                    break;
                };
                let accepted = if self.prefilter.is_pass_through() {
                    true
                } else {
                    let tf = Instant::now();
                    let accepted = self.prefilter.accept(read, &lin, filter_k);
                    filtering += tf.elapsed();
                    accepted
                };
                if !accepted {
                    // Treat a rejection like an implausible alignment:
                    // widen and re-filter, so structural-variant hops
                    // that the narrow window clips still get rescued.
                    stats.regions_filtered += 1;
                    let ext = (read.len() as u64).max(256) << attempt;
                    window_start = window_start.saturating_sub(ext);
                    window_end = (window_end + ext).min(self.graph.total_chars());
                    continue;
                }
                stats.regions_aligned += 1;
                stats.total_region_len += window_end - window_start;
                match self.aligner.align(&lin, read) {
                    Ok(a) if a.edit_distance <= plausible => {
                        outcome = Some((a, lin));
                        break;
                    }
                    Ok(a) => outcome = Some((a, lin)),
                    Err(_) => {}
                }
                // Widen and retry (bounded): covers SV-sized hops.
                let ext = (read.len() as u64).max(256) << attempt;
                window_start = window_start.saturating_sub(ext);
                window_end = (window_end + ext).min(self.graph.total_chars());
            }
            let Some((alignment, lin)) = outcome else {
                continue;
            };
            let linear_start = window_start + alignment.text_start as u64;
            let candidate = Mapping {
                start: lin.origin(alignment.text_start.min(lin.len() - 1)),
                linear_start,
                path: alignment.graph_path(&lin),
                alignment,
                region,
            };
            let better = match &best {
                None => true,
                Some(current) => {
                    (candidate.alignment.edit_distance, candidate.linear_start)
                        < (current.alignment.edit_distance, current.linear_start)
                }
            };
            if better {
                best = Some(candidate);
            }
            if let Some(current) = &best {
                if self.config.early_exit_edits > 0
                    && current.alignment.edit_distance <= self.config.early_exit_edits
                {
                    break;
                }
            }
        }
        stats.filtering = filtering;
        stats.alignment = t1.elapsed().saturating_sub(filtering);
        (best, stats)
    }

    /// Maps a read trying **both strands** (the read as given and its
    /// reverse complement), returning the better mapping and the strand it
    /// mapped on. Sequencers emit reads from either strand with equal
    /// probability, so end-to-end mappers always do this double query; the
    /// hardware does too (each orientation is just another read stream).
    pub fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
        let (forward, mut stats) = self.map_read(read);
        let rc = read.reverse_complement();
        let (reverse, reverse_stats) = self.map_read(&rc);
        stats.merge(&reverse_stats);
        (crate::mapper::better_stranded(forward, reverse), stats)
    }
}

/// Renders one engine outcome as a SAM record: a mapped record with a
/// MAPQ estimated from the read's own seed support, or an unmapped
/// placeholder. Shared by the CLI and the thread-invariance tests so both
/// produce identical bytes.
pub fn sam_record_for(id: &str, read: &DnaSeq, outcome: &ReadOutcome) -> SamRecord {
    match &outcome.mapping {
        Some(mapping) => {
            let mapq = mapq_estimate(
                outcome.stats.regions_aligned,
                mapping.alignment.edit_distance,
                read.len(),
            );
            SamRecord::from_mapping(id, "graph", read, mapping, mapq)
        }
        None => SamRecord::unmapped(id, read),
    }
}

/// Renders one engine outcome as a GAF record, or `None` for unmapped
/// reads (GAF has no unmapped-record convention).
///
/// # Errors
///
/// Propagates [`FormatError`] when the mapping's graph path is
/// inconsistent with `graph` (which would indicate a mapper bug).
pub fn gaf_record_for(
    id: &str,
    read: &DnaSeq,
    graph: &GenomeGraph,
    outcome: &ReadOutcome,
) -> Result<Option<GafRecord>, FormatError> {
    let Some(mapping) = &outcome.mapping else {
        return Ok(None);
    };
    let mapq = mapq_estimate(
        outcome.stats.regions_aligned,
        mapping.alignment.edit_distance,
        read.len(),
    );
    GafRecord::from_char_path(
        id,
        read.len(),
        graph,
        &mapping.path,
        &mapping.alignment.cigar,
        mapping.alignment.edit_distance,
        mapq,
    )
    .map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SegramConfig, SegramMapper};
    use segram_sim::DatasetConfig;

    #[test]
    fn mapper_facade_equals_direct_pipeline() {
        let dataset = DatasetConfig::tiny(21).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let pipeline = mapper.pipeline();
        for read in dataset.reads.iter().take(5) {
            let (a, _) = mapper.map_read(&read.seq);
            let (b, _) = pipeline.map_read(&read.seq);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn renderers_cover_mapped_and_unmapped_outcomes() {
        let dataset = DatasetConfig::tiny(23).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(1));
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let (outcomes, _) = engine.map_batch(&reads);
        let mapped = outcomes
            .iter()
            .position(|o| o.mapping.is_some())
            .expect("some read maps");
        let sam = sam_record_for("r", &reads[mapped], &outcomes[mapped]);
        assert!(sam.is_mapped());
        let gaf = gaf_record_for("r", &reads[mapped], mapper.graph(), &outcomes[mapped]).unwrap();
        assert!(gaf.is_some());

        let unmapped = ReadOutcome {
            mapping: None,
            strand: Strand::Forward,
            stats: MapStats::default(),
        };
        assert!(!sam_record_for("r", &reads[0], &unmapped).is_mapped());
        assert!(gaf_record_for("r", &reads[0], mapper.graph(), &unmapped)
            .unwrap()
            .is_none());
    }
}
