//! BitAlign: the paper's bitvector-based sequence-to-graph alignment
//! algorithm (Section 7, Algorithm 1), including the traceback that
//! regenerates intermediate bitvectors from the stored `R[d]` vectors.
//!
//! The semantics are *semi-global*: the query read (pattern) is consumed in
//! full, while the alignment may start at any character of the linearized
//! subgraph (free start) or at a fixed anchor, and ends wherever the
//! pattern runs out (free end). That is exactly what the mapping pipeline
//! needs: MinSeed supplies a subgraph window guaranteed (up to the error
//! rate) to contain the read.

use segram_graph::{Base, DnaSeq, GraphPos, LinearizedGraph};

use crate::{AlignError, Bitvector, Cigar, CigarOp, PatternBitmasks};

/// Where an alignment is allowed to start within the subgraph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StartMode {
    /// The alignment may start at any character (seed-extension mode).
    #[default]
    Free,
    /// The alignment must start exactly at the given character index.
    Anchored(usize),
}

/// The order in which traceback prefers edit operations when several can
/// explain a 0 bit — GenASM/BitAlign's "user-supplied alignment scoring
/// function" (Section 7). Exact matches are always taken first (cost 0);
/// the preference orders the three unit-cost edits.
///
/// All orders yield the same (optimal) edit distance; they differ only in
/// which co-optimal CIGAR is reported — e.g. indel-averse scoring prefers
/// substitutions, while gap-affine-style post-processing may prefer
/// grouped deletions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EditPreference {
    /// Substitution, then deletion, then insertion (default; mismatch-
    /// tolerant, indel-averse — the common mapper convention).
    #[default]
    SubDelIns,
    /// Substitution, then insertion, then deletion.
    SubInsDel,
    /// Deletion, then substitution, then insertion.
    DelSubIns,
    /// Insertion, then substitution, then deletion.
    InsSubDel,
}

impl EditPreference {
    /// The three unit-cost ops in preference order.
    pub fn order(self) -> [CigarOp; 3] {
        match self {
            EditPreference::SubDelIns => [CigarOp::Subst, CigarOp::Del, CigarOp::Ins],
            EditPreference::SubInsDel => [CigarOp::Subst, CigarOp::Ins, CigarOp::Del],
            EditPreference::DelSubIns => [CigarOp::Del, CigarOp::Subst, CigarOp::Ins],
            EditPreference::InsSubDel => [CigarOp::Ins, CigarOp::Subst, CigarOp::Del],
        }
    }
}

/// A completed alignment between a read and a (sub)graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alignment {
    /// Minimum number of edits (substitutions + insertions + deletions).
    pub edit_distance: u32,
    /// The traceback output.
    pub cigar: Cigar,
    /// Index (within the linearized subgraph) of the first consumed
    /// reference character. Equal to the anchor in anchored mode. When the
    /// alignment consumes no reference characters (all-insertion CIGAR),
    /// this is the candidate start position that was evaluated.
    pub text_start: usize,
    /// One past the index of the last consumed reference character.
    pub text_end: usize,
    /// The reference characters consumed, in path order (indices into the
    /// linearized subgraph). Non-contiguous jumps witness hops.
    pub path: Vec<u32>,
}

impl Alignment {
    /// Maps the consumed path back to graph positions via the
    /// linearization's provenance.
    pub fn graph_path(&self, lin: &LinearizedGraph) -> Vec<GraphPos> {
        self.path.iter().map(|&i| lin.origin(i as usize)).collect()
    }

    /// The reference fragment this alignment consumed.
    pub fn ref_fragment(&self, lin: &LinearizedGraph) -> Vec<Base> {
        self.path.iter().map(|&i| lin.base(i as usize)).collect()
    }
}

/// Configuration of a [`BitAligner`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitAlignConfig {
    /// Edit-distance threshold `k` (Algorithm 1 input). Capped at the
    /// pattern length internally.
    pub k: u32,
    /// Start-position mode.
    pub start: StartMode,
    /// Traceback preference among co-optimal edit operations.
    pub preference: EditPreference,
}

impl Default for BitAlignConfig {
    fn default() -> Self {
        Self {
            k: 0,
            start: StartMode::Free,
            preference: EditPreference::default(),
        }
    }
}

impl BitAlignConfig {
    /// Convenience constructor for free-start alignment with threshold `k`.
    pub fn with_k(k: u32) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }
}

/// Reference to a successor during traceback: a real character or the
/// virtual sink (pattern may run past the end of the subgraph only via
/// insertions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Succ {
    Char(u32),
    Virtual,
}

/// The BitAlign aligner: owns the `allR[n][d]` bitvector store for one
/// (subgraph, read) pair, exactly as the hardware's bitvector scratchpad
/// does (Section 8.2).
///
/// # Examples
///
/// ```
/// use segram_align::{BitAlignConfig, BitAligner};
/// use segram_graph::{build_graph, Base, LinearizedGraph, Variant};
///
/// let built = build_graph(
///     &"ACGTACGT".parse()?,
///     [Variant::snp(3, Base::G)].into_iter().collect(),
/// )?;
/// let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars())?;
/// // A read spelling the ALT path aligns with 0 edits.
/// let read = "ACGGACGT".parse()?;
/// let alignment = BitAligner::new(&lin, &read, BitAlignConfig::with_k(2))?
///     .align()?;
/// assert_eq!(alignment.edit_distance, 0);
/// assert_eq!(alignment.cigar.to_string(), "8=");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BitAligner<'a> {
    lin: &'a LinearizedGraph,
    masks: PatternBitmasks,
    k: usize,
    start: StartMode,
    preference: EditPreference,
    /// `allR[i * (k+1) + d]`, stored for all text iterations (Algorithm 1
    /// line 5) so traceback can regenerate the intermediate bitvectors.
    all_r: Vec<Bitvector>,
    /// Virtual-sink vectors `V[d] = ones << d`.
    sink: Vec<Bitvector>,
    computed: bool,
}

impl<'a> BitAligner<'a> {
    /// Prepares an aligner for one (subgraph, read) pair.
    ///
    /// # Errors
    ///
    /// Returns an error when the pattern or text is empty, or the anchor is
    /// out of bounds.
    pub fn new(
        lin: &'a LinearizedGraph,
        pattern: &DnaSeq,
        config: BitAlignConfig,
    ) -> Result<Self, AlignError> {
        Self::from_bases(lin, pattern.as_slice(), config)
    }

    /// Prepares an aligner from a base slice.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::new`].
    pub fn from_bases(
        lin: &'a LinearizedGraph,
        pattern: &[Base],
        config: BitAlignConfig,
    ) -> Result<Self, AlignError> {
        if pattern.is_empty() {
            return Err(AlignError::EmptyPattern);
        }
        if lin.is_empty() {
            return Err(AlignError::EmptyText);
        }
        if let StartMode::Anchored(a) = config.start {
            if a >= lin.len() {
                return Err(AlignError::AnchorOutOfBounds {
                    anchor: a,
                    text_len: lin.len(),
                });
            }
        }
        let m = pattern.len();
        let k = (config.k as usize).min(m);
        let masks = PatternBitmasks::from_bases(pattern);
        let sink = (0..=k).map(|d| Bitvector::ones_shifted(m, d)).collect();
        Ok(Self {
            lin,
            masks,
            k,
            start: config.start,
            preference: config.preference,
            all_r: Vec::new(),
            sink,
            computed: false,
        })
    }

    /// Pattern length.
    pub fn pattern_len(&self) -> usize {
        self.masks.len()
    }

    /// Effective threshold (capped at the pattern length).
    pub fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn r(&self, i: usize, d: usize) -> &Bitvector {
        &self.all_r[i * (self.k + 1) + d]
    }

    /// The status bitvector of a successor, routing sink references to the
    /// virtual vectors.
    #[inline]
    fn succ_r(&self, s: Succ, d: usize) -> &Bitvector {
        match s {
            Succ::Char(j) => self.r(j as usize, d),
            Succ::Virtual => &self.sink[d],
        }
    }

    fn successors(&self, i: usize) -> Vec<Succ> {
        let list = self.lin.successors(i);
        if list.is_empty() {
            vec![Succ::Virtual]
        } else {
            list.iter().map(|&j| Succ::Char(j)).collect()
        }
    }

    /// Runs the bitvector-generation phase (Algorithm 1 lines 5–24),
    /// filling the `allR` store. Idempotent.
    pub fn compute(&mut self) {
        if self.computed {
            return;
        }
        let n = self.lin.len();
        let m = self.masks.len();
        let kk = self.k + 1;
        self.all_r = vec![Bitvector::all_ones(m); n * kk];
        let mut tmp = Bitvector::all_ones(m);
        let mut acc = Bitvector::all_ones(m);
        for i in (0..n).rev() {
            let cur_pm = self.masks.mask(self.lin.base(i)).clone();
            let succs = self.successors(i);
            // d = 0: exact match (lines 11-14).
            acc.copy_from(&Bitvector::all_ones(m));
            for &s in &succs {
                tmp.shl1_from(self.succ_r(s, 0));
                tmp.or_assign(&cur_pm);
                acc.and_assign(&tmp);
            }
            self.all_r[i * kk].copy_from(&acc);
            // d = 1..k (lines 16-24).
            for d in 1..kk {
                // Insertion: does not consume a reference character.
                acc.shl1_from(&self.all_r[i * kk + d - 1]);
                for &s in &succs {
                    // Deletion: successor's R[d-1] unshifted.
                    acc.and_assign(self.succ_r(s, d - 1));
                    // Substitution: successor's R[d-1] shifted.
                    tmp.shl1_from(self.succ_r(s, d - 1));
                    acc.and_assign(&tmp);
                    // Match: successor's R[d] shifted, OR pattern mask.
                    tmp.shl1_from(self.succ_r(s, d));
                    tmp.or_assign(&cur_pm);
                    acc.and_assign(&tmp);
                }
                self.all_r[i * kk + d].copy_from(&acc);
            }
        }
        self.computed = true;
    }

    /// Returns the minimum edit distance and its start position, without
    /// traceback, or `None` when the threshold is exceeded.
    ///
    /// The scan honours the configured [`StartMode`].
    pub fn edit_distance(&mut self) -> Option<(u32, usize)> {
        self.compute();
        let m = self.masks.len();
        let candidates: Vec<usize> = match self.start {
            StartMode::Free => (0..self.lin.len()).collect(),
            StartMode::Anchored(a) => vec![a],
        };
        let mut best: Option<(u32, usize)> = None;
        for d in 0..=self.k {
            for &i in &candidates {
                if !self.r(i, d).bit(m - 1) {
                    best = Some((d as u32, i));
                    break;
                }
            }
            if best.is_some() {
                break;
            }
        }
        best
    }

    /// Runs the full pipeline: bitvector generation, distance extraction,
    /// and traceback (Algorithm 1 line 25).
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::ExceedsThreshold`] when no alignment with at
    /// most `k` edits exists under the configured start mode.
    pub fn align(&mut self) -> Result<Alignment, AlignError> {
        let (dist, start) = self
            .edit_distance()
            .ok_or(AlignError::ExceedsThreshold { k: self.k as u32 })?;
        Ok(self.traceback(start, dist as usize))
    }

    /// Traceback from a start character with a known distance budget.
    ///
    /// Regenerates the intermediate match/substitution/deletion/insertion
    /// bitvectors on demand from the stored `R[d]` vectors, as the paper's
    /// hardware does ("we store only k+1 bitvectors per node ... from which
    /// the 3(k+1) bitvectors per edge can be regenerated on-demand during
    /// traceback", Section 7).
    fn traceback(&mut self, start: usize, dist: usize) -> Alignment {
        self.compute();
        let m = self.masks.len();
        let mut cigar = Cigar::new();
        let mut path: Vec<u32> = Vec::new();
        let mut cur = Succ::Char(start as u32);
        let mut p = m as isize - 1; // suffix bit under consideration
        let mut d = dist;

        // Helper: active-low bit read with the implicit 0 shifted in at p=-1.
        let bit_is_zero = |this: &Self, s: Succ, d: usize, p: isize| -> bool {
            if p < 0 {
                return true;
            }
            !this.succ_r(s, d).bit(p as usize)
        };

        while p >= 0 {
            let i = match cur {
                Succ::Char(i) => i as usize,
                Succ::Virtual => {
                    // Only insertions remain past the end of the subgraph.
                    cigar.push_run(CigarOp::Ins, p as u32 + 1);
                    d -= p as usize + 1;
                    p = -1;
                    continue;
                }
            };
            let pm = self.masks.mask(self.lin.base(i));
            let succs = self.successors(i);
            // 1) Exact match: pattern head equals text[i] and some successor
            //    continues the remaining suffix within the same budget.
            let matched =
                !pm.bit(p as usize) && succs.iter().any(|&s| bit_is_zero(self, s, d, p - 1));
            if matched {
                let next = *succs
                    .iter()
                    .find(|&&s| bit_is_zero(self, s, d, p - 1))
                    .expect("checked above");
                cigar.push(CigarOp::Match);
                path.push(i as u32);
                cur = next;
                p -= 1;
                continue;
            }
            debug_assert!(d > 0, "stuck traceback: R bit was 0 but no op applies");
            // 2) Unit-cost edits, in the configured preference order.
            let mut applied = false;
            for op in self.preference.order() {
                match op {
                    CigarOp::Subst => {
                        if let Some(&next) =
                            succs.iter().find(|&&s| bit_is_zero(self, s, d - 1, p - 1))
                        {
                            cigar.push(CigarOp::Subst);
                            path.push(i as u32);
                            cur = next;
                            p -= 1;
                            d -= 1;
                            applied = true;
                        }
                    }
                    CigarOp::Del => {
                        // Consumes the reference character only.
                        if let Some(&next) = succs.iter().find(|&&s| bit_is_zero(self, s, d - 1, p))
                        {
                            cigar.push(CigarOp::Del);
                            path.push(i as u32);
                            cur = next;
                            d -= 1;
                            applied = true;
                        }
                    }
                    CigarOp::Ins => {
                        // Consumes the pattern character only.
                        if bit_is_zero(self, Succ::Char(i as u32), d - 1, p - 1) {
                            cigar.push(CigarOp::Ins);
                            p -= 1;
                            d -= 1;
                            applied = true;
                        }
                    }
                    CigarOp::Match => unreachable!("matches are handled above"),
                }
                if applied {
                    break;
                }
            }
            debug_assert!(applied, "stuck traceback: no edit operation applies");
        }
        let text_end = path.last().map_or(start, |&last| last as usize + 1);
        Alignment {
            edit_distance: cigar.edit_count(),
            cigar,
            text_start: path.first().map_or(start, |&f| f as usize),
            text_end,
            path,
        }
    }

    /// Read-only access to a stored status bitvector (for tests and the
    /// hardware model). `None` until [`Self::compute`] has run or when the
    /// indices are out of range.
    pub fn status_bitvector(&self, i: usize, d: usize) -> Option<&Bitvector> {
        if !self.computed || i >= self.lin.len() || d > self.k {
            return None;
        }
        Some(self.r(i, d))
    }
}

/// One-shot convenience: align `pattern` against `lin` with threshold `k`
/// and a free start.
///
/// # Errors
///
/// See [`BitAligner::align`].
///
/// # Examples
///
/// ```
/// use segram_align::bitalign;
/// use segram_graph::LinearizedGraph;
///
/// let lin = LinearizedGraph::from_linear_seq(&"ACGTACGT".parse()?);
/// let alignment = bitalign(&lin, &"GTAC".parse()?, 1)?;
/// assert_eq!(alignment.edit_distance, 0);
/// assert_eq!(alignment.text_start, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bitalign(lin: &LinearizedGraph, pattern: &DnaSeq, k: u32) -> Result<Alignment, AlignError> {
    BitAligner::new(lin, pattern, BitAlignConfig::with_k(k))?.align()
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_graph::{build_graph, Variant};

    fn linear(text: &str) -> LinearizedGraph {
        LinearizedGraph::from_linear_seq(&text.parse().unwrap())
    }

    fn align_str(text: &str, pattern: &str, k: u32) -> Result<Alignment, AlignError> {
        bitalign(&linear(text), &pattern.parse().unwrap(), k)
    }

    #[test]
    fn exact_match_anywhere() {
        let a = align_str("ACGTACGT", "GTAC", 0).unwrap();
        assert_eq!(a.edit_distance, 0);
        assert_eq!(a.cigar.to_string(), "4=");
        assert_eq!(a.text_start, 2);
        assert_eq!(a.text_end, 6);
        assert_eq!(a.path, vec![2, 3, 4, 5]);
    }

    #[test]
    fn single_substitution() {
        let a = align_str("AAAAACGTAAAA", "ACTT", 1).unwrap();
        assert_eq!(a.edit_distance, 1);
        assert_eq!(a.cigar.edit_count(), 1);
    }

    #[test]
    fn single_insertion_in_read() {
        // read has an extra T relative to the text
        let a = align_str("AACCGG", "AACTCGG", 1).unwrap();
        assert_eq!(a.edit_distance, 1);
        assert_eq!(a.cigar.read_len(), 7);
        assert_eq!(a.cigar.ref_len(), 6);
    }

    #[test]
    fn single_deletion_in_read() {
        let a = align_str("AACTCGG", "AACCGG", 1).unwrap();
        assert_eq!(a.edit_distance, 1);
        assert_eq!(a.cigar.read_len(), 6);
        assert_eq!(a.cigar.ref_len(), 7);
    }

    #[test]
    fn threshold_is_respected() {
        let err = align_str("AAAA", "TTTT", 2).unwrap_err();
        assert_eq!(err, AlignError::ExceedsThreshold { k: 2 });
        let a = align_str("AAAA", "TTTT", 4).unwrap();
        assert_eq!(a.edit_distance, 4);
    }

    #[test]
    fn anchored_start_changes_answer() {
        let lin = linear("ACGTACGT");
        let pattern: DnaSeq = "ACGT".parse().unwrap();
        // Free start: 0 edits at position 0 (or 4).
        let free = bitalign(&lin, &pattern, 2).unwrap();
        assert_eq!(free.edit_distance, 0);
        // Anchored at 1: best alignment of "ACGT" starting exactly at 'C'
        // needs edits.
        let mut anchored = BitAligner::new(
            &lin,
            &pattern,
            BitAlignConfig {
                k: 2,
                start: StartMode::Anchored(1),
                ..BitAlignConfig::default()
            },
        )
        .unwrap();
        let a = anchored.align().unwrap();
        assert!(a.edit_distance >= 1);
        assert_eq!(a.text_start, 1);
    }

    #[test]
    fn anchor_out_of_bounds_rejected() {
        let lin = linear("ACGT");
        let err = BitAligner::new(
            &lin,
            &"AC".parse().unwrap(),
            BitAlignConfig {
                k: 0,
                start: StartMode::Anchored(4),
                ..BitAlignConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, AlignError::AnchorOutOfBounds { .. }));
    }

    #[test]
    fn snp_graph_aligns_both_alleles_exactly() {
        let built = build_graph(
            &"ACGTACGT".parse().unwrap(),
            [Variant::snp(3, segram_graph::Base::G)]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
        for allele in ["ACGTACGT", "ACGGACGT"] {
            let a = bitalign(&lin, &allele.parse().unwrap(), 1).unwrap();
            assert_eq!(a.edit_distance, 0, "allele {allele}");
            assert_eq!(a.cigar.to_string(), "8=");
        }
        // A read matching neither allele needs one substitution.
        let a = bitalign(&lin, &"ACGCACGT".parse().unwrap(), 1).unwrap();
        assert_eq!(a.edit_distance, 1);
    }

    #[test]
    fn deletion_graph_uses_skip_edge() {
        let built = build_graph(
            &"AACCCCTT".parse().unwrap(),
            [Variant::deletion(2, 4)].into_iter().collect(),
        )
        .unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
        let a = bitalign(&lin, &"AATT".parse().unwrap(), 0).unwrap();
        assert_eq!(a.edit_distance, 0);
        // The path must jump over the deleted CCCC characters.
        assert_eq!(a.path, vec![0, 1, 6, 7]);
    }

    #[test]
    fn insertion_graph_offers_both_paths() {
        let built = build_graph(
            &"AATT".parse().unwrap(),
            [Variant::insertion(2, "GGG".parse().unwrap())]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
        for read in ["AATT", "AAGGGTT"] {
            let a = bitalign(&lin, &read.parse().unwrap(), 0).unwrap();
            assert_eq!(a.edit_distance, 0, "read {read}");
        }
    }

    #[test]
    fn traceback_cigar_replays_against_path() {
        let built = build_graph(
            &"ACGTACGTACGT".parse().unwrap(),
            [
                Variant::snp(3, segram_graph::Base::A),
                Variant::deletion(7, 2),
            ]
            .into_iter()
            .collect(),
        )
        .unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
        let read: DnaSeq = "CGAACGCG".parse().unwrap();
        let a = bitalign(&lin, &read, 3).unwrap();
        let fragment = a.ref_fragment(&lin);
        let replayed = a
            .cigar
            .replay(&fragment, read.as_slice())
            .expect("cigar must be consistent with the chosen path");
        assert_eq!(replayed, read.as_slice());
        assert_eq!(a.cigar.edit_count(), a.edit_distance);
    }

    #[test]
    fn path_respects_graph_successors() {
        let built = build_graph(
            &"ACGTACGT".parse().unwrap(),
            [Variant::snp(3, segram_graph::Base::G)]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
        let a = bitalign(&lin, &"ACGGACGT".parse().unwrap(), 2).unwrap();
        for pair in a.path.windows(2) {
            assert!(
                lin.successors(pair[0] as usize).contains(&pair[1]),
                "path step {} -> {} is not an edge",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn read_longer_than_text_uses_virtual_insertions() {
        // Text has only 4 chars; read has 6: at least 2 insertions needed.
        let a = align_str("ACGT", "ACGTAA", 2).unwrap();
        assert_eq!(a.edit_distance, 2);
        assert_eq!(a.cigar.read_len(), 6);
    }

    #[test]
    fn empty_inputs_rejected() {
        let lin = linear("ACGT");
        assert_eq!(
            BitAligner::from_bases(&lin, &[], BitAlignConfig::default()).unwrap_err(),
            AlignError::EmptyPattern
        );
    }

    #[test]
    fn k_zero_finds_only_exact() {
        assert!(align_str("ACGTACGT", "ACGA", 0).is_err());
        assert_eq!(align_str("ACGTACGT", "ACGT", 0).unwrap().edit_distance, 0);
    }

    #[test]
    fn edit_preferences_share_the_distance_and_replay() {
        // A read with an ambiguous optimum: 1 edit explainable as either
        // an indel pair or substitutions depending on preference.
        let lin = linear("AACCGGTTAACC");
        let read: DnaSeq = "ACCGTTAAC".parse().unwrap();
        let mut cigars = std::collections::HashSet::new();
        let mut distances = std::collections::HashSet::new();
        for preference in [
            EditPreference::SubDelIns,
            EditPreference::SubInsDel,
            EditPreference::DelSubIns,
            EditPreference::InsSubDel,
        ] {
            let mut aligner = BitAligner::new(
                &lin,
                &read,
                BitAlignConfig {
                    k: 4,
                    start: StartMode::Free,
                    preference,
                },
            )
            .unwrap();
            let a = aligner.align().unwrap();
            distances.insert(a.edit_distance);
            cigars.insert(a.cigar.to_string());
            // Every preference's traceback must replay.
            let fragment = a.ref_fragment(&lin);
            assert!(
                a.cigar.replay(&fragment, read.as_slice()).is_some(),
                "{preference:?}: {}",
                a.cigar
            );
            assert_eq!(a.cigar.edit_count(), a.edit_distance);
        }
        assert_eq!(distances.len(), 1, "all preferences are co-optimal");
    }

    #[test]
    fn status_bitvectors_follow_suffix_semantics() {
        // Text "ACGT", pattern "GT": after compute, bit 1 of R[2][0] must be
        // 0 (suffix "GT" matches starting at text index 2).
        let lin = linear("ACGT");
        let mut aligner =
            BitAligner::new(&lin, &"GT".parse().unwrap(), BitAlignConfig::with_k(0)).unwrap();
        aligner.compute();
        let r = aligner.status_bitvector(2, 0).unwrap();
        assert!(!r.bit(1));
        let r0 = aligner.status_bitvector(0, 0).unwrap();
        assert!(r0.bit(1));
    }
}
