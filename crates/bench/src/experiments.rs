//! Shared measurement harness for the end-to-end throughput experiments
//! (Figures 15 and 16, and the HGA comparison).

use segram_core::{
    measure_workload, BaselineMapper, SegramConfig, SegramMapper, StepTimes, WorkloadMeasurement,
};
use segram_hw::SegramSystem;
use segram_sim::{Dataset, SimulatedRead};
use segram_testkit::Serialize;

/// Measured throughput of one mapper over one dataset.
#[derive(Clone, Debug, Serialize)]
pub struct MapperResult {
    /// Mapper name.
    pub name: String,
    /// Reads mapped per second (single thread for software; whole system
    /// for the SeGraM model).
    pub reads_per_s: f64,
    /// Fraction of time spent in the alignment step (software only).
    pub alignment_fraction: f64,
    /// Fraction of reads that produced a mapping.
    pub mapped_fraction: f64,
}

/// Runs a software baseline over the reads, single-threaded wall clock.
pub fn run_software(mapper: &dyn BaselineMapper, reads: &[SimulatedRead]) -> MapperResult {
    let start = std::time::Instant::now();
    let mut times = StepTimes::default();
    let mut mapped = 0usize;
    for read in reads {
        let (m, t) = mapper.map_read(&read.seq);
        times.merge(&t);
        if m.is_some() {
            mapped += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    MapperResult {
        name: mapper.name().to_owned(),
        reads_per_s: reads.len() as f64 / secs,
        alignment_fraction: times.alignment_fraction(),
        mapped_fraction: mapped as f64 / reads.len() as f64,
    }
}

/// SeGraM: measures the workload with the software pipeline, then projects
/// system throughput with the hardware model.
pub struct SegramProjection {
    /// The measured workload + accuracy.
    pub measurement: WorkloadMeasurement,
    /// Modeled throughput of the full 32-accelerator system.
    pub system_reads_per_s: f64,
    /// Modeled throughput of a single accelerator.
    pub per_accelerator_reads_per_s: f64,
    /// Modeled per-seed ("single SeGraM execution") latency in µs.
    pub per_seed_latency_us: f64,
}

/// Projects SeGraM's hardware throughput for a dataset.
///
/// The measurement mapper aligns only a handful of regions per read (the
/// seeding statistics that parameterize the model — minimizer and seed
/// counts — are recorded *before* truncation), keeping measurement time
/// bounded on repeat-heavy inputs.
pub fn run_segram_model(dataset: &Dataset, config: SegramConfig) -> SegramProjection {
    let mut measure_config = config;
    measure_config.max_regions = 4;
    let mapper = SegramMapper::new(dataset.graph().clone(), measure_config);
    let measurement = measure_workload(&mapper, &dataset.reads, 200);
    let system = SegramSystem::default();
    let throughput = system.throughput_reads_per_s(&measurement.workload);
    SegramProjection {
        per_accelerator_reads_per_s: throughput / system.hbm.total_channels() as f64,
        system_reads_per_s: throughput,
        per_seed_latency_us: system.per_seed_latency_us(&measurement.workload),
        measurement,
    }
}

/// One figure row: dataset name + all mappers' throughput.
#[derive(Clone, Debug, Serialize)]
pub struct FigureRow {
    /// Dataset name (paper nomenclature).
    pub dataset: String,
    /// Software baselines.
    pub software: Vec<MapperResult>,
    /// SeGraM modeled system throughput.
    pub segram_system_reads_per_s: f64,
    /// SeGraM modeled per-accelerator throughput.
    pub segram_per_accelerator_reads_per_s: f64,
    /// Per-seed latency (µs).
    pub segram_per_seed_latency_us: f64,
    /// SeGraM mapping accuracy against simulation truth.
    pub segram_accuracy: f64,
}

/// Runs one throughput figure row: both software baselines + the model.
pub fn figure_row(dataset: &Dataset, config: SegramConfig) -> FigureRow {
    use segram_core::{GraphAlignerLike, VgLike};
    let ga = GraphAlignerLike::new(dataset.graph().clone(), config);
    let vg = VgLike::new(dataset.graph().clone(), config);
    let software = vec![
        run_software(&ga, &dataset.reads),
        run_software(&vg, &dataset.reads),
    ];
    let projection = run_segram_model(dataset, config);
    FigureRow {
        dataset: dataset.name.clone(),
        software,
        segram_system_reads_per_s: projection.system_reads_per_s,
        segram_per_accelerator_reads_per_s: projection.per_accelerator_reads_per_s,
        segram_per_seed_latency_us: projection.per_seed_latency_us,
        segram_accuracy: projection.measurement.accuracy,
    }
}

/// Pretty-prints a set of figure rows with speedup columns, mirroring the
/// paper's figure annotations.
pub fn print_rows(rows: &[FigureRow], power: &PowerComparison) {
    println!(
        "  {:<20} {:>14} {:>14} {:>16} {:>12} {:>12}",
        "dataset", "GA-like r/s", "vg-like r/s", "SeGraM r/s(32)", "vs GA", "vs vg"
    );
    for row in rows {
        let ga = row.software[0].reads_per_s;
        let vg = row.software[1].reads_per_s;
        println!(
            "  {:<20} {:>14.1} {:>14.1} {:>16.1} {:>12} {:>12}",
            row.dataset,
            ga,
            vg,
            row.segram_system_reads_per_s,
            crate::ratio(row.segram_system_reads_per_s, ga),
            crate::ratio(row.segram_system_reads_per_s, vg),
        );
    }
    println!(
        "\n  power: SeGraM (model) {:.1} W vs GraphAligner {:.0} W ({}) and vg {:.0} W ({})",
        power.segram_w,
        power.graphaligner_w,
        crate::ratio(power.graphaligner_w, power.segram_w),
        power.vg_w,
        crate::ratio(power.vg_w, power.segram_w),
    );
}

/// Power comparison constants: SeGraM from the Table 1 model; the CPU
/// baselines from the paper's own wall-power measurements (we cannot meter
/// a Xeon here — documented substitution).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PowerComparison {
    /// SeGraM system power (model).
    pub segram_w: f64,
    /// GraphAligner wall power (paper measurement).
    pub graphaligner_w: f64,
    /// vg wall power (paper measurement).
    pub vg_w: f64,
}

impl PowerComparison {
    /// Long-read figures (paper: 115 W / 124 W).
    pub fn long_reads() -> Self {
        Self {
            segram_w: segram_model_power_w(),
            graphaligner_w: 115.0,
            vg_w: 124.0,
        }
    }

    /// Short-read figures (paper: 85 W / 91 W).
    pub fn short_reads() -> Self {
        Self {
            segram_w: segram_model_power_w(),
            graphaligner_w: 85.0,
            vg_w: 91.0,
        }
    }
}

/// The modeled SeGraM system power (Table 1 totals).
pub fn segram_model_power_w() -> f64 {
    segram_hw::system_cost(32, segram_hw::HbmConfig::default().total_dynamic_power_w())
        .total_power_w
}
