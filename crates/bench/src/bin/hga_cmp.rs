//! **§11.2 GPU comparison**: SeGraM vs HGA on the BRCA1 graph with the
//! R1 (128 bp), R2 (1 kbp), R3 (8 kbp) read sets.
//!
//! Paper result: SeGraM provides 523× / 85× / 17× higher throughput than
//! HGA — the speedup *shrinks as reads get longer*, because HGA's
//! whole-graph processing amortizes better over long reads.
//!
//! Reproduction: HGA-like is whole-graph DP (no seeding, score only — HGA
//! "does not support traceback and reports only the alignment score"),
//! measured as software; SeGraM is the hardware model driven by measured
//! seeding workloads.

use segram_bench::experiments::run_software;
use segram_bench::{header, ratio, write_results};
use segram_core::{measure_workload, HgaLike, SegramConfig, SegramMapper};
use segram_hw::SegramSystem;
use segram_testkit::Serialize;

#[derive(Serialize)]
struct HgaRow {
    read_set: String,
    read_len: usize,
    reads_measured: usize,
    hga_reads_per_s: f64,
    segram_reads_per_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct HgaCmp {
    rows: Vec<HgaRow>,
    paper_speedups: [f64; 3],
}

fn main() {
    header("SeGraM vs HGA (BRCA1-like graph, Section 11.2)");
    // Scale 2048 gives 136 / 17 / 2 reads: enough to time whole-graph DP.
    let dataset = segram_sim::brca1_like(2048, 191);
    let graph = dataset.built.graph.clone();
    println!(
        "  graph: {} nodes, {} edges, {} chars",
        graph.node_count(),
        graph.edge_count(),
        graph.total_chars()
    );
    let hga = HgaLike::new(graph.clone());
    let system = SegramSystem::default();

    println!(
        "\n  {:<6} {:>8} {:>8} {:>14} {:>16} {:>10}",
        "set", "readlen", "reads", "HGA-like r/s", "SeGraM r/s(32)", "speedup"
    );
    let mut rows = Vec::new();
    let sets: [(&str, &[segram_sim::SimulatedRead]); 3] = [
        ("R1", &dataset.r1),
        ("R2", &dataset.r2),
        ("R3", &dataset.r3),
    ];
    for (name, reads) in sets {
        let cap = reads.len().min(20);
        let reads = &reads[..cap];
        let hga_result = run_software(&hga, reads);
        let config = if reads[0].seq.len() > 500 {
            SegramConfig::long_reads(0.02)
        } else {
            SegramConfig::short_reads()
        };
        let mut measure_config = config;
        measure_config.max_regions = 4;
        let mapper = SegramMapper::new(graph.clone(), measure_config);
        let measurement = measure_workload(&mapper, reads, 300);
        let segram = system.throughput_reads_per_s(&measurement.workload);
        let row = HgaRow {
            read_set: name.to_owned(),
            read_len: reads[0].seq.len(),
            reads_measured: reads.len(),
            hga_reads_per_s: hga_result.reads_per_s,
            segram_reads_per_s: segram,
            speedup: segram / hga_result.reads_per_s,
        };
        println!(
            "  {:<6} {:>8} {:>8} {:>14.2} {:>16.1} {:>9.0}x",
            row.read_set,
            row.read_len,
            row.reads_measured,
            row.hga_reads_per_s,
            row.segram_reads_per_s,
            row.speedup
        );
        rows.push(row);
    }

    header("Shape checks against the paper");
    println!("  paper speedups: 523x (R1) / 85x (R2) / 17x (R3) — decreasing with read length");
    let decreasing = rows.windows(2).all(|w| w[0].speedup >= w[1].speedup);
    println!(
        "  measured speedups decrease with read length: {}",
        if decreasing {
            "yes"
        } else {
            "no (see EXPERIMENTS.md)"
        }
    );
    println!(
        "  measured: {} / {} / {}",
        ratio(rows[0].speedup, 1.0),
        ratio(rows[1].speedup, 1.0),
        ratio(rows[2].speedup, 1.0)
    );

    write_results(
        "hga_cmp",
        &HgaCmp {
            rows,
            paper_speedups: [523.0, 85.0, 17.0],
        },
    );
}
