//! # segram-hw
//!
//! Hardware substrate model for the SeGraM reproduction. The paper drives
//! its performance numbers with "an in-house cycle-accurate simulator and a
//! spreadsheet-based analytical model parameterized with the synthesis and
//! memory estimates" (Section 10); this crate rebuilds that layer:
//!
//! * [`HbmConfig`] — the 4 × HBM2E memory subsystem (one channel per
//!   accelerator, Section 8.3);
//! * [`MinSeedScratchpads`] / [`BitAlignStorage`] — the paper's exact
//!   scratchpad sizing (6/40/4 kB and 24/128/12 kB, Sections 8.1–8.2);
//! * [`BitAlignHwConfig`] — the systolic-array cycle model calibrated to
//!   the published 272/169 cycles-per-window figures (Section 11.3);
//! * [`MinSeedHwConfig`] — the seeding accelerator's compute/memory time;
//! * [`SegramAccelerator`] / [`SegramSystem`] — the pipelined accelerator
//!   and the 32-accelerator system throughput model;
//! * [`AcceleratorCost`] / [`system_cost`] — the Table 1 area/power model.
//!
//! ## Example
//!
//! ```
//! use segram_hw::{SeedWorkload, SegramSystem};
//!
//! let system = SegramSystem::default();
//! let workload = SeedWorkload {
//!     read_len: 10_000,
//!     minimizers_per_read: 1200.0,
//!     surviving_minimizers: 1100.0,
//!     seeds_per_read: 3500.0,
//!     avg_region_len: 11_000.0,
//! };
//! let us = system.per_seed_latency_us(&workload);
//! assert!((30.0..45.0).contains(&us)); // paper: 35.9 µs per execution
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitalign_model;
mod cache;
mod cost;
mod hbm;
mod minseed_model;
mod pipeline_sim;
mod scratchpad;
mod system;

pub use bitalign_model::BitAlignHwConfig;
pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use cost::{
    system_cost, AcceleratorCost, Cost, SystemCost, MINSEED_LOGIC_AREA_MM2, MINSEED_LOGIC_POWER_MW,
    PE_LOGIC_AREA_MM2, PE_LOGIC_POWER_MW, REGFILE_AREA_MM2_PER_KB, REGFILE_POWER_MW_PER_KB,
    SRAM_AREA_MM2_PER_KB, SRAM_POWER_MW_PER_KB, TRACEBACK_AREA_MM2, TRACEBACK_POWER_MW,
};
pub use hbm::HbmConfig;
pub use minseed_model::{MinSeedHwConfig, SeedWorkload};
pub use pipeline_sim::{
    simulate_pipeline, simulate_sharded_pipeline, uniform_jobs, PipelineTrace, SeedJob,
    ShardedPipelineTrace,
};
pub use scratchpad::{BitAlignStorage, MinSeedScratchpads, Scratchpad};
pub use system::{SegramAccelerator, SegramSystem};
