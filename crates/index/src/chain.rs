//! Seed chaining — the classical long-read filtering step (Minimap2-style
//! weighted anchor chaining) that tools like GraphAligner run between
//! seeding and alignment.
//!
//! SeGraM's MinSeed deliberately does *not* chain (Section 11.4: "MinSeed
//! does not implement a filtering mechanism ... MinSeed is orthogonal to
//! any filtering tool or accelerator"); this module exists (a) to give the
//! software baselines their real filtering behaviour and (b) to quantify
//! the §11.4 seed-count comparison (77 M seeds → 48 k extensions for
//! GraphAligner vs → 35 M for MinSeed).
//!
//! Chaining on a graph is approximated in linear coordinate space — the
//! paper's own discussion (Section 3.2) notes chaining "cannot be used
//! directly for a genome graph because there can be multiple paths
//! connecting two seeds"; linear-coordinate chaining over the topological
//! layout is exactly the practical compromise graph mappers make.

use segram_graph::GenomeGraph;

use crate::minseed::SeedRegion;

/// One chaining anchor: a seed match between read and reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Anchor {
    /// Offset of the seed within the read.
    pub read_pos: u32,
    /// Linear coordinate of the seed in the (graph) reference.
    pub ref_pos: u64,
    /// Seed length (the minimizer's k).
    pub len: u32,
}

impl Anchor {
    /// Builds an anchor from a seed region produced by MinSeed.
    pub fn from_region(graph: &GenomeGraph, region: &SeedRegion, k: u32) -> Option<Anchor> {
        let ref_pos = graph.linear_pos(region.seed).ok()?;
        Some(Anchor {
            read_pos: region.read_offset,
            ref_pos,
            len: k,
        })
    }
}

/// A chain of co-linear anchors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// Indices into the anchor array, in read order.
    pub anchors: Vec<usize>,
    /// Chain score (sum of anchor lengths minus gap penalties).
    pub score: i64,
    /// Reference span `[start, end)` covered by the chain.
    pub ref_start: u64,
    /// End of the reference span.
    pub ref_end: u64,
}

impl Chain {
    /// Number of anchors in the chain.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Chains are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Chaining parameters (Minimap2-flavoured).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChainConfig {
    /// Maximum reference gap between consecutive anchors.
    pub max_ref_gap: u64,
    /// Maximum read gap between consecutive anchors.
    pub max_read_gap: u32,
    /// Gap-difference penalty per base (diagonal drift).
    pub gap_penalty: f64,
    /// Keep at most this many best chains.
    pub max_chains: usize,
    /// Drop chains scoring below this fraction of the best chain.
    pub min_score_frac: f64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        Self {
            max_ref_gap: 5_000,
            max_read_gap: 5_000,
            gap_penalty: 0.2,
            max_chains: 8,
            min_score_frac: 0.3,
        }
    }
}

/// Chains anchors with the classical `O(n²)`-bounded DP (window-limited to
/// the previous 64 anchors, as Minimap2 does).
///
/// Anchors are sorted by `(ref_pos, read_pos)` internally; the returned
/// chains are sorted by descending score.
pub fn chain_anchors(anchors: &[Anchor], config: &ChainConfig) -> Vec<Chain> {
    if anchors.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..anchors.len()).collect();
    order.sort_by_key(|&i| (anchors[i].ref_pos, anchors[i].read_pos));

    // DP over sorted anchors: best[i] = best chain score ending at i.
    let mut best: Vec<i64> = Vec::with_capacity(order.len());
    let mut prev: Vec<Option<usize>> = vec![None; order.len()];
    const LOOKBACK: usize = 64;
    for (i, &ai) in order.iter().enumerate() {
        let a = &anchors[ai];
        let mut score = a.len as i64;
        let mut from = None;
        for j in i.saturating_sub(LOOKBACK)..i {
            let b = &anchors[order[j]];
            // Co-linearity: b strictly precedes a on both axes.
            if b.ref_pos + b.len as u64 > a.ref_pos || b.read_pos + b.len > a.read_pos {
                continue;
            }
            let ref_gap = a.ref_pos - (b.ref_pos + b.len as u64);
            let read_gap = a.read_pos - (b.read_pos + b.len);
            if ref_gap > config.max_ref_gap || read_gap > config.max_read_gap {
                continue;
            }
            let drift = (ref_gap as i64 - read_gap as i64).unsigned_abs();
            let candidate =
                best[j] + a.len as i64 - (drift as f64 * config.gap_penalty).round() as i64;
            if candidate > score {
                score = candidate;
                from = Some(j);
            }
        }
        best.push(score);
        prev[i] = from;
    }

    // Backtrack the top chains greedily (each anchor used once).
    let mut ranked: Vec<usize> = (0..order.len()).collect();
    ranked.sort_by_key(|&i| std::cmp::Reverse(best[i]));
    let mut used = vec![false; order.len()];
    let mut chains = Vec::new();
    let top_score = best[ranked[0]].max(1);
    for &end in &ranked {
        if chains.len() >= config.max_chains {
            break;
        }
        if used[end] || (best[end] as f64) < top_score as f64 * config.min_score_frac {
            continue;
        }
        let mut members = Vec::new();
        let mut cursor = Some(end);
        let mut clean = true;
        while let Some(i) = cursor {
            if used[i] {
                clean = false;
                break;
            }
            members.push(i);
            cursor = prev[i];
        }
        if !clean || members.is_empty() {
            continue;
        }
        for &i in &members {
            used[i] = true;
        }
        members.reverse();
        let first = &anchors[order[members[0]]];
        let last = &anchors[order[*members.last().expect("non-empty")]];
        chains.push(Chain {
            score: best[end],
            ref_start: first.ref_pos,
            ref_end: last.ref_pos + last.len as u64,
            anchors: members.iter().map(|&i| order[i]).collect(),
        });
    }
    chains.sort_by_key(|c| std::cmp::Reverse(c.score));
    chains
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchor(read_pos: u32, ref_pos: u64) -> Anchor {
        Anchor {
            read_pos,
            ref_pos,
            len: 15,
        }
    }

    #[test]
    fn colinear_anchors_form_one_chain() {
        let anchors = vec![anchor(0, 1000), anchor(40, 1040), anchor(90, 1090)];
        let chains = chain_anchors(&anchors, &ChainConfig::default());
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 3);
        assert_eq!(chains[0].ref_start, 1000);
        assert_eq!(chains[0].ref_end, 1105);
    }

    #[test]
    fn distant_locations_split_into_chains() {
        let anchors = vec![
            anchor(0, 1000),
            anchor(40, 1040),
            // A second cluster (e.g. a repeat copy) far away.
            anchor(0, 90_000),
            anchor(40, 90_040),
        ];
        let chains = chain_anchors(&anchors, &ChainConfig::default());
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].len(), 2);
        assert_eq!(chains[1].len(), 2);
    }

    #[test]
    fn diagonal_drift_is_penalized() {
        // Same read gap, very different reference gaps: the drifted anchor
        // should not join the chain with full score.
        let straight = vec![anchor(0, 1000), anchor(50, 1050)];
        let drifted = vec![anchor(0, 1000), anchor(50, 1950)];
        let s = chain_anchors(&straight, &ChainConfig::default());
        let d = chain_anchors(&drifted, &ChainConfig::default());
        assert!(s[0].score > d[0].score);
    }

    #[test]
    fn anti_colinear_anchors_do_not_chain() {
        // Second anchor earlier in the read but later in the reference.
        let anchors = vec![anchor(50, 1000), anchor(0, 1100)];
        let chains = chain_anchors(&anchors, &ChainConfig::default());
        assert!(chains.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn max_chains_is_respected() {
        let mut anchors = Vec::new();
        for cluster in 0..20u64 {
            anchors.push(anchor(0, cluster * 50_000));
            anchors.push(anchor(40, cluster * 50_000 + 40));
        }
        let config = ChainConfig {
            max_chains: 5,
            min_score_frac: 0.0,
            ..ChainConfig::default()
        };
        let chains = chain_anchors(&anchors, &config);
        assert_eq!(chains.len(), 5);
    }

    #[test]
    fn empty_input_yields_no_chains() {
        assert!(chain_anchors(&[], &ChainConfig::default()).is_empty());
    }

    #[test]
    fn scores_are_descending() {
        let anchors = vec![
            anchor(0, 1000),
            anchor(40, 1040),
            anchor(90, 1090),
            anchor(0, 70_000),
        ];
        let chains = chain_anchors(
            &anchors,
            &ChainConfig {
                min_score_frac: 0.0,
                ..ChainConfig::default()
            },
        );
        assert!(chains.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn overlapping_anchors_are_not_chained_as_progress() {
        // Anchors overlapping on the read axis can't both contribute.
        let anchors = vec![anchor(0, 1000), anchor(5, 1005)];
        let chains = chain_anchors(&anchors, &ChainConfig::default());
        // Overlap (5 < 15): treated as separate chains.
        assert!(chains[0].len() == 1);
    }
}
