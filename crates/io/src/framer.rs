//! Raw FASTQ framing: byte-level record slicing for the overlapped map
//! engine input path.
//!
//! [`FastqReader`](crate::FastqReader) parses records inline — UTF-8
//! validation, base decoding, Phred conversion — which is exactly the
//! work a multi-threaded consumer wants *off* the producer thread: when
//! the reader feeds `segram_core`'s `MapEngine`, every worker serializes
//! behind the single thread doing the parsing. [`FastqFramer`] splits the
//! job: the producer only scans bytes for record boundaries (newline
//! counting over double-buffered block reads) and hands out
//! [`RawFastqRecord`] frames; [`RawFastqRecord::decode`] — the expensive
//! half — runs wherever the consumer wants, typically inside the worker
//! pool, and is guaranteed to behave byte-for-byte like `FastqReader`
//! (same records, same errors, same line numbers) because it *is* the
//! same parser, pointed at the frame.
//!
//! ```
//! use segram_io::{Ambiguity, FastqFramer};
//!
//! let bytes: &[u8] = b"@r1\nACGT\n+\nIIII\n";
//! let mut framer = FastqFramer::new(bytes);
//! let raw = framer.next().unwrap().unwrap();
//! assert_eq!(raw.line(), 1);
//! let record = raw.decode(Ambiguity::Reject).unwrap();
//! assert_eq!(record.id, "r1");
//! assert!(framer.next().is_none());
//! ```

use std::io::{self, Read};

use crate::fasta::Ambiguity;
use crate::fastq::{decode_framed, FastqRecord};
use crate::stream::StreamError;

/// Default block size of [`FastqFramer`]'s double-buffered reads.
pub const FRAMER_BLOCK: usize = 64 * 1024;

/// One framed FASTQ record: the raw bytes of its lines (endings
/// included), still undecoded, plus the 1-based line number of its
/// header — everything [`decode`](Self::decode) needs to reproduce
/// [`FastqReader`](crate::FastqReader)'s behaviour exactly, including
/// error line numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawFastqRecord {
    bytes: Vec<u8>,
    line: usize,
}

impl RawFastqRecord {
    /// 1-based line number of the record's header line in the source.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The record's raw bytes: its header line and up to three following
    /// lines, verbatim (line endings included; fewer lines only at a
    /// truncated end of input).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Parses the frame into a [`FastqRecord`] — the decode half of the
    /// split reader, safe to run on any thread.
    ///
    /// # Errors
    ///
    /// Returns exactly the [`StreamError`] a [`FastqReader`] reading the
    /// whole source would report for this record (same variant, same line
    /// number): truncation, bad markers, length mismatches, invalid
    /// bases or quality characters, invalid UTF-8.
    ///
    /// [`FastqReader`]: crate::FastqReader
    pub fn decode(&self, ambiguity: Ambiguity) -> Result<FastqRecord, StreamError> {
        decode_framed(&self.bytes, self.line, ambiguity)
    }
}

/// A byte-scanning FASTQ record framer over double-buffered block reads:
/// the producer-side half of the split reader (see the module docs).
///
/// The framer never inspects record *contents* — it only counts lines
/// (skipping the blank lines between records that
/// [`FastqReader`](crate::FastqReader) tolerates) and slices four-line
/// frames, so iterating it costs a newline scan plus one memcpy per
/// record. Transport errors surface here; format errors surface from
/// [`RawFastqRecord::decode`].
///
/// Reads alternate between two reusable block buffers: the refill for
/// the next block is issued eagerly when a block is swapped in, not
/// lazily when the scanner runs dry. The reads themselves are still
/// synchronous on the calling thread — the pipeline-level IO/compute
/// overlap comes from this framer living on the *producer* thread while
/// decoding and mapping run in the worker pool.
#[derive(Debug)]
pub struct FastqFramer<R: Read> {
    source: R,
    /// The block currently being sliced.
    front: Vec<u8>,
    /// Scan position within `front`.
    pos: usize,
    /// The read-ahead block, swapped in when `front` is exhausted.
    back: Vec<u8>,
    /// Block size of each read.
    block: usize,
    /// 1-based number of the last line consumed.
    line: usize,
    /// The source reported end of input.
    eof: bool,
    /// Set after end-of-input or a transport error; the iterator fuses.
    done: bool,
}

impl<R: Read> FastqFramer<R> {
    /// Wraps a byte source with the default block size.
    pub fn new(source: R) -> Self {
        Self::with_block_size(source, FRAMER_BLOCK)
    }

    /// Wraps a byte source with an explicit block size (clamped to at
    /// least 1). Small blocks are useful in tests to exercise records
    /// straddling block boundaries.
    pub fn with_block_size(source: R, block: usize) -> Self {
        Self {
            source,
            front: Vec::new(),
            pos: 0,
            back: Vec::new(),
            block: block.max(1),
            line: 0,
            eof: false,
            done: false,
        }
    }

    /// 1-based number of the last line consumed from the source.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Ensures `front[pos..]` is non-empty, swapping in the pre-filled
    /// block and issuing the next (synchronous) refill. Returns `false`
    /// at end of input.
    fn ensure_bytes(&mut self) -> io::Result<bool> {
        while self.pos >= self.front.len() {
            if self.back.is_empty() && self.eof {
                return Ok(false);
            }
            std::mem::swap(&mut self.front, &mut self.back);
            self.pos = 0;
            // Refill the swapped-out buffer immediately, so the next swap
            // finds its bytes already resident (one blocking read per
            // block either way — just issued at the start of a block's
            // scan instead of its end).
            if self.eof {
                self.back.clear();
            } else {
                self.back.resize(self.block, 0);
                let n = loop {
                    match self.source.read(&mut self.back) {
                        Ok(n) => break n,
                        Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                        Err(err) => {
                            self.back.clear();
                            return Err(err);
                        }
                    }
                };
                self.back.truncate(n);
                if n == 0 {
                    self.eof = true;
                }
            }
        }
        Ok(true)
    }

    /// Appends the next raw line (terminator included) to `out`; returns
    /// `false` at end of input. A final unterminated line still counts,
    /// mirroring `BufRead::read_until`.
    fn read_line(&mut self, out: &mut Vec<u8>) -> io::Result<bool> {
        let start = out.len();
        loop {
            if !self.ensure_bytes()? {
                if out.len() > start {
                    self.line += 1;
                    return Ok(true);
                }
                return Ok(false);
            }
            let chunk = &self.front[self.pos..];
            match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    out.extend_from_slice(&chunk[..=i]);
                    self.pos += i + 1;
                    self.line += 1;
                    return Ok(true);
                }
                None => {
                    out.extend_from_slice(chunk);
                    self.pos = self.front.len();
                }
            }
        }
    }

    /// Slices the next frame: skips blank lines, then takes the header
    /// line plus up to three more, verbatim.
    fn next_frame(&mut self) -> io::Result<Option<RawFastqRecord>> {
        let mut bytes = Vec::new();
        // Skip blank lines between records, exactly as FastqReader does
        // (its line counter advances over them too).
        loop {
            if !self.read_line(&mut bytes)? {
                return Ok(None);
            }
            if is_blank(&bytes) {
                bytes.clear();
            } else {
                break;
            }
        }
        let line = self.line;
        // The three remaining record lines, blank or not — judging their
        // contents is decode's job, the framer only counts them. Fewer
        // lines only at a truncated end of input, which decode reports
        // with the same line numbers FastqReader would.
        for _ in 0..3 {
            if !self.read_line(&mut bytes)? {
                break;
            }
        }
        Ok(Some(RawFastqRecord { bytes, line }))
    }
}

/// Whether a raw line is blank once its `\n`/`\r\n` terminator is
/// stripped — the framing-level mirror of `FastqReader`'s blank check.
fn is_blank(line: &[u8]) -> bool {
    let line = line.strip_suffix(b"\n").unwrap_or(line);
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    line.is_empty()
}

impl<R: Read> Iterator for FastqFramer<R> {
    type Item = Result<RawFastqRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_frame() {
            Ok(Some(raw)) => Some(Ok(raw)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(err) => {
                self.done = true;
                Some(Err(StreamError::Io(err)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastq::read_fastq;

    fn frames(text: &str, block: usize) -> Vec<RawFastqRecord> {
        FastqFramer::with_block_size(text.as_bytes(), block)
            .map(|r| r.expect("in-memory source cannot fail"))
            .collect()
    }

    #[test]
    fn frames_agree_with_batch_parser_across_block_sizes() {
        let text = "@r1 first\nACGT\n+\nII5I\n\n@r2\nTTAA\n+anything\n!!!!\n";
        let batch = read_fastq(text, Ambiguity::Reject).unwrap();
        for block in [1usize, 2, 3, 7, 64, FRAMER_BLOCK] {
            let decoded: Vec<FastqRecord> = frames(text, block)
                .iter()
                .map(|raw| raw.decode(Ambiguity::Reject).expect("well-formed"))
                .collect();
            assert_eq!(decoded, batch, "block size {block}");
        }
    }

    #[test]
    fn frames_carry_header_line_numbers_past_blanks_and_crlf() {
        let text = "\r\n\n@r1\r\nACGT\r\n+\r\nIIII\r\n\n@r2\nTT\n+\nII\n";
        let raw = frames(text, 4);
        assert_eq!(raw.len(), 2);
        assert_eq!(raw[0].line(), 3);
        assert_eq!(raw[1].line(), 8);
        let rec = raw[0].decode(Ambiguity::Reject).unwrap();
        assert_eq!(rec.id, "r1");
        assert_eq!(rec.seq.to_string(), "ACGT");
    }

    #[test]
    fn truncated_tail_decodes_to_the_reader_error() {
        // Frame the truncated record, then check decode reports the same
        // UnexpectedEof line the streaming reader would.
        let text = "@r1\nACGT\n+\nIIII\n@r2\nTT\n";
        let raw = frames(text, 5);
        assert_eq!(raw.len(), 2);
        assert!(raw[0].decode(Ambiguity::Reject).is_ok());
        let err = raw[1].decode(Ambiguity::Reject).unwrap_err();
        let direct = crate::FastqReader::new(text.as_bytes(), Ambiguity::Reject)
            .nth(1)
            .unwrap()
            .unwrap_err();
        assert_eq!(format!("{err:?}"), format!("{direct:?}"));
    }

    #[test]
    fn unterminated_final_line_is_framed() {
        let raw = frames("@r1\nACGT\n+\nIIII", 3);
        assert_eq!(raw.len(), 1);
        let rec = raw[0].decode(Ambiguity::Reject).unwrap();
        assert_eq!(rec.qual.len(), 4);
    }

    #[test]
    fn empty_and_blank_only_sources_frame_nothing() {
        assert!(frames("", 8).is_empty());
        assert!(frames("\n\r\n\n", 2).is_empty());
    }
}
