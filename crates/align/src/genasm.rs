//! GenASM as a special case: the sequence-to-sequence ancestor of BitAlign
//! (Senol Cali et al., MICRO 2020), reproduced by running BitAlign on a
//! linear text with the GenASM window configuration (`W = 64`, 40 committed
//! per window).
//!
//! The paper positions BitAlign as "a modified version of GenASM"
//! (Section 11.3); keeping this thin adapter lets the benchmarks compare
//! the two configurations head to head (the 34.0 k vs 42.3 k cycles
//! analysis).

use segram_graph::{Base, DnaSeq, LinearizedGraph};

use crate::{windowed_bitalign, AlignError, Alignment, StartMode, WindowConfig};

/// Aligns `pattern` to the linear `text` with GenASM's divide-and-conquer
/// configuration.
///
/// # Errors
///
/// Propagates the underlying [`windowed_bitalign`] errors.
///
/// # Examples
///
/// ```
/// use segram_align::genasm_align;
///
/// let text: segram_graph::DnaSeq = "ACGTTGCA".repeat(20).parse()?;
/// let read: segram_graph::DnaSeq = text.slice(10, 110);
/// let a = genasm_align(text.as_slice(), read.as_slice())?;
/// assert_eq!(a.edit_distance, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn genasm_align(text: &[Base], pattern: &[Base]) -> Result<Alignment, AlignError> {
    let text_seq: DnaSeq = text.iter().copied().collect();
    let pattern_seq: DnaSeq = pattern.iter().copied().collect();
    let lin = LinearizedGraph::from_linear_seq(&text_seq);
    windowed_bitalign(&lin, &pattern_seq, WindowConfig::genasm(), StartMode::Free)
}

/// GenASM's edit distance only.
///
/// # Errors
///
/// Propagates the underlying alignment errors.
pub fn genasm_distance(text: &[Base], pattern: &[Base]) -> Result<u32, AlignError> {
    genasm_align(text, pattern).map(|a| a.edit_distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::myers_distance;

    fn bases(s: &str) -> Vec<Base> {
        s.parse::<DnaSeq>().unwrap().into_bases()
    }

    #[test]
    fn genasm_agrees_with_myers_on_clean_reads() {
        let text = "ACGTTGCAGTCATGCA".repeat(16); // 256 chars
        let read = &text[30..230];
        let g = genasm_distance(&bases(&text), &bases(read)).unwrap();
        let m = myers_distance(&bases(&text), &bases(read)).unwrap();
        assert_eq!(g, 0);
        assert_eq!(g, m);
    }

    #[test]
    fn genasm_handles_isolated_errors() {
        let text = "ACGTTGCAGTCATGCA".repeat(16);
        let mut read = text[30..230].to_string();
        read.replace_range(60..61, if &read[60..61] == "A" { "G" } else { "A" });
        let g = genasm_distance(&bases(&text), &bases(&read)).unwrap();
        let m = myers_distance(&bases(&text), &bases(&read)).unwrap();
        assert_eq!(g, m);
        assert_eq!(g, 1);
    }
}
