//! Streaming I/O: incremental readers and writers for the mapping path.
//!
//! The string-based parsers in this crate (`read_fastq`, `write_gaf`, …)
//! materialize whole documents, which is fine for pre-processing inputs
//! (references, VCFs) but not for the read stream: a production mapping
//! run consumes millions of reads and emits one output record per read.
//! This module supplies the streaming counterparts the
//! `segram_core::pipeline::MapEngine` consumers use:
//!
//! * [`FastqReader`] — an iterator over FASTQ records from any
//!   [`BufRead`], holding one record in memory at a time (its split
//!   producer/worker counterpart, [`FastqFramer`](crate::FastqFramer),
//!   lives in the `framer` module);
//! * [`SamWriter`] — writes the SAM header eagerly, then records one line
//!   at a time;
//! * [`GafWriter`] — writes GAF records one line at a time.
//!
//! [`StreamError`] unifies the two failure modes of streaming input:
//! transport ([`std::io::Error`]) and syntax ([`FormatError`]).

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::error::FormatError;
use crate::gaf::GafRecord;

/// An error while streaming records: either the underlying transport
/// failed or the bytes did not parse.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The input violated the format (with a 1-based line number).
    Format(FormatError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "I/O error: {err}"),
            Self::Format(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            Self::Format(err) => Some(err),
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

impl From<FormatError> for StreamError {
    fn from(err: FormatError) -> Self {
        Self::Format(err)
    }
}

/// An incremental SAM writer: the header (`@HD`, `@SQ`, `@PG`) goes out at
/// construction, records stream one line at a time. The full-document
/// `segram_core::sam_document` is a convenience wrapper over this.
#[derive(Debug)]
pub struct SamWriter<W: Write> {
    sink: W,
    records: usize,
}

impl<W: Write> SamWriter<W> {
    /// Opens the document: writes the `@HD`/`@SQ`/`@PG` header for one
    /// reference sequence of the given length.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn new(mut sink: W, reference_name: &str, reference_len: u64) -> io::Result<Self> {
        sink.write_all(b"@HD\tVN:1.6\tSO:unknown\n")?;
        writeln!(sink, "@SQ\tSN:{reference_name}\tLN:{reference_len}")?;
        sink.write_all(b"@PG\tID:segram-rs\tPN:segram-rs\tVN:0.1.0\n")?;
        Ok(Self { sink, records: 0 })
    }

    /// Appends one record line (without its trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.sink.write_all(line.as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far (header lines excluded).
    pub fn records_written(&self) -> usize {
        self.records
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// An incremental GAF writer: one record per line, streamed as produced.
/// The full-document [`write_gaf`](crate::write_gaf) is a convenience
/// wrapper over this.
#[derive(Debug)]
pub struct GafWriter<W: Write> {
    sink: W,
    records: usize,
}

impl<W: Write> GafWriter<W> {
    /// Wraps a sink (GAF has no header).
    pub fn new(sink: W) -> Self {
        Self { sink, records: 0 }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_record(&mut self, record: &GafRecord) -> io::Result<()> {
        self.sink.write_all(record.to_gaf_line().as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> usize {
        self.records
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads one line from `source` (up to `\n`), stripping the trailing
/// `\n`/`\r\n`; returns `None` at end of input. The line counter is
/// incremented for every line consumed.
pub(crate) fn next_line(
    source: &mut impl BufRead,
    line_no: &mut usize,
) -> Result<Option<String>, StreamError> {
    let mut raw = Vec::new();
    let n = source.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    *line_no += 1;
    if raw.last() == Some(&b'\n') {
        raw.pop();
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map(Some).map_err(|_| {
        StreamError::Format(FormatError::malformed(*line_no, "line is not valid UTF-8"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sam_writer_emits_header_then_lines() {
        let mut writer = SamWriter::new(Vec::new(), "chr1", 1234).unwrap();
        writer
            .write_line("r1\t0\tchr1\t1\t60\t4=\t*\t0\t0\tACGT\t*")
            .unwrap();
        assert_eq!(writer.records_written(), 1);
        let bytes = writer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("@HD\tVN:1.6"));
        assert!(text.contains("@SQ\tSN:chr1\tLN:1234\n"));
        assert!(text.ends_with("ACGT\t*\n"));
    }

    #[test]
    fn line_reader_strips_endings_and_counts() {
        let mut source: &[u8] = b"one\r\ntwo\nthree";
        let mut line_no = 0usize;
        assert_eq!(
            next_line(&mut source, &mut line_no).unwrap().unwrap(),
            "one"
        );
        assert_eq!(
            next_line(&mut source, &mut line_no).unwrap().unwrap(),
            "two"
        );
        assert_eq!(
            next_line(&mut source, &mut line_no).unwrap().unwrap(),
            "three"
        );
        assert_eq!(line_no, 3);
        assert!(next_line(&mut source, &mut line_no).unwrap().is_none());
    }

    #[test]
    fn invalid_utf8_is_a_format_error() {
        let mut source: &[u8] = b"\xff\xfe\n";
        let mut line_no = 0usize;
        let err = next_line(&mut source, &mut line_no).unwrap_err();
        assert!(matches!(err, StreamError::Format(_)));
    }
}
