//! Criterion bench: file-format parser throughput. Parsing is the first
//! stage of every real run (`segram construct` / `segram map`), so the
//! parsers must not become the pipeline's accidental bottleneck; this
//! bench tracks bytes-per-second for each format at realistic record
//! shapes.

use segram_testkit::bench::{criterion_group, criterion_main, Criterion, Throughput};
use segram_testkit::rng::ChaCha8Rng;
use segram_testkit::rng::{Rng, SeedableRng};

use segram_io::{read_fasta, read_fastq, read_gaf, read_vcf, Ambiguity, VcfOptions};

fn random_bases(rng: &mut ChaCha8Rng, len: usize) -> String {
    (0..len)
        .map(|_| ['A', 'C', 'G', 'T'][rng.gen_range(0..4)])
        .collect()
}

fn fasta_doc(rng: &mut ChaCha8Rng) -> String {
    let mut doc = String::new();
    for i in 0..8 {
        doc.push_str(&format!(">contig{i} synthetic\n"));
        let seq = random_bases(rng, 20_000);
        for chunk in seq.as_bytes().chunks(70) {
            doc.push_str(std::str::from_utf8(chunk).unwrap());
            doc.push('\n');
        }
    }
    doc
}

fn fastq_doc(rng: &mut ChaCha8Rng) -> String {
    let mut doc = String::new();
    for i in 0..800 {
        let seq = random_bases(rng, 150);
        doc.push_str(&format!("@read{i}\n{seq}\n+\n{}\n", "I".repeat(150)));
    }
    doc
}

fn vcf_doc(rng: &mut ChaCha8Rng) -> String {
    let mut doc =
        String::from("##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n");
    let mut pos = 1u64;
    for _ in 0..2_000 {
        pos += rng.gen_range(10..200);
        let r = ['A', 'C', 'G', 'T'][rng.gen_range(0..4)];
        let a = ['A', 'C', 'G', 'T'][rng.gen_range(0..4)];
        doc.push_str(&format!("chr1\t{pos}\t.\t{r}\t{a}\t50\tPASS\tAC=2\n"));
    }
    doc
}

fn gaf_doc(rng: &mut ChaCha8Rng) -> String {
    let mut doc = String::new();
    for i in 0..1_000 {
        let nodes: String = (0..rng.gen_range(1..6))
            .map(|_| format!(">{}", rng.gen_range(0..100_000)))
            .collect();
        doc.push_str(&format!(
            "read{i}\t150\t0\t150\t+\t{nodes}\t400\t10\t160\t148\t150\t60\tNM:i:2\tcg:Z:148=2X\n"
        ));
    }
    doc
}

fn bench_io(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let fasta = fasta_doc(&mut rng);
    let fastq = fastq_doc(&mut rng);
    let vcf = vcf_doc(&mut rng);
    let gaf = gaf_doc(&mut rng);

    let mut group = c.benchmark_group("io_formats");
    group.throughput(Throughput::Bytes(fasta.len() as u64));
    group.bench_function("fasta_parse", |b| {
        b.iter(|| read_fasta(std::hint::black_box(&fasta), Ambiguity::Reject).unwrap())
    });
    group.throughput(Throughput::Bytes(fastq.len() as u64));
    group.bench_function("fastq_parse", |b| {
        b.iter(|| read_fastq(std::hint::black_box(&fastq), Ambiguity::Reject).unwrap())
    });
    group.throughput(Throughput::Bytes(vcf.len() as u64));
    group.bench_function("vcf_parse", |b| {
        b.iter(|| read_vcf(std::hint::black_box(&vcf), VcfOptions::default()).unwrap())
    });
    group.throughput(Throughput::Bytes(gaf.len() as u64));
    group.bench_function("gaf_parse", |b| {
        b.iter(|| read_gaf(std::hint::black_box(&gaf)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_io);
criterion_main!(benches);
