//! Property tests for the hop-minimizing linearization order
//! (`LinearizedGraph::reordered_for_hops`, the footnote-2 future work):
//! reordering must never change alignment semantics — same exact distance
//! from the graph DP and from BitAlign — and must keep the linearization
//! topologically valid.

use segram_testkit::prelude::*;

use segram_align::{bitalign, graph_dp_distance, StartMode};
use segram_graph::{build_graph, Base, DnaSeq, LinearizedGraph, Variant, VariantSet, BASES};

fn base_strategy() -> impl Strategy<Value = Base> {
    prop::sample::select(BASES.to_vec())
}

fn seq_strategy(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<Base>> {
    prop::collection::vec(base_strategy(), min_len..=max_len)
}

/// Builds a variant graph with SNPs, one insertion, and one deletion at
/// derived positions.
fn variant_graph(
    ref_seq: &[Base],
    snps: &[usize],
    ins_at: usize,
    del_at: usize,
) -> LinearizedGraph {
    let reference: DnaSeq = ref_seq.iter().copied().collect();
    let mut set = VariantSet::new();
    for &pos in snps {
        if pos + 1 < ref_seq.len() {
            let alt = BASES.into_iter().find(|&b| b != ref_seq[pos]).unwrap();
            set.push(Variant::snp(pos as u64, alt));
        }
    }
    if ins_at + 2 < ref_seq.len() {
        set.push(Variant::insertion(
            ins_at as u64,
            "GATTACA".parse().unwrap(),
        ));
    }
    if del_at + 6 < ref_seq.len() {
        set.push(Variant::deletion(del_at as u64, 4));
    }
    let mut set = set.into_sorted();
    set.drop_overlapping();
    let graph = build_graph(&reference, set).unwrap().graph;
    LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The graph-DP distance is invariant under reordering, for any read.
    #[test]
    fn reorder_preserves_exact_distance(
        ref_seq in seq_strategy(50, 120),
        read in seq_strategy(8, 40),
        snp_a in 2usize..30,
        snp_b in 31usize..48,
        ins_at in 5usize..40,
        del_at in 10usize..40,
    ) {
        let lin = variant_graph(&ref_seq, &[snp_a, snp_b], ins_at, del_at);
        let reordered = lin.reordered_for_hops();
        let read_dna: DnaSeq = read.iter().copied().collect();
        let (d0, _) = graph_dp_distance(&lin, &read_dna, StartMode::Free).unwrap();
        let (d1, _) = graph_dp_distance(&reordered, &read_dna, StartMode::Free).unwrap();
        prop_assert_eq!(d0, d1, "reordering changed the exact distance");
    }

    /// BitAlign agrees with itself across the two orders (distance and a
    /// CIGAR of the same cost), for reads sampled from the graph.
    #[test]
    fn reorder_preserves_bitalign(
        ref_seq in seq_strategy(60, 120),
        start in 5usize..30,
        len in 15usize..35,
        snp in 10usize..50,
    ) {
        let lin = variant_graph(&ref_seq, &[snp], 20, 35);
        let reordered = lin.reordered_for_hops();
        let end = (start + len).min(ref_seq.len());
        let read: DnaSeq = ref_seq[start..end].iter().copied().collect();
        let k = 8u32;
        let a0 = bitalign(&lin, &read, k);
        let a1 = bitalign(&reordered, &read, k);
        match (a0, a1) {
            (Ok(a0), Ok(a1)) => {
                prop_assert_eq!(a0.edit_distance, a1.edit_distance);
                prop_assert_eq!(
                    a0.cigar.edit_count(), a1.cigar.edit_count(),
                    "CIGAR costs diverged"
                );
            }
            (Err(_), Err(_)) => {} // both exceeded the threshold: consistent
            (a0, a1) => prop_assert!(
                false,
                "one order aligned, the other errored: {a0:?} vs {a1:?}"
            ),
        }
    }

    /// Reordering is idempotent in structure: applying it twice yields the
    /// same hop profile as applying it once.
    #[test]
    fn reorder_is_stable(
        ref_seq in seq_strategy(50, 100),
        snp in 5usize..40,
    ) {
        let lin = variant_graph(&ref_seq, &[snp], 15, 30);
        let once = lin.reordered_for_hops();
        let twice = once.reordered_for_hops();
        prop_assert_eq!(once.hop_distances(), twice.hop_distances());
        prop_assert_eq!(once.bases(), twice.bases());
    }
}
