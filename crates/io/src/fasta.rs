//! FASTA reading and writing (the paper's reference-genome input format,
//! Section 5).
//!
//! The parser is line based and tolerant of Windows line endings, blank
//! lines between records, and arbitrary line wrapping inside sequences.
//! Lower-case bases (soft-masked repeats in real references) are accepted
//! and upper-cased. Ambiguity codes (`N` etc.) are handled according to an
//! explicit [`Ambiguity`] policy because the downstream 2-bit alphabet
//! cannot represent them.

use std::fmt::Write as _;

use segram_graph::{Base, DnaSeq};

use crate::error::FormatError;

/// Policy for sequence characters outside the `A`/`C`/`G`/`T` alphabet.
///
/// Real references contain `N` runs (assembly gaps, centromeres); the
/// paper's 2-bit character table (Figure 5) has no room for them, so the
/// caller must choose what to do.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Ambiguity {
    /// Fail parsing with [`FormatError::InvalidBase`]. The default: silent
    /// data mangling is worse than an error.
    #[default]
    Reject,
    /// Substitute every ambiguous character with a fixed base. This is the
    /// deterministic counterpart of the common "random base" convention and
    /// keeps runs reproducible.
    Substitute(Base),
}

/// One FASTA record: a header and its sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastaRecord {
    /// Sequence identifier: the first whitespace-delimited token after `>`.
    pub id: String,
    /// The rest of the header line (may be empty).
    pub description: String,
    /// The sequence, upper-cased and validated.
    pub seq: DnaSeq,
}

impl FastaRecord {
    /// Creates a record with an empty description.
    pub fn new(id: impl Into<String>, seq: DnaSeq) -> Self {
        Self {
            id: id.into(),
            description: String::new(),
            seq,
        }
    }
}

/// Parses a FASTA document with the given ambiguity policy.
///
/// # Errors
///
/// Returns [`FormatError`] when the document contains sequence data before
/// the first header, an empty header, an empty record, or (under
/// [`Ambiguity::Reject`]) a non-`ACGT` character.
///
/// # Examples
///
/// ```
/// use segram_io::{read_fasta, Ambiguity};
///
/// let records = read_fasta(">chr1 test\nACGT\nacgt\n>chr2\nTTTT\n", Ambiguity::Reject)?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].id, "chr1");
/// assert_eq!(records[0].seq.to_string(), "ACGTACGT");
/// # Ok::<(), segram_io::FormatError>(())
/// ```
pub fn read_fasta(text: &str, ambiguity: Ambiguity) -> Result<Vec<FastaRecord>, FormatError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<(String, String, DnaSeq, usize)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(done) = current.take() {
                records.push(finish_record(done)?);
            }
            let header = header.trim();
            let (id, description) = match header.split_once(char::is_whitespace) {
                Some((id, desc)) => (id.to_owned(), desc.trim().to_owned()),
                None => (header.to_owned(), String::new()),
            };
            if id.is_empty() {
                return Err(FormatError::malformed(line_no, "empty FASTA header"));
            }
            current = Some((id, description, DnaSeq::new(), line_no));
        } else if line.starts_with(';') {
            // Historical FASTA comment lines; ignored.
            continue;
        } else {
            let Some((_, _, seq, _)) = current.as_mut() else {
                return Err(FormatError::malformed(
                    line_no,
                    "sequence data before the first '>' header",
                ));
            };
            append_bases(seq, line.as_bytes(), line_no, ambiguity)?;
        }
    }
    if let Some(done) = current.take() {
        records.push(finish_record(done)?);
    }
    Ok(records)
}

fn finish_record(
    (id, description, seq, line): (String, String, DnaSeq, usize),
) -> Result<FastaRecord, FormatError> {
    if seq.is_empty() {
        return Err(FormatError::invalid_record(
            line,
            format!("record {id:?} has an empty sequence"),
        ));
    }
    Ok(FastaRecord {
        id,
        description,
        seq,
    })
}

/// Appends validated bases to `seq`, applying the ambiguity policy.
pub(crate) fn append_bases(
    seq: &mut DnaSeq,
    bytes: &[u8],
    line_no: usize,
    ambiguity: Ambiguity,
) -> Result<(), FormatError> {
    for &byte in bytes {
        match Base::from_ascii(byte) {
            Some(base) => seq.push(base),
            None if byte.is_ascii_alphabetic() => match ambiguity {
                Ambiguity::Reject => {
                    return Err(FormatError::InvalidBase {
                        line: line_no,
                        byte,
                    })
                }
                Ambiguity::Substitute(base) => seq.push(base),
            },
            None => {
                return Err(FormatError::InvalidBase {
                    line: line_no,
                    byte,
                })
            }
        }
    }
    Ok(())
}

/// Renders records as a FASTA document, wrapping sequence lines at
/// `width` characters (a `width` of 0 disables wrapping).
///
/// # Examples
///
/// ```
/// use segram_io::{write_fasta, FastaRecord};
///
/// let rec = FastaRecord::new("chr1", "ACGTACGT".parse()?);
/// assert_eq!(write_fasta(&[rec], 4), ">chr1\nACGT\nACGT\n");
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
pub fn write_fasta(records: &[FastaRecord], width: usize) -> String {
    let mut out = String::new();
    for rec in records {
        if rec.description.is_empty() {
            let _ = writeln!(out, ">{}", rec.id);
        } else {
            let _ = writeln!(out, ">{} {}", rec.id, rec.description);
        }
        write_wrapped(&mut out, &rec.seq, width);
    }
    out
}

pub(crate) fn write_wrapped(out: &mut String, seq: &DnaSeq, width: usize) {
    if width == 0 {
        let _ = writeln!(out, "{seq}");
        return;
    }
    let bases = seq.as_slice();
    for chunk in bases.chunks(width) {
        for &base in chunk {
            out.push(char::from(base));
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_record_wrapped_input() {
        let text = ">one first record\nACGT\nACG\n\n>two\r\nTT\r\nGG\r\n";
        let records = read_fasta(text, Ambiguity::Reject).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "one");
        assert_eq!(records[0].description, "first record");
        assert_eq!(records[0].seq.to_string(), "ACGTACG");
        assert_eq!(records[1].id, "two");
        assert_eq!(records[1].seq.to_string(), "TTGG");
    }

    #[test]
    fn lower_case_is_upper_cased() {
        let records = read_fasta(">x\nacgt\n", Ambiguity::Reject).unwrap();
        assert_eq!(records[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn rejects_ambiguity_by_default() {
        let err = read_fasta(">x\nACNGT\n", Ambiguity::Reject).unwrap_err();
        assert!(matches!(
            err,
            FormatError::InvalidBase {
                line: 2,
                byte: b'N'
            }
        ));
    }

    #[test]
    fn substitutes_ambiguity_when_asked() {
        let records = read_fasta(">x\nACNGT\n", Ambiguity::Substitute(Base::A)).unwrap();
        assert_eq!(records[0].seq.to_string(), "ACAGT");
    }

    #[test]
    fn digits_are_never_substituted() {
        let err = read_fasta(">x\nAC1GT\n", Ambiguity::Substitute(Base::A)).unwrap_err();
        assert!(matches!(
            err,
            FormatError::InvalidBase {
                line: 2,
                byte: b'1'
            }
        ));
    }

    #[test]
    fn rejects_sequence_before_header() {
        let err = read_fasta("ACGT\n>x\nACGT\n", Ambiguity::Reject).unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn rejects_empty_record_and_empty_header() {
        let err = read_fasta(">x\n>y\nACGT\n", Ambiguity::Reject).unwrap_err();
        assert!(matches!(err, FormatError::InvalidRecord { line: 1, .. }));
        let err = read_fasta(">\nACGT\n", Ambiguity::Reject).unwrap_err();
        assert!(matches!(err, FormatError::Malformed { line: 1, .. }));
    }

    #[test]
    fn comment_lines_are_ignored() {
        let records = read_fasta(">x\n; a comment\nACGT\n", Ambiguity::Reject).unwrap();
        assert_eq!(records[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(read_fasta("", Ambiguity::Reject).unwrap().is_empty());
        assert!(read_fasta("\n\n", Ambiguity::Reject).unwrap().is_empty());
    }

    #[test]
    fn round_trip_preserves_records() {
        let records = vec![
            FastaRecord {
                id: "a".into(),
                description: "desc here".into(),
                seq: "ACGTACGTACGT".parse().unwrap(),
            },
            FastaRecord::new("b", "TTTT".parse().unwrap()),
        ];
        let text = write_fasta(&records, 5);
        let parsed = read_fasta(&text, Ambiguity::Reject).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn unwrapped_output_has_one_sequence_line() {
        let rec = FastaRecord::new("x", "ACGTACGT".parse().unwrap());
        let text = write_fasta(&[rec], 0);
        assert_eq!(text, ">x\nACGTACGT\n");
    }
}
