//! High-Bandwidth Memory model.
//!
//! SeGraM couples each accelerator to one HBM2E channel ("each SeGraM
//! accelerator has exclusive access to one HBM2E channel to ensure
//! low-latency and high-bandwidth memory access", Section 8.3). The paper's
//! full design has four HBM2E stacks × eight channels = 32 channels.
//!
//! This is an analytical latency/bandwidth model — the same level of
//! abstraction the paper's own evaluation uses (Section 10: "a
//! spreadsheet-based analytical model parameterized with the synthesis and
//! memory estimates").

/// Configuration of the HBM subsystem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HbmConfig {
    /// Number of HBM stacks (paper: 4).
    pub stacks: usize,
    /// Channels per stack (paper: 8, per HBM2E).
    pub channels_per_stack: usize,
    /// Per-channel peak bandwidth in bytes per nanosecond (= GB/s).
    /// HBM2E: ~460 GB/s per stack / 8 channels ≈ 57 GB/s per channel.
    pub channel_bw_bytes_per_ns: f64,
    /// Random-access latency in nanoseconds (row activation + CAS ≈ 120 ns).
    pub access_latency_ns: f64,
    /// Capacity per stack in bytes (paper: "16 GB in current technology").
    pub stack_capacity_bytes: u64,
    /// Dynamic power per active stack in watts (calibrated so that the
    /// system total matches the paper's 28.1 W − 24.3 W ≈ 3.8 W over four
    /// stacks).
    pub dynamic_power_w_per_stack: f64,
}

impl Default for HbmConfig {
    /// The paper's configuration: 4 × HBM2E.
    fn default() -> Self {
        Self {
            stacks: 4,
            channels_per_stack: 8,
            channel_bw_bytes_per_ns: 57.0,
            access_latency_ns: 120.0,
            stack_capacity_bytes: 16 << 30,
            dynamic_power_w_per_stack: 0.96,
        }
    }
}

impl HbmConfig {
    /// Total independent channels (= accelerators the system can host).
    pub fn total_channels(&self) -> usize {
        self.stacks * self.channels_per_stack
    }

    /// Time for one random access transferring `bytes` on one channel.
    pub fn access_ns(&self, bytes: u64) -> f64 {
        self.access_latency_ns + bytes as f64 / self.channel_bw_bytes_per_ns
    }

    /// Time for a batch of `count` independent random accesses of `bytes`
    /// each, assuming `overlap` of them can be in flight concurrently
    /// (bank-level parallelism within the channel).
    pub fn batched_access_ns(&self, count: u64, bytes: u64, overlap: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let overlap = overlap.max(1);
        let serial_rounds = count.div_ceil(overlap);
        serial_rounds as f64 * self.access_latency_ns
            + (count * bytes) as f64 / self.channel_bw_bytes_per_ns
    }

    /// Time for a streaming (sequential) transfer of `bytes` on one channel.
    pub fn stream_ns(&self, bytes: u64) -> f64 {
        self.access_latency_ns + bytes as f64 / self.channel_bw_bytes_per_ns
    }

    /// Whether the reference data (graph + index, replicated per stack,
    /// Section 8.3) fits in one stack.
    pub fn fits_per_stack(&self, graph_bytes: u64, index_bytes: u64) -> bool {
        graph_bytes + index_bytes <= self.stack_capacity_bytes
    }

    /// Total dynamic HBM power.
    pub fn total_dynamic_power_w(&self) -> f64 {
        self.stacks as f64 * self.dynamic_power_w_per_stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_has_32_channels() {
        let hbm = HbmConfig::default();
        assert_eq!(hbm.total_channels(), 32);
    }

    #[test]
    fn paper_dataset_fits_in_one_stack() {
        // Section 8.3: graph + index = 11.2 GB per stack, within 16 GB.
        let hbm = HbmConfig::default();
        let graph = 1_400_000_000u64; // 1.4 GB
        let index = 9_800_000_000u64; // 9.8 GB
        assert!(hbm.fits_per_stack(graph, index));
        assert!(!hbm.fits_per_stack(graph, 20 << 30));
    }

    #[test]
    fn access_time_includes_latency_and_transfer() {
        let hbm = HbmConfig::default();
        let t = hbm.access_ns(5700);
        assert!((t - 220.0).abs() < 1.0, "t = {t}"); // 120 + 100
    }

    #[test]
    fn batched_accesses_amortize_latency() {
        let hbm = HbmConfig::default();
        let serial = hbm.batched_access_ns(16, 64, 1);
        let parallel = hbm.batched_access_ns(16, 64, 16);
        assert!(parallel < serial / 4.0);
        assert_eq!(hbm.batched_access_ns(0, 64, 4), 0.0);
    }

    #[test]
    fn hbm_power_matches_paper_delta() {
        // 28.1 W total − 24.3 W accelerators ≈ 3.8 W of HBM power.
        let hbm = HbmConfig::default();
        let p = hbm.total_dynamic_power_w();
        assert!((3.5..4.2).contains(&p), "p = {p}");
    }
}
