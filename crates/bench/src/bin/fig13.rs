//! **Figure 13**: effect of the hop limit on the fraction of hops included
//! when performing sequence-to-graph alignment.
//!
//! The paper measures, over the human variation graph, the fraction of all
//! hops whose source/destination distance in the topologically sorted
//! linearization is within the hop limit, and picks 12 (covering > 99 %:
//! SNPs and small indels dominate; rare SVs produce the long tail).

use segram_bench::{header, write_results, Scale};
use segram_graph::{build_graph, hop_coverage};
use segram_sim::{generate_reference, simulate_variants, GenomeConfig, VariantConfig};
use segram_testkit::Serialize;

#[derive(Serialize)]
struct Fig13 {
    reference_len: usize,
    total_hops: usize,
    /// (limit, default-order coverage, hop-minimized-order coverage).
    coverage_by_limit: Vec<(u32, f64, f64)>,
    min_limit_for_99pct: Option<u32>,
    min_limit_for_99pct_reordered: Option<u32>,
    paper_limit: u32,
}

fn main() {
    let scale = Scale::from_env();
    let reference = generate_reference(&GenomeConfig::human_like(scale.reference_len, 17));
    let variants = simulate_variants(&reference, &VariantConfig::human_like(18));
    let built = build_graph(&reference, variants).expect("synthetic inputs");
    let graph = &built.graph;
    let lin = segram_graph::LinearizedGraph::extract(graph, 0, graph.total_chars())
        .expect("non-empty graph");
    let total_hops = lin.hop_distances().len();

    header(&format!(
        "Figure 13: hop coverage vs hop limit ({} variants, {} hops)",
        built.embedded_variants, total_hops
    ));
    // Footnote-2 future work: the same graph, linearized with the
    // hop-minimizing segment order.
    let reordered = lin.reordered_for_hops();
    println!("  {:>9} {:>12} {:>14}", "limit", "coverage", "reordered");
    let mut coverage_by_limit = Vec::new();
    let mut min99 = None;
    let mut min99_reordered = None;
    for limit in 1..=24u32 {
        let c = hop_coverage(graph, limit).expect("non-empty graph");
        let cr = reordered.hop_coverage_at(limit);
        println!("  {:>9} {:>11.2}% {:>13.2}%", limit, c * 100.0, cr * 100.0);
        if c >= 0.99 && min99.is_none() {
            min99 = Some(limit);
        }
        if cr >= 0.99 && min99_reordered.is_none() {
            min99_reordered = Some(limit);
        }
        coverage_by_limit.push((limit, c, cr));
    }
    match min99 {
        Some(l) => {
            println!("\n  99% coverage reached at hop limit {l} (paper: limit 12 covers >99%)")
        }
        None => println!("\n  99% not reached by limit 24 (heavier SV tail than the paper's data)"),
    }
    println!("  The long tail comes from structural variants; SNP/indel hops");
    println!("  concentrate at distances 2-8, matching the Figure 13 shape.");

    write_results(
        "fig13",
        &Fig13 {
            reference_len: scale.reference_len,
            total_hops,
            coverage_by_limit,
            min_limit_for_99pct: min99,
            min_limit_for_99pct_reordered: min99_reordered,
            paper_limit: 12,
        },
    );
}
