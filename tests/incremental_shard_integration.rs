//! Differential tests for the dirty-shard hot swap: a sharded index
//! evolved by [`ShardedIndex::apply_delta`] must map every read — and
//! render every SAM/GAF byte — exactly like a fresh re-shard of the new
//! store, across shard counts and thread counts, while provably keeping
//! the clean shards' mapper allocations shared with the predecessor.

use segram_core::{
    gaf_record_for, sam_record_for, EngineConfig, MapEngine, ReadMapper, SegramConfig, ShardedIndex,
};
use segram_graph::{build_graph, Base, DnaSeq, Variant, VariantSet};
use segram_index::{
    frequency_threshold, initial_changelog, update_store, GraphIndex, MinimizerScheme,
    PersistError, PersistedIndex,
};
use segram_sim::{simulate_reads, ReadConfig, SimulatedRead};

const DISCARD: f64 = 0.02;

fn reference() -> DnaSeq {
    "ACGTTGCAGTCATGCAACGGTTAC"
        .repeat(120)
        .parse()
        .expect("valid bases")
}

fn build_store(reference: &DnaSeq, variants: VariantSet, source: &str) -> PersistedIndex {
    let built = build_graph(reference, variants).expect("variants apply");
    let changelog = initial_changelog(reference.clone(), &built, source);
    let index = GraphIndex::build(&built.graph, MinimizerScheme::new(5, 11), 6);
    let freq_threshold = frequency_threshold(&index, DISCARD);
    PersistedIndex {
        graph: built.graph,
        index,
        discard_frac: DISCARD,
        freq_threshold,
        changelog: Some(changelog),
        provenance: None,
    }
}

/// Epoch-0 variants spread over the whole reference; the delta confined
/// to the tail, so early shards stay clean at every tested shard count.
fn stores() -> (PersistedIndex, PersistedIndex) {
    let reference = reference();
    let base: VariantSet = vec![
        Variant::snp(40, Base::C),
        Variant::insertion(301, "TTAG".parse().expect("valid bases")),
        Variant::deletion(702, 3),
        Variant::snp(1203, Base::A),
        Variant::deletion(1804, 2),
    ]
    .into_iter()
    .collect();
    let delta: VariantSet = vec![
        Variant::snp(2610, Base::A),
        Variant::insertion(2650, "CATT".parse().expect("valid bases")),
        Variant::deletion(2700, 4),
    ]
    .into_iter()
    .collect();
    let v1 = build_store(&reference, base, "base.vcf");
    let v2 = update_store(&v1, &delta, "delta.vcf")
        .expect("delta applies")
        .persisted;
    (v1, v2)
}

/// Mirrors the CLI's config override: the store's scheme/buckets/discard
/// take precedence over the preset's.
fn config_for(store: &PersistedIndex) -> SegramConfig {
    let mut config = SegramConfig::short_reads();
    config.scheme = *store.index.scheme();
    config.bucket_bits = store.index.bucket_bits();
    config.discard_frac = store.discard_frac;
    config
}

/// Renders the full SAM + GAF documents for `reads` through the batched
/// engine, the way `segram map`/`segram serve` do.
fn render_documents(
    mapper: &ShardedIndex,
    reads: &[SimulatedRead],
    threads: usize,
) -> (Vec<u8>, Vec<u8>) {
    let mut config = EngineConfig::with_threads(threads);
    config.batch_size = 8;
    let engine = MapEngine::new(mapper, config);
    let mut sam = Vec::new();
    let mut gaf = Vec::new();
    engine.map_stream(
        reads.iter(),
        |read| &read.seq,
        |read, outcome| {
            let id = format!("r{}", read.id);
            let rec = sam_record_for(&id, &read.seq, &outcome);
            sam.extend_from_slice(rec.to_sam_line().as_bytes());
            sam.push(b'\n');
            match gaf_record_for(&id, &read.seq, mapper.graph(), &outcome).expect("gaf renders") {
                None => {}
                Some(rec) => {
                    gaf.extend_from_slice(rec.to_gaf_line().as_bytes());
                    gaf.push(b'\n');
                }
            }
        },
    );
    (sam, gaf)
}

#[test]
fn delta_swap_maps_byte_identically_to_a_fresh_reshard() {
    let (v1, v2) = stores();
    let config = config_for(&v2);
    let reads = simulate_reads(&v2.graph, &ReadConfig::short_reads(60, 60, 7));

    for shards in [1usize, 2, 4] {
        let scratch = ShardedIndex::from_persisted(v2.clone(), config, shards);
        let base = ShardedIndex::from_persisted(v1.clone(), config, shards);
        let (swapped, report) = base.apply_delta(&v2).expect("parent matches");

        assert_eq!(report.epoch, 1);
        assert_eq!(swapped.shards().len(), base.shards().len());
        assert_eq!(
            report.dirty + report.clean(),
            swapped.shards().len(),
            "dirty + clean must partition the shard set at {shards} shards"
        );
        assert!(report.dirty >= 1, "the touched tail must dirty a shard");
        if shards >= 2 {
            // The delta is confined to the tail: early shards stay clean,
            // and the clean ones share the predecessor's mapper Arcs.
            assert!(
                report.dirty < swapped.shards().len(),
                "a localized delta must not dirty every one of {shards} shards"
            );
            let shared = base
                .shards()
                .iter()
                .zip(swapped.shards())
                .filter(|(old, new)| old.shares_mapper_with(new))
                .count();
            assert_eq!(shared, report.shared, "Arc-sharing count disagrees");
            assert!(shared >= 1, "no shard allocation was shared");
        }

        for threads in [1usize, 4] {
            let (sam_a, gaf_a) = render_documents(&scratch, &reads, threads);
            let (sam_b, gaf_b) = render_documents(&swapped, &reads, threads);
            assert_eq!(
                sam_a, sam_b,
                "SAM bytes diverged at {shards} shards, {threads} threads"
            );
            assert_eq!(
                gaf_a, gaf_b,
                "GAF bytes diverged at {shards} shards, {threads} threads"
            );
        }
    }
}

#[test]
fn chained_delta_swaps_track_scratch_resharding() {
    let (v1, v2) = stores();
    let delta2: VariantSet = vec![Variant::snp(150, Base::G), Variant::deletion(180, 2)]
        .into_iter()
        .collect();
    let v3 = update_store(&v2, &delta2, "d2.vcf")
        .expect("second delta applies")
        .persisted;
    let config = config_for(&v3);
    let reads = simulate_reads(&v3.graph, &ReadConfig::short_reads(40, 60, 11));

    let base = ShardedIndex::from_persisted(v1, config, 4);
    let (step1, r1) = base.apply_delta(&v2).expect("epoch 0 -> 1");
    let (step2, r2) = step1.apply_delta(&v3).expect("epoch 1 -> 2");
    assert_eq!((r1.epoch, r2.epoch), (1, 2));

    let scratch = ShardedIndex::from_persisted(v3, config, 4);
    let (sam_a, gaf_a) = render_documents(&scratch, &reads, 4);
    let (sam_b, gaf_b) = render_documents(&step2, &reads, 4);
    assert_eq!(sam_a, sam_b);
    assert_eq!(gaf_a, gaf_b);
}

#[test]
fn delta_swap_preconditions_fail_with_named_errors() {
    let (v1, v2) = stores();
    let config = config_for(&v2);

    // Wrong parent: v2's parent is v1, not v2 itself.
    let on_v2 = ShardedIndex::from_persisted(v2.clone(), config, 2);
    assert!(matches!(
        on_v2.apply_delta(&v2),
        Err(PersistError::ParentMismatch { .. })
    ));

    // Right parent, forged epoch: the chain must advance by exactly one.
    let on_v1 = ShardedIndex::from_persisted(v1.clone(), config, 2);
    let mut skewed = v2.clone();
    skewed.changelog.as_mut().expect("versioned").epoch = 5;
    assert!(matches!(
        on_v1.apply_delta(&skewed),
        Err(PersistError::EpochSkew { .. })
    ));

    // Legacy stores on either side refuse by name.
    let legacy = PersistedIndex {
        changelog: None,
        ..v1.clone()
    };
    let on_legacy = ShardedIndex::from_persisted(legacy.clone(), config, 2);
    assert!(matches!(
        on_legacy.apply_delta(&v2),
        Err(PersistError::NoChangelog)
    ));
    assert!(matches!(
        on_v1.apply_delta(&legacy),
        Err(PersistError::NoChangelog)
    ));
}
