//! Error type shared by all parsers in this crate.

use std::error::Error;
use std::fmt;

/// Error produced when parsing or rendering one of the supported formats.
///
/// Every variant carries a 1-based line number so malformed files can be
/// located without a debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// The input ended in the middle of a record (e.g. a FASTQ record with
    /// fewer than four lines).
    UnexpectedEof {
        /// 1-based line where the truncation was detected.
        line: usize,
        /// What the parser was expecting.
        expected: &'static str,
    },
    /// A structural rule of the format was violated.
    Malformed {
        /// 1-based line of the offending text.
        line: usize,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A sequence contained a character outside the `A`/`C`/`G`/`T`
    /// alphabet and the configured [`Ambiguity`](crate::Ambiguity) policy
    /// was [`Reject`](crate::Ambiguity::Reject).
    InvalidBase {
        /// 1-based line of the offending sequence.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A record referenced a reference position outside the sequence, or a
    /// variant could not be expressed in the graph model.
    InvalidRecord {
        /// 1-based line of the offending record.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl FormatError {
    /// Convenience constructor for [`FormatError::Malformed`].
    pub fn malformed(line: usize, message: impl Into<String>) -> Self {
        Self::Malformed {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`FormatError::InvalidRecord`].
    pub fn invalid_record(line: usize, message: impl Into<String>) -> Self {
        Self::InvalidRecord {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number the error refers to.
    pub fn line(&self) -> usize {
        match self {
            Self::UnexpectedEof { line, .. }
            | Self::Malformed { line, .. }
            | Self::InvalidBase { line, .. }
            | Self::InvalidRecord { line, .. } => *line,
        }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof { line, expected } => {
                write!(
                    f,
                    "line {line}: unexpected end of input, expected {expected}"
                )
            }
            Self::Malformed { line, message } => write!(f, "line {line}: {message}"),
            Self::InvalidBase { line, byte } => {
                if byte.is_ascii_graphic() {
                    write!(f, "line {line}: invalid base {:?}", *byte as char)
                } else {
                    write!(f, "line {line}: invalid base 0x{byte:02x}")
                }
            }
            Self::InvalidRecord { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for FormatError {}

/// Error produced by the BGZF container layer ([`crate::bgzf`]).
///
/// Every way a compressed stream can be corrupt maps to exactly one named
/// variant — the corruption-class test matrix in `bgzf.rs` fabricates a
/// fixture per variant — and decoding never panics on hostile input.
/// Variants carry the byte offset of the offending block (or the 0-based
/// block index, for failures only detectable after the block is sliced)
/// so a broken file can be located without a debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BgzfError {
    /// The bytes at a block boundary are not a gzip member header
    /// (`1f 8b 08`). Usually a truncated or overwritten file, or a lied
    /// `BSIZE` that landed the parser mid-payload.
    BadMagic {
        /// Byte offset of the expected block start.
        offset: u64,
    },
    /// The gzip member is missing the BGZF `BC` extra subfield (or its
    /// extra area is structurally invalid) — e.g. plain `gzip` output,
    /// which is a valid gzip stream but not seekable BGZF.
    BadExtra {
        /// Byte offset of the offending member header.
        offset: u64,
        /// What exactly was wrong with the extra field.
        reason: &'static str,
    },
    /// The input ended before the block promised by `BSIZE` (or before a
    /// complete member header) was fully present.
    Truncated {
        /// Byte offset of the block whose bytes ran out.
        offset: u64,
    },
    /// The inflated payload failed CRC32 or ISIZE verification — the
    /// container framing was intact but the data inside is corrupt.
    CrcMismatch {
        /// 0-based index of the failing block.
        block: usize,
        /// Which integrity check failed (`"CRC32"` or `"ISIZE"`).
        check: &'static str,
        /// The value stored in the block trailer.
        stored: u32,
        /// The value computed from the inflated payload.
        computed: u32,
    },
    /// The DEFLATE payload itself is malformed (invalid Huffman code,
    /// over-subscribed code lengths, out-of-window back-reference,
    /// payload cut short by a lied `BSIZE`, ...).
    BadDeflate {
        /// 0-based index of the failing block.
        block: usize,
        /// What the inflater tripped over.
        reason: &'static str,
    },
    /// The stream ended without the canonical 28-byte BGZF EOF marker
    /// block — the defined signature of an incomplete upload or a
    /// writer that died mid-flush.
    MissingEof,
}

impl fmt::Display for BgzfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { offset } => {
                write!(f, "offset {offset}: not a gzip member header (bad magic)")
            }
            Self::BadExtra { offset, reason } => {
                write!(f, "offset {offset}: not a BGZF member: {reason}")
            }
            Self::Truncated { offset } => {
                write!(f, "offset {offset}: input truncated inside a BGZF block")
            }
            Self::CrcMismatch {
                block,
                check,
                stored,
                computed,
            } => write!(
                f,
                "block {block}: {check} mismatch (stored 0x{stored:08x}, computed 0x{computed:08x})"
            ),
            Self::BadDeflate { block, reason } => {
                write!(f, "block {block}: invalid DEFLATE payload: {reason}")
            }
            Self::MissingEof => {
                write!(f, "stream ended without the BGZF EOF marker block")
            }
        }
    }
}

impl Error for BgzfError {}
