//! Property tests: every writer/reader pair in `segram-io` round-trips
//! arbitrary well-formed data, and the readers never panic on arbitrary
//! byte soup.

use segram_testkit::prelude::*;

use segram_graph::{Base, DnaSeq, NodeId, Variant, VariantSet, BASES};
use segram_io::{
    read_fasta, read_fastq, read_gaf, read_vcf, write_fasta, write_fastq, write_gaf, write_vcf,
    Ambiguity, FastaRecord, FastqRecord, GafRecord, VcfOptions, MAX_PHRED,
};

fn base_strategy() -> impl Strategy<Value = Base> {
    prop::sample::select(BASES.to_vec())
}

fn seq_strategy(min_len: usize, max_len: usize) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(base_strategy(), min_len..=max_len)
        .prop_map(|bases| bases.into_iter().collect())
}

fn id_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_.:/-]{1,20}"
}

prop_compose! {
    fn fasta_record()(id in id_strategy(),
                      desc in "[ -~]{0,30}",
                      seq in seq_strategy(1, 200)) -> FastaRecord {
        FastaRecord { id, description: desc.trim().to_owned(), seq }
    }
}

proptest! {
    #[test]
    fn fasta_round_trips(records in prop::collection::vec(fasta_record(), 1..6),
                         width in 0usize..80) {
        let text = write_fasta(&records, width);
        let parsed = read_fasta(&text, Ambiguity::Reject).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn fasta_reader_never_panics(text in "[ -~\n]{0,400}") {
        let _ = read_fasta(&text, Ambiguity::Reject);
        let _ = read_fasta(&text, Ambiguity::Substitute(Base::A));
    }

    #[test]
    fn fastq_round_trips(
        entries in prop::collection::vec(
            (id_strategy(), seq_strategy(1, 150), 0u8..=MAX_PHRED), 1..6)
    ) {
        let records: Vec<FastqRecord> = entries
            .into_iter()
            .map(|(id, seq, q)| FastqRecord::with_uniform_quality(id, seq, q))
            .collect();
        let text = write_fastq(&records);
        let parsed = read_fastq(&text, Ambiguity::Reject).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn fastq_reader_never_panics(text in "[ -~\n]{0,400}") {
        let _ = read_fastq(&text, Ambiguity::Reject);
    }

    #[test]
    fn vcf_reader_never_panics(text in "[ -~\t\n]{0,400}") {
        let _ = read_vcf(&text, VcfOptions::default());
        let _ = read_vcf(&text, VcfOptions::lenient());
    }

    #[test]
    fn gaf_reader_never_panics(text in "[ -~\t\n]{0,400}") {
        let _ = read_gaf(&text);
    }

    /// VCF round-trips arbitrary sorted non-overlapping variant sets.
    ///
    /// Variants are placed at spaced positions >= 1 so that the VCF indel
    /// anchor convention applies cleanly (position-0 indels legitimately
    /// re-encode as replacements; covered by a unit test instead).
    #[test]
    fn vcf_round_trips(reference in seq_strategy(64, 200),
                       picks in prop::collection::vec(
                           (1u64..8, 0usize..4, seq_strategy(1, 4), 1u64..3), 0..8)) {
        let mut set = VariantSet::new();
        let mut pos = 0u64;
        let ref_len = reference.len() as u64;
        for (gap, kind, alt, del_len) in picks {
            pos += gap + 3; // keep intervals disjoint and away from pos 0
            if pos + del_len + 1 >= ref_len {
                break;
            }
            let variant = match kind {
                0 => {
                    // A SNP whose alt differs from the reference base.
                    let ref_base = reference.get(pos as usize).unwrap();
                    let alt_base = BASES
                        .into_iter()
                        .find(|&b| b != ref_base)
                        .unwrap();
                    Variant::snp(pos, alt_base)
                }
                1 => Variant::insertion(pos, alt.clone()),
                2 => Variant::deletion(pos, del_len),
                _ => {
                    // Canonical replacement: >=2 ref bases, >=2 alt bases,
                    // first alt base differing from the reference, so the
                    // parser cannot legally reinterpret it as a SNP or an
                    // anchored indel.
                    let ref_base = reference.get(pos as usize).unwrap();
                    let first = BASES.into_iter().find(|&b| b != ref_base).unwrap();
                    let mut canonical: DnaSeq = [first].into_iter().collect();
                    canonical.extend_from_seq(&alt);
                    Variant::replacement(pos, del_len + 1, canonical)
                }
            };
            pos = variant.ref_interval().1;
            set.push(variant);
        }
        let set = set.into_sorted();
        let text = write_vcf("chr1", &reference, &set).unwrap();
        let doc = read_vcf(&text, VcfOptions::default()).unwrap();
        let parsed = doc.chrom("chr1").cloned().unwrap_or_default();
        prop_assert_eq!(parsed, set);
    }

    /// GAF lines round-trip arbitrary records (writer -> reader identity).
    #[test]
    fn gaf_round_trips(qname in id_strategy(),
                       qlen in 1usize..10_000,
                       nodes in prop::collection::vec(0u32..1_000_000, 1..12),
                       pstart in 0u64..64,
                       span in 1u64..512,
                       matches in 0u64..512,
                       mapq in 0u8..=254,
                       nm in 0u32..64) {
        let rec = GafRecord {
            qname,
            qlen,
            qstart: 0,
            qend: qlen,
            strand: '+',
            path: nodes.into_iter().map(NodeId).collect(),
            plen: pstart + span + 7,
            pstart,
            pend: pstart + span,
            matches,
            block_len: matches + u64::from(nm),
            mapq,
            edit_distance: nm,
            cigar: format!("{}={}", matches.max(1), if nm > 0 { format!("{nm}X") } else { String::new() }),
        };
        let text = write_gaf(std::slice::from_ref(&rec));
        let parsed = read_gaf(&text).unwrap();
        prop_assert_eq!(parsed, vec![rec]);
    }
}
