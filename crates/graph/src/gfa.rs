//! Minimal GFA v1 import/export (`S` segment and `L` link records), the
//! interchange format the paper converts its graphs into during
//! pre-processing ("we convert our VG-formatted graphs to GFA-formatted
//! graphs ... since GFA is easier to work with", Section 5).

use std::collections::HashMap;

use crate::{DnaSeq, GenomeGraph, GraphBuilder, GraphError, NodeId};

/// Serializes a graph to GFA v1 text.
///
/// Node ids are written 1-based (GFA convention); every link uses a `0M`
/// overlap, as produced by `vg view` for variation graphs.
///
/// # Examples
///
/// ```
/// use segram_graph::{gfa, linear_graph};
///
/// let graph = linear_graph(&"ACGT".parse()?, 2)?;
/// let text = gfa::to_gfa(&graph);
/// assert!(text.contains("S\t1\tAC"));
/// assert!(text.contains("L\t1\t+\t2\t+\t0M"));
/// let round = gfa::from_gfa(&text)?;
/// assert_eq!(round.stats(), graph.stats());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_gfa(graph: &GenomeGraph) -> String {
    let mut out = String::from("H\tVN:Z:1.0\n");
    for node in graph.node_ids() {
        out.push_str(&format!("S\t{}\t{}\n", node.0 + 1, graph.seq(node)));
    }
    for (from, to) in graph.edges() {
        out.push_str(&format!("L\t{}\t+\t{}\t+\t0M\n", from.0 + 1, to.0 + 1));
    }
    out
}

/// Parses the GFA v1 subset written by [`to_gfa`] (forward-strand `S`/`L`
/// records; `H` and unknown record types are ignored).
///
/// Segment names may be arbitrary strings; they are assigned dense ids in
/// order of first appearance, then the graph is topologically sorted.
///
/// # Errors
///
/// Returns [`GraphError::MalformedGfa`] for records with missing fields,
/// links that reference unknown segments, or reverse-strand links (which
/// this subset does not model), and propagates graph-construction errors
/// (empty segments, duplicate links, cycles).
pub fn from_gfa(text: &str) -> Result<GenomeGraph, GraphError> {
    let mut builder = GraphBuilder::new();
    let mut names: HashMap<&str, NodeId> = HashMap::new();
    let mut links: Vec<(NodeId, NodeId, usize)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        match fields.next() {
            Some("S") => {
                let name = fields.next().ok_or_else(|| GraphError::MalformedGfa {
                    line: lineno + 1,
                    reason: "segment record missing name".into(),
                })?;
                let seq_text = fields.next().ok_or_else(|| GraphError::MalformedGfa {
                    line: lineno + 1,
                    reason: "segment record missing sequence".into(),
                })?;
                let seq: DnaSeq = DnaSeq::from_ascii(seq_text.as_bytes()).map_err(|e| {
                    GraphError::MalformedGfa {
                        line: lineno + 1,
                        reason: e.to_string(),
                    }
                })?;
                let id = builder.add_node(seq)?;
                if names.insert(name, id).is_some() {
                    return Err(GraphError::MalformedGfa {
                        line: lineno + 1,
                        reason: format!("duplicate segment name {name}"),
                    });
                }
            }
            Some("L") => {
                let from = fields.next();
                let from_orient = fields.next();
                let to = fields.next();
                let to_orient = fields.next();
                let (Some(from), Some(from_orient), Some(to), Some(to_orient)) =
                    (from, from_orient, to, to_orient)
                else {
                    return Err(GraphError::MalformedGfa {
                        line: lineno + 1,
                        reason: "link record missing fields".into(),
                    });
                };
                if from_orient != "+" || to_orient != "+" {
                    return Err(GraphError::MalformedGfa {
                        line: lineno + 1,
                        reason: "only forward-strand links are supported".into(),
                    });
                }
                let resolve = |name: &str| {
                    names
                        .get(name)
                        .copied()
                        .ok_or_else(|| GraphError::MalformedGfa {
                            line: lineno + 1,
                            reason: format!("link references unknown segment {name}"),
                        })
                };
                links.push((resolve(from)?, resolve(to)?, lineno + 1));
            }
            _ => {} // headers, paths, comments: ignored
        }
    }
    for (from, to, _line) in links {
        builder.add_edge(from, to)?;
    }
    let graph = builder.finish()?;
    if graph.is_topologically_sorted() {
        Ok(graph)
    } else {
        Ok(graph.topological_sort()?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_graph, Variant};

    #[test]
    fn round_trip_preserves_structure() {
        let graph = build_graph(
            &"ACGTACGT".parse().unwrap(),
            [Variant::snp(3, crate::Base::G), Variant::deletion(5, 2)]
                .into_iter()
                .collect(),
        )
        .unwrap()
        .graph;
        let text = to_gfa(&graph);
        let round = from_gfa(&text).unwrap();
        assert_eq!(round.stats(), graph.stats());
        for node in graph.node_ids() {
            assert_eq!(round.seq(node), graph.seq(node));
            assert_eq!(round.successors(node), graph.successors(node));
        }
    }

    #[test]
    fn unsorted_input_is_resorted() {
        let text = "S\tb\tTT\nS\ta\tAC\nL\ta\t+\tb\t+\t0M\n";
        let graph = from_gfa(text).unwrap();
        assert!(graph.is_topologically_sorted());
        assert_eq!(graph.seq(NodeId(0)).to_string(), "AC");
        assert_eq!(graph.seq(NodeId(1)).to_string(), "TT");
    }

    #[test]
    fn malformed_records_are_reported_with_line_numbers() {
        let missing_seq = "S\tonly_name\n";
        match from_gfa(missing_seq).unwrap_err() {
            GraphError::MalformedGfa { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
        let unknown_link = "S\ta\tAC\nL\ta\t+\tzzz\t+\t0M\n";
        assert!(matches!(
            from_gfa(unknown_link),
            Err(GraphError::MalformedGfa { line: 2, .. })
        ));
        let reverse = "S\ta\tAC\nS\tb\tGG\nL\ta\t+\tb\t-\t0M\n";
        assert!(from_gfa(reverse).is_err());
        let dup = "S\ta\tAC\nS\ta\tGG\n";
        assert!(from_gfa(dup).is_err());
    }

    #[test]
    fn ambiguous_bases_rejected_at_parse() {
        assert!(from_gfa("S\ta\tACGN\n").is_err());
    }
}
