//! Property tests for the persistent on-disk index format (`.sgi`):
//! encode/decode round-trips over arbitrary graphs, and the guarantee
//! that corrupt, truncated, or incompatible files produce a named
//! [`PersistError`] — never a panic.

use segram_core::SegramConfig;
use segram_graph::{linear_graph, Base, DnaSeq, GenomeGraph, GraphBuilder, NodeId};
use segram_index::{
    decode_index, encode_index, frequency_threshold, GraphIndex, MinimizerScheme, PersistError,
    PersistedIndex, INDEX_FORMAT_VERSION, INDEX_MAGIC,
};
use segram_sim::DatasetConfig;
use segram_testkit::prelude::*;
use std::sync::Arc;

/// Bytes before the first section payload: magic + version + count + the
/// three 28-byte table entries. Flips beyond this land in a checksummed
/// payload.
const HEADER_BYTES: usize = 8 + 4 + 4 + 3 * 28;

fn arb_graph() -> impl Strategy<Value = GenomeGraph> {
    (
        prop::collection::vec(prop::collection::vec(0u8..4, 1..=40), 1..=12),
        prop::collection::vec((0usize..12, 0usize..12), 0..=20),
    )
        .prop_map(|(seqs, raw_edges)| {
            let mut builder = GraphBuilder::new();
            let ids: Vec<NodeId> = seqs
                .iter()
                .map(|codes| {
                    let seq: DnaSeq = codes.iter().copied().map(Base::from_code_masked).collect();
                    builder.add_node(seq).expect("non-empty node")
                })
                .collect();
            let mut seen = std::collections::HashSet::new();
            for (a, b) in raw_edges {
                let (a, b) = (a % ids.len(), b % ids.len());
                // Forward edges only keep the random graph acyclic.
                if a < b && seen.insert((a, b)) {
                    builder.add_edge(ids[a], ids[b]).expect("valid edge");
                }
            }
            builder.finish().expect("acyclic by construction")
        })
}

/// A small but non-trivial fixture file for the corruption tests.
fn fixture() -> PersistedIndex {
    let text: DnaSeq = "ACGTTGCAGTCATGCAACGGTTAC"
        .repeat(90)
        .parse()
        .expect("valid bases");
    let graph = linear_graph(&text, 64).expect("non-empty reference");
    let index = GraphIndex::build(&graph, MinimizerScheme::new(5, 11), 6);
    let freq_threshold = frequency_threshold(&index, 0.01);
    PersistedIndex {
        graph,
        index,
        discard_frac: 0.01,
        freq_threshold,
        changelog: None,
        provenance: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode → encode is byte-identical for arbitrary graphs,
    /// schemes, and metadata (field-level equality via re-serialization,
    /// plus behavioral equality of the graph and index).
    #[test]
    fn round_trip_is_byte_identical(
        graph in arb_graph(),
        w in 1usize..8,
        k in 1usize..12,
        lexicographic in any::<bool>(),
        bucket_bits in 1u32..10,
        discard_frac in 0.0f64..1.0,
    ) {
        let scheme = if lexicographic {
            MinimizerScheme::lexicographic(w, k)
        } else {
            MinimizerScheme::new(w, k)
        };
        let index = GraphIndex::build(&graph, scheme, bucket_bits);
        let persisted = PersistedIndex {
            freq_threshold: frequency_threshold(&index, discard_frac),
            graph,
            index,
            discard_frac,
            changelog: None,
            provenance: None,
        };
        let bytes = encode_index(&persisted);
        let loaded = decode_index(&bytes).expect("own encoding must load");
        prop_assert_eq!(&encode_index(&loaded), &bytes);
        prop_assert_eq!(loaded.graph.node_count(), persisted.graph.node_count());
        prop_assert_eq!(loaded.graph.edge_count(), persisted.graph.edge_count());
        for node in persisted.graph.node_ids() {
            prop_assert_eq!(loaded.graph.seq(node), persisted.graph.seq(node));
        }
        prop_assert_eq!(
            loaded.index.distinct_minimizers(),
            persisted.index.distinct_minimizers()
        );
        prop_assert_eq!(loaded.freq_threshold, persisted.freq_threshold);
        prop_assert_eq!(loaded.discard_frac.to_bits(), persisted.discard_frac.to_bits());
    }

    /// Flipping any single byte outside the section-count field makes the
    /// file fail to load with a named error (payload flips are caught by
    /// the section checksums; header flips by the structural checks).
    #[test]
    fn single_byte_flips_yield_named_errors(
        seed_pos in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let bytes = encode_index(&fixture());
        let pos = seed_pos % bytes.len();
        // Bytes 12..16 hold the section count; some flips there only add
        // ignored trailing sections, which is compatibility, not
        // corruption — every other byte must be load-bearing.
        prop_assume!(!(12..16).contains(&pos));
        let mut flipped = bytes.clone();
        flipped[pos] ^= mask;
        let err = decode_index(&flipped).expect_err("flip must be detected");
        match pos {
            0..=7 => prop_assert!(matches!(err, PersistError::BadMagic)),
            8..=11 => prop_assert!(matches!(err, PersistError::UnsupportedVersion { .. })),
            _ if pos >= HEADER_BYTES => prop_assert!(
                matches!(
                    err,
                    PersistError::ChecksumMismatch { .. } | PersistError::Truncated { .. }
                ),
                "payload flip at {pos} gave {err}"
            ),
            _ => {} // table flips: any named error is acceptable
        }
    }
}

#[test]
fn every_truncation_point_errors_instead_of_panicking() {
    let bytes = encode_index(&fixture());
    assert!(bytes.len() > HEADER_BYTES);
    for cut in 0..bytes.len() {
        let err = decode_index(&bytes[..cut]).expect_err("truncated file must not load");
        match err {
            PersistError::BadMagic
            | PersistError::Truncated { .. }
            | PersistError::ChecksumMismatch { .. }
            | PersistError::Corrupt { .. } => {}
            other => panic!("truncation at {cut} gave unexpected error {other}"),
        }
    }
}

#[test]
fn bad_magic_and_version_skew_are_named() {
    let bytes = encode_index(&fixture());

    let mut wrong_magic = bytes.clone();
    wrong_magic[..8].copy_from_slice(b"NOTSGRM\0");
    assert!(matches!(
        decode_index(&wrong_magic),
        Err(PersistError::BadMagic)
    ));

    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&(INDEX_FORMAT_VERSION + 1).to_le_bytes());
    match decode_index(&future) {
        Err(PersistError::UnsupportedVersion { found }) => {
            assert_eq!(found, INDEX_FORMAT_VERSION + 1);
        }
        other => panic!("version skew gave {other:?}"),
    }

    // The happy path still works, and the magic is what the docs claim.
    assert_eq!(&bytes[..8], &INDEX_MAGIC);
    assert!(decode_index(&bytes).is_ok());
}

#[test]
fn empty_and_tiny_inputs_error_cleanly() {
    for len in 0..INDEX_MAGIC.len() {
        assert!(matches!(
            decode_index(&vec![0u8; len]),
            Err(PersistError::BadMagic | PersistError::Truncated { .. })
        ));
    }
}

/// A mapper reconstructed from a loaded index maps every read exactly as
/// the mapper the index was built from — the contract `segram serve`
/// relies on for byte-identical output.
#[test]
fn built_and_loaded_mappers_agree_on_every_read() {
    let dataset = DatasetConfig::tiny(123).illumina(100);
    let config = SegramConfig::short_reads();
    let built = segram_core::SegramMapper::new(dataset.graph().clone(), config);

    let persisted = PersistedIndex {
        graph: built.graph().clone(),
        index: built.index().clone(),
        discard_frac: config.discard_frac,
        freq_threshold: built.freq_threshold(),
        changelog: None,
        provenance: None,
    };
    let loaded = decode_index(&encode_index(&persisted)).expect("round trip");
    let reloaded = segram_core::SegramMapper::from_parts(
        Arc::new(loaded.graph),
        loaded.index,
        config,
        loaded.freq_threshold,
    );

    for read in &dataset.reads {
        let (a, _) = built.map_read(&read.seq);
        let (b, _) = reloaded.map_read(&read.seq);
        assert_eq!(a, b, "mapping diverged for a read");
    }
}
