//! The filter contract, enforced by property testing: every filter's
//! lower bound never exceeds the exact semi-global edit distance, on
//! linear candidates and on graph regions alike. A violated bound would
//! mean a pre-alignment filter can silently drop a correct mapping.

use segram_testkit::prelude::*;

use segram_align::{graph_dp_distance, semiglobal_distance, StartMode};
use segram_filter::{
    filter_region, BaseCountFilter, EditLowerBound, FilterSpec, QGramFilter, ShiftedHammingFilter,
    SneakySnakeFilter,
};
use segram_graph::{build_graph, Base, DnaSeq, LinearizedGraph, Variant, VariantSet, BASES};

fn base_strategy() -> impl Strategy<Value = Base> {
    prop::sample::select(BASES.to_vec())
}

fn seq_strategy(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<Base>> {
    prop::collection::vec(base_strategy(), min_len..=max_len)
}

/// An edit script: (position selector, kind, replacement base).
fn edits_strategy(max_edits: usize) -> impl Strategy<Value = Vec<(prop::sample::Index, u8, Base)>> {
    prop::collection::vec(
        (any::<prop::sample::Index>(), 0u8..3, base_strategy()),
        0..=max_edits,
    )
}

/// Applies an edit script to a sequence (clamping positions).
fn apply_edits(mut seq: Vec<Base>, edits: &[(prop::sample::Index, u8, Base)]) -> Vec<Base> {
    for (idx, kind, base) in edits {
        if seq.is_empty() {
            seq.push(*base);
            continue;
        }
        let pos = idx.index(seq.len());
        match kind {
            0 => seq[pos] = *base,       // substitution
            1 => seq.insert(pos, *base), // insertion
            _ => {
                seq.remove(pos); // deletion
            }
        }
    }
    seq
}

fn all_specs() -> [FilterSpec; 5] {
    [
        FilterSpec::BaseCount,
        FilterSpec::QGram { q: 4 },
        FilterSpec::ShiftedHamming,
        FilterSpec::SneakySnake,
        FilterSpec::Cascade { q: 4 },
    ]
}

proptest! {
    /// Core soundness on planted candidates: read = edited substring.
    #[test]
    fn bounds_never_exceed_true_distance_on_planted_pairs(
        text in seq_strategy(40, 160),
        start_sel in any::<prop::sample::Index>(),
        len_sel in any::<prop::sample::Index>(),
        edits in edits_strategy(6),
        k in 0u32..12,
    ) {
        let start = start_sel.index(text.len() / 2);
        let len = 10 + len_sel.index(text.len() - start - 10).min(text.len() - start - 1);
        let read = apply_edits(text[start..start + len].to_vec(), &edits);
        prop_assume!(!read.is_empty());
        let truth = semiglobal_distance(&text, &read).unwrap();

        for filter in [
            &BaseCountFilter as &dyn EditLowerBound,
            &QGramFilter::new(4),
            &QGramFilter::new(8),
            &ShiftedHammingFilter,
            &SneakySnakeFilter,
        ] {
            let bound = filter.lower_bound(&read, &text, k);
            // Bounds above k only assert "> k", so only check them when
            // they claim to be within the threshold range or truth <= k.
            if truth <= k {
                prop_assert!(
                    bound <= truth,
                    "{}: bound {bound} exceeds true distance {truth} (k={k})",
                    filter.name()
                );
            }
        }
    }

    /// Soundness on arbitrary (unrelated) pairs, where bounds are large.
    #[test]
    fn bounds_never_exceed_true_distance_on_random_pairs(
        text in seq_strategy(20, 80),
        read in seq_strategy(5, 60),
    ) {
        let truth = semiglobal_distance(&text, &read).unwrap();
        let k = truth; // the boundary case: filters must accept at k = truth
        for filter in [
            &BaseCountFilter as &dyn EditLowerBound,
            &QGramFilter::new(3),
            &ShiftedHammingFilter,
            &SneakySnakeFilter,
        ] {
            let bound = filter.lower_bound(&read, &text, k);
            prop_assert!(
                bound <= truth,
                "{}: bound {bound} exceeds true distance {truth}",
                filter.name()
            );
            prop_assert!(filter.accepts(&read, &text, k));
        }
        for spec in all_specs() {
            prop_assert!(spec.accepts(&read, &text, k), "{} rejected at k = truth", spec.name());
        }
    }

    /// Graph soundness: a read spelled along any path of a variant graph
    /// (plus noise) is never rejected by `filter_region` at `k >= truth`.
    #[test]
    fn region_filtering_never_rejects_reachable_reads(
        ref_seq in seq_strategy(60, 120),
        snp_positions in prop::collection::btree_set(5usize..55, 0..4),
        take_alt in prop::collection::vec(any::<bool>(), 4),
        edits in edits_strategy(3),
    ) {
        // Build a graph with SNP bubbles.
        let reference: DnaSeq = ref_seq.iter().copied().collect();
        let mut variants = VariantSet::new();
        let mut alt_bases = Vec::new();
        for (i, &pos) in snp_positions.iter().enumerate() {
            let ref_base = ref_seq[pos];
            let alt = BASES.into_iter().find(|&b| b != ref_base).unwrap();
            variants.push(Variant::snp(pos as u64, alt));
            alt_bases.push((pos, alt, take_alt[i % take_alt.len()]));
        }
        let built = build_graph(&reference, variants.into_sorted()).unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();

        // Spell a read along the chosen allele path.
        let mut path_seq = ref_seq.clone();
        for &(pos, alt, take) in &alt_bases {
            if take {
                path_seq[pos] = alt;
            }
        }
        let read = apply_edits(path_seq[10..50.min(path_seq.len())].to_vec(), &edits);
        prop_assume!(read.len() >= 5);

        let read_dna: DnaSeq = read.iter().copied().collect();
        let (truth, _) = graph_dp_distance(&lin, &read_dna, StartMode::Free).unwrap();

        for spec in all_specs() {
            let verdict = filter_region(spec, &read, &lin, truth);
            prop_assert!(
                verdict.accepted,
                "{} rejected a read with true graph distance {truth} (bound {})",
                spec.name(),
                verdict.lower_bound
            );
        }
    }

    /// The cascade is at least as tight as each member on linear regions.
    #[test]
    fn cascade_dominates_members(
        text in seq_strategy(30, 90),
        read in seq_strategy(8, 40),
        k in 0u32..10,
    ) {
        let cascade = FilterSpec::Cascade { q: 4 }.lower_bound(&read, &text, k);
        if cascade <= k {
            for member in [
                FilterSpec::BaseCount,
                FilterSpec::QGram { q: 4 },
                FilterSpec::ShiftedHamming,
                FilterSpec::SneakySnake,
            ] {
                let b = member.lower_bound(&read, &text, k);
                prop_assert!(
                    cascade >= b,
                    "cascade {cascade} below member {} = {b}",
                    member.name()
                );
            }
        }
    }
}
