//! The proptest-style macro surface: [`proptest!`](crate::proptest),
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, `prop_oneof!`, and
//! `prop_compose!`.

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministically seeded
/// generated inputs (see [`crate::prop::resolve_cases`] for the case
/// budget). An optional leading `#![proptest_config(...)]` sets the
/// requested case count.
///
/// On failure the runner reports the failing case's seed and every
/// generated input (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::prop::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`](crate::proptest).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prop::ProptestConfig = $config;
                let cases = $crate::prop::resolve_cases(config.cases);
                let name_hash = $crate::prop::hash_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed = 0u32;
                let mut attempt = 0u32;
                let max_attempts = cases.saturating_mul(20).max(64);
                while passed < cases && attempt < max_attempts {
                    let seed = $crate::prop::case_seed(name_hash, attempt);
                    attempt += 1;
                    let mut rng = <$crate::rng::ChaCha8Rng as $crate::rng::SeedableRng>
                        ::seed_from_u64(seed);
                    $(
                        let $arg = $crate::prop::Strategy::generate(&$strategy, &mut rng);
                    )+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::prop::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            }
                        )
                    );
                    match outcome {
                        Ok(Ok(())) => passed += 1,
                        Ok(Err($crate::prop::TestCaseError::Reject)) => {}
                        Ok(Err($crate::prop::TestCaseError::Fail(message))) => {
                            ::std::panic!(
                                "property failed: {}\n{}",
                                message,
                                $crate::__proptest_case_report!(
                                    seed; $($arg in $strategy),+
                                )
                            );
                        }
                        Err(payload) => {
                            ::std::eprintln!(
                                "{}",
                                $crate::__proptest_case_report!(
                                    seed; $($arg in $strategy),+
                                )
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
                ::std::assert!(
                    passed > 0,
                    "every generated case was rejected by prop_assume! \
                     ({attempt} attempts); loosen the assumption or strategy"
                );
            }
        )*
    };
}

/// Regenerates a failing case's inputs (generation is deterministic in the
/// case seed) and formats them for the failure report.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case_report {
    ($seed:expr; $($arg:ident in $strategy:expr),+) => {{
        let mut rng = <$crate::rng::ChaCha8Rng as $crate::rng::SeedableRng>
            ::seed_from_u64($seed);
        let mut report = ::std::format!("failing case (seed {:#018x}):\n", $seed);
        $(
            let value = $crate::prop::Strategy::generate(&$strategy, &mut rng);
            report.push_str(&::std::format!(
                "  {} = {:?}\n", stringify!($arg), value
            ));
        )+
        report
    }};
}

/// Asserts inside a [`proptest!`](crate::proptest) body; failure reports
/// the generated inputs instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::TestCaseError::Fail(
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), left, right
        );
    }};
}

/// Discards the current case (without counting it against the budget)
/// when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop::Union::new(::std::vec![
            $($crate::prop::Strategy::boxed($strategy)),+
        ])
    };
}

/// Composes named sub-strategies into a derived-value strategy: the
/// outer parameter list becomes the generated function's arguments, the
/// inner one draws from strategies, and the body builds the value.
///
/// ```
/// use segram_testkit::prelude::*;
///
/// #[derive(Clone, Debug)]
/// struct Record {
///     id: String,
///     len: usize,
/// }
///
/// prop_compose! {
///     /// A record with a lowercase id and a length capped by `max_len`.
///     fn record(max_len: usize)(id in "[a-z]{1,4}", len in 1usize..100) -> Record {
///         Record { id, len: len.min(max_len) }
///     }
/// }
///
/// // The composed function returns an ordinary `Strategy`.
/// let mut rng = ChaCha8Rng::seed_from_u64(7);
/// let sample = record(10).generate(&mut rng);
/// assert!(!sample.id.is_empty());
/// assert!(sample.len <= 10);
/// ```
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($outer:tt)* )
                 ( $($arg:ident in $strategy:expr),+ $(,)? )
                 -> $output:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::prop::Strategy<Value = $output> {
            $crate::prop::map(($($strategy,)+), move |($($arg,)+)| $body)
        }
    };
}
