//! **Section 3 observations**, re-measured on the Rust software baselines:
//!
//! * Observation 1 — the alignment step dominates end-to-end mapping time
//!   (paper: 50–95 %);
//! * Observation 4 — software mappers scale sublinearly with threads
//!   (paper: parallel efficiency under 0.4 at 40 threads; we measure on the
//!   local core count).
//!
//! Observations 2–3 (cache miss rates, DRAM latency) require hardware
//! performance counters; their *architectural consequences* are what the
//! `segram-hw` scratchpad/HBM models encode instead (see DESIGN.md).

use segram_bench::experiments::run_software;
use segram_bench::{header, row, write_results, Scale};
use segram_core::{map_with_threads, GraphAlignerLike, SegramConfig, SegramMapper, VgLike};
use segram_testkit::Serialize;

#[derive(Serialize)]
struct ScalingPoint {
    threads: usize,
    seconds: f64,
    speedup: f64,
    efficiency: f64,
}

#[derive(Serialize)]
struct ObsSoftware {
    alignment_fraction_graphaligner_like: f64,
    alignment_fraction_vg_like: f64,
    scaling: Vec<ScalingPoint>,
}

fn main() {
    let scale = Scale::from_env();
    let dataset = scale.dataset_config(211).illumina(150);

    header("Observation 1: step-time breakdown of software mapping");
    let ga = GraphAlignerLike::new(dataset.graph().clone(), SegramConfig::short_reads());
    let vg = VgLike::new(dataset.graph().clone(), SegramConfig::short_reads());
    let ga_result = run_software(&ga, &dataset.reads);
    let vg_result = run_software(&vg, &dataset.reads);
    row(
        "GraphAligner-like alignment fraction",
        format!(
            "{:.0}% (paper: 50-95%)",
            ga_result.alignment_fraction * 100.0
        ),
    );
    row(
        "vg-like alignment fraction",
        format!(
            "{:.0}% (paper: 50-95%)",
            vg_result.alignment_fraction * 100.0
        ),
    );

    header("Observation 4: thread scaling of software mapping");
    let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let threads_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut scaling = Vec::new();
    let mut base_seconds = 0.0;
    println!(
        "  {:>9} {:>10} {:>9} {:>11}",
        "threads", "seconds", "speedup", "efficiency"
    );
    for threads in [1usize, 2, 4, 8] {
        if threads > threads_available * 2 {
            break;
        }
        // `map_with_threads` is a thin wrapper over `MapEngine` since the
        // stage-based refactor, so this measures the engine directly.
        let (seconds, _) = map_with_threads(&mapper, &dataset.reads, threads);
        if threads == 1 {
            base_seconds = seconds;
        }
        let speedup = base_seconds / seconds;
        let efficiency = speedup / threads as f64;
        println!(
            "  {:>9} {:>10.3} {:>8.2}x {:>10.2}",
            threads, seconds, speedup, efficiency
        );
        scaling.push(ScalingPoint {
            threads,
            seconds,
            speedup,
            efficiency,
        });
    }
    println!("\n  paper: parallel efficiency does not exceed 0.4 at 40 threads on a");
    println!("  20-core Xeon; small inputs and shared caches keep ours sublinear too.");

    write_results(
        "obs_software",
        &ObsSoftware {
            alignment_fraction_graphaligner_like: ga_result.alignment_fraction,
            alignment_fraction_vg_like: vg_result.alignment_fraction,
            scaling,
        },
    );
}
