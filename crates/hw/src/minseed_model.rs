//! Cycle/time model of the MinSeed accelerator (Section 8.1).
//!
//! MinSeed's compute is trivial ("only basic operations ... implemented
//! with simple logic"); its cost is dominated by the three memory-access
//! phases against the HBM channel: minimizer-frequency lookups, seed-
//! location fetches, and subgraph fetches (steps 3, 5 and 7 of Figure 4).

use crate::hbm::HbmConfig;

/// A per-read seeding workload measured from the software pipeline: the
/// quantities that determine MinSeed's memory traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeedWorkload {
    /// Read length in bases.
    pub read_len: usize,
    /// Minimizers extracted per read.
    pub minimizers_per_read: f64,
    /// Minimizers surviving the frequency filter.
    pub surviving_minimizers: f64,
    /// Seed locations fetched per read (sum over surviving minimizers).
    pub seeds_per_read: f64,
    /// Average candidate-region length in characters.
    pub avg_region_len: f64,
}

/// The MinSeed accelerator model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinSeedHwConfig {
    /// Clock frequency in GHz (paper: 1 GHz).
    pub clock_ghz: f64,
    /// Concurrent outstanding requests per phase (bank-level parallelism
    /// inside the channel; frequency lookups are independent).
    pub memory_overlap: u64,
}

impl Default for MinSeedHwConfig {
    fn default() -> Self {
        Self {
            clock_ghz: 1.0,
            memory_overlap: 8,
        }
    }
}

impl MinSeedHwConfig {
    /// Compute cycles to find the minimizers of one read: the single-loop
    /// `O(m)` algorithm of Section 6 plus the filter/region logic (a few
    /// cycles per minimizer).
    pub fn compute_cycles(&self, workload: &SeedWorkload) -> u64 {
        workload.read_len as u64 + (workload.minimizers_per_read * 4.0) as u64
    }

    /// Memory time (ns) for the frequency lookups: one random access per
    /// minimizer (second-level entry, 12 B).
    pub fn frequency_lookup_ns(&self, workload: &SeedWorkload, hbm: &HbmConfig) -> f64 {
        hbm.batched_access_ns(
            workload.minimizers_per_read.round() as u64,
            12,
            self.memory_overlap,
        )
    }

    /// Memory time (ns) to fetch seed locations: one random access per
    /// surviving minimizer, transferring its 8 B locations.
    pub fn seed_fetch_ns(&self, workload: &SeedWorkload, hbm: &HbmConfig) -> f64 {
        let surviving = workload.surviving_minimizers.max(0.0).round() as u64;
        if surviving == 0 {
            return 0.0;
        }
        let avg_locs_bytes =
            (workload.seeds_per_read / workload.surviving_minimizers.max(1.0) * 8.0) as u64;
        hbm.batched_access_ns(surviving, avg_locs_bytes.max(8), self.memory_overlap)
    }

    /// Memory time (ns) to fetch the candidate subgraphs: one streaming
    /// transfer per seed. A region of `L` characters costs roughly
    /// `L / 4` B of packed characters plus node/edge-table metadata
    /// (~32 B per ~32-char node).
    pub fn subgraph_fetch_ns(&self, workload: &SeedWorkload, hbm: &HbmConfig) -> f64 {
        let region_bytes =
            (workload.avg_region_len / 4.0 + (workload.avg_region_len / 32.0) * 36.0) as u64;
        let seeds = workload.seeds_per_read.round() as u64;
        hbm.batched_access_ns(seeds, region_bytes.max(64), self.memory_overlap)
    }

    /// Total MinSeed time per read in nanoseconds (compute + all three
    /// memory phases; phases are serial in the paper's step ordering).
    pub fn per_read_ns(&self, workload: &SeedWorkload, hbm: &HbmConfig) -> f64 {
        self.compute_cycles(workload) as f64 / self.clock_ghz
            + self.frequency_lookup_ns(workload, hbm)
            + self.seed_fetch_ns(workload, hbm)
            + self.subgraph_fetch_ns(workload, hbm)
    }

    /// MinSeed time attributable to a single seed (used for the pipelined
    /// steady-state comparison against one BitAlign alignment).
    pub fn per_seed_ns(&self, workload: &SeedWorkload, hbm: &HbmConfig) -> f64 {
        let seeds = workload.seeds_per_read.max(1.0);
        self.per_read_ns(workload, hbm) / seeds
    }

    /// Per-read time under the batching approach of Section 8.3, used when
    /// the read's minimizers exceed the minimizer scratchpad: each batch
    /// re-generates minimizers from the read ("the next batch will be
    /// generated out of the read"), so the compute pass repeats per batch
    /// while memory traffic is unchanged.
    pub fn batched_per_read_ns(
        &self,
        workload: &SeedWorkload,
        hbm: &HbmConfig,
        scratchpad: &crate::scratchpad::MinSeedScratchpads,
    ) -> f64 {
        let capacity = (scratchpad.minimizer.usable_bytes() / 10).max(1); // 10 B/minimizer
        let batches = (workload.minimizers_per_read.ceil() as u64)
            .div_ceil(capacity)
            .max(1);
        let extra_passes = (batches - 1) as f64;
        self.per_read_ns(workload, hbm)
            + extra_passes * self.compute_cycles(workload) as f64 / self.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn long_read_workload() -> SeedWorkload {
        SeedWorkload {
            read_len: 10_000,
            minimizers_per_read: 1200.0,
            surviving_minimizers: 1100.0,
            seeds_per_read: 3500.0,
            avg_region_len: 11_000.0,
        }
    }

    #[test]
    fn compute_is_linear_in_read_length() {
        let hw = MinSeedHwConfig::default();
        let w = long_read_workload();
        assert!(hw.compute_cycles(&w) >= 10_000);
        let short = SeedWorkload {
            read_len: 100,
            minimizers_per_read: 12.0,
            ..w
        };
        assert!(hw.compute_cycles(&short) < 200);
    }

    #[test]
    fn memory_phases_dominate_for_long_reads() {
        // Observation 3: seeding is DRAM-latency bound.
        let hw = MinSeedHwConfig::default();
        let hbm = HbmConfig::default();
        let w = long_read_workload();
        let compute_ns = hw.compute_cycles(&w) as f64 / hw.clock_ghz;
        let memory_ns = hw.per_read_ns(&w, &hbm) - compute_ns;
        assert!(
            memory_ns > compute_ns,
            "memory {memory_ns} compute {compute_ns}"
        );
    }

    #[test]
    fn zero_surviving_minimizers_cost_nothing_to_fetch() {
        let hw = MinSeedHwConfig::default();
        let hbm = HbmConfig::default();
        let w = SeedWorkload {
            read_len: 100,
            minimizers_per_read: 10.0,
            surviving_minimizers: 0.0,
            seeds_per_read: 0.0,
            avg_region_len: 0.0,
        };
        assert_eq!(hw.seed_fetch_ns(&w, &hbm), 0.0);
        assert!(hw.per_read_ns(&w, &hbm) > 0.0); // lookups still happen
    }

    #[test]
    fn batching_only_kicks_in_beyond_capacity() {
        let hw = MinSeedHwConfig::default();
        let hbm = HbmConfig::default();
        let pads = crate::scratchpad::MinSeedScratchpads::default();
        // 2 048 minimizers fit a buffer: no extra passes.
        let small = long_read_workload(); // 1 200 minimizers
        assert_eq!(
            hw.batched_per_read_ns(&small, &hbm, &pads),
            hw.per_read_ns(&small, &hbm)
        );
        // 5 000 minimizers -> 3 batches -> 2 extra compute passes.
        let big = SeedWorkload {
            minimizers_per_read: 5_000.0,
            ..long_read_workload()
        };
        let extra = hw.batched_per_read_ns(&big, &hbm, &pads) - hw.per_read_ns(&big, &hbm);
        let one_pass = hw.compute_cycles(&big) as f64 / hw.clock_ghz;
        assert!((extra - 2.0 * one_pass).abs() < 1e-6, "extra {extra}");
    }

    #[test]
    fn per_seed_cost_is_small_next_to_bitalign() {
        // The pipeline hides MinSeed behind BitAlign (Section 8.3); with
        // the paper-shaped workload, per-seed MinSeed time must be below
        // one 10 kbp BitAlign alignment (34 µs).
        let hw = MinSeedHwConfig::default();
        let hbm = HbmConfig::default();
        let per_seed = hw.per_seed_ns(&long_read_workload(), &hbm);
        assert!(per_seed < 34_000.0, "per seed {per_seed} ns");
    }
}
