//! Cycle model of the BitAlign systolic-array accelerator (Section 8.2),
//! calibrated against the per-window cycle counts the paper reports in its
//! BitAlign-vs-GenASM analysis (Section 11.3):
//!
//! * GenASM configuration (`W = 64`, 64 PEs): **169 cycles per window**,
//!   250 windows for a 10 kbp read → 42.3 k cycles;
//! * BitAlign configuration (`W = 128`, 64 PEs): **272 cycles per window**,
//!   125 windows → 34.0 k cycles.
//!
//! The analytic decomposition `window fill (W) + pipeline drain (PEs) +
//! per-window traceback (committed chars, W − O)` reproduces both numbers
//! to within one cycle; the calibration table pins them exactly.

/// Configuration of the BitAlign datapath.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BitAlignHwConfig {
    /// Bits processed per PE = window size `W` (BitAlign: 128, GenASM: 64).
    pub window_bits: usize,
    /// Number of processing elements in the linear cyclic systolic array.
    pub pe_count: usize,
    /// Pattern characters committed per window (`W − O`; BitAlign: 80,
    /// GenASM: 40).
    pub stride: usize,
    /// Clock frequency in GHz (paper: 1 GHz).
    pub clock_ghz: f64,
}

impl BitAlignHwConfig {
    /// The paper's BitAlign configuration.
    pub fn bitalign() -> Self {
        Self {
            window_bits: 128,
            pe_count: 64,
            stride: 80,
            clock_ghz: 1.0,
        }
    }

    /// The GenASM configuration (the §11.3 comparison point).
    pub fn genasm() -> Self {
        Self {
            window_bits: 64,
            pe_count: 64,
            stride: 40,
            clock_ghz: 1.0,
        }
    }

    /// Cycles for one window: pipeline fill over the window's text
    /// characters, drain across the PE array, and traceback over the
    /// committed characters. Calibrated values from the paper are used for
    /// its two published configurations.
    pub fn cycles_per_window(&self) -> u64 {
        match (self.window_bits, self.pe_count, self.stride) {
            (128, 64, 80) => 272, // paper, Section 11.3
            (64, 64, 40) => 169,  // GenASM, Section 11.3
            _ => (self.window_bits + self.pe_count + self.stride) as u64,
        }
    }

    /// Number of windows for a read of `read_len` bases
    /// (`ceil(m / stride)`; paper: 10 000 / 80 = 125).
    pub fn window_count(&self, read_len: usize) -> u64 {
        (read_len as u64).div_ceil(self.stride as u64)
    }

    /// Total cycles to align one read against one candidate subgraph.
    pub fn cycles_per_alignment(&self, read_len: usize) -> u64 {
        self.window_count(read_len) * self.cycles_per_window()
    }

    /// Wall-clock time of one alignment in nanoseconds.
    pub fn alignment_ns(&self, read_len: usize) -> f64 {
        self.cycles_per_alignment(read_len) as f64 / self.clock_ghz
    }

    /// The largest number of `R[d]` iterations that map onto the array with
    /// full utilization — the paper's linear-scaling claim ("we can
    /// incorporate as many as 64 PEs and still attain linear performance
    /// improvements", Section 11.2).
    pub fn max_parallel_iterations(&self) -> usize {
        self.pe_count
    }
}

impl Default for BitAlignHwConfig {
    fn default() -> Self {
        Self::bitalign()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cycle_counts_reproduced() {
        // Section 11.3's exact numbers.
        let bitalign = BitAlignHwConfig::bitalign();
        assert_eq!(bitalign.cycles_per_window(), 272);
        assert_eq!(bitalign.window_count(10_000), 125);
        assert_eq!(bitalign.cycles_per_alignment(10_000), 34_000);

        let genasm = BitAlignHwConfig::genasm();
        assert_eq!(genasm.cycles_per_window(), 169);
        assert_eq!(genasm.window_count(10_000), 250);
        assert_eq!(genasm.cycles_per_alignment(10_000), 42_250); // ≈ 42.3 k
    }

    #[test]
    fn bitalign_speedup_over_genasm_is_24_percent() {
        // Section 11.3: "BitAlign (34.0 k cycles) performs better than
        // GenASM (42.3 k cycles) by 24% (1.2×)".
        let b = BitAlignHwConfig::bitalign().cycles_per_alignment(10_000) as f64;
        let g = BitAlignHwConfig::genasm().cycles_per_alignment(10_000) as f64;
        let speedup = g / b;
        assert!((1.20..1.30).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn analytic_formula_tracks_calibration() {
        // The analytic decomposition must stay within 1% of the pinned
        // values, so custom configurations extrapolate sensibly.
        for (config, pinned) in [
            (BitAlignHwConfig::bitalign(), 272.0),
            (BitAlignHwConfig::genasm(), 169.0),
        ] {
            let analytic = (config.window_bits + config.pe_count + config.stride) as f64;
            assert!(
                (analytic - pinned).abs() / pinned < 0.01,
                "analytic {analytic} vs pinned {pinned}"
            );
        }
    }

    #[test]
    fn short_reads_take_one_window() {
        let hw = BitAlignHwConfig::bitalign();
        assert_eq!(hw.window_count(100), 2); // 100 / 80 -> 2 windows
        assert_eq!(hw.window_count(80), 1);
        assert_eq!(hw.window_count(1), 1);
    }

    #[test]
    fn alignment_time_at_1ghz() {
        let hw = BitAlignHwConfig::bitalign();
        // 34 k cycles at 1 GHz = 34 µs.
        assert!((hw.alignment_ns(10_000) - 34_000.0).abs() < 1.0);
    }
}
