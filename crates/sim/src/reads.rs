//! Graph-aware read simulation, standing in for PBSIM2 (long reads) and
//! Mason (short reads) from Section 10 of the paper.
//!
//! Reads are sampled by walking a random path through the genome graph
//! (so reads may spell *any* combination of alleles, which is exactly what
//! makes sequence-to-graph mapping necessary), then corrupted with a
//! technology-specific error profile.

use segram_graph::{DnaSeq, GenomeGraph, GraphPos, NodeId, BASES};
use segram_testkit::rng::ChaCha8Rng;
use segram_testkit::rng::Rng;
use segram_testkit::rng::SeedableRng;

/// Sequencing-error profile: independent per-base substitution, insertion,
/// and deletion probabilities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorProfile {
    /// Substitution probability per base.
    pub sub: f64,
    /// Insertion probability per base.
    pub ins: f64,
    /// Deletion probability per base.
    pub del: f64,
}

impl ErrorProfile {
    /// Total error rate.
    pub fn total(&self) -> f64 {
        self.sub + self.ins + self.del
    }

    /// Error-free reads.
    pub fn perfect() -> Self {
        Self {
            sub: 0.0,
            ins: 0.0,
            del: 0.0,
        }
    }

    /// Illumina-like short-read profile (≈1 % error, substitution-heavy) —
    /// the paper's short-read datasets use a 1 % error rate.
    pub fn illumina() -> Self {
        Self {
            sub: 0.009,
            ins: 0.0005,
            del: 0.0005,
        }
    }

    /// PacBio-like long-read profile at 5 % total error (insertion-heavy).
    pub fn pacbio_5() -> Self {
        Self {
            sub: 0.010,
            ins: 0.025,
            del: 0.015,
        }
    }

    /// ONT-like long-read profile at 10 % total error.
    pub fn ont_10() -> Self {
        Self {
            sub: 0.035,
            ins: 0.030,
            del: 0.035,
        }
    }
}

/// Which reference strand a read was sequenced from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Strand {
    /// The read spells the reference path directly.
    #[default]
    Forward,
    /// The read is the reverse complement of the sampled path.
    Reverse,
}

/// A simulated read with its ground truth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimulatedRead {
    /// Sequential read id within its dataset.
    pub id: u32,
    /// The (error-corrupted) read sequence, as the sequencer would emit it
    /// (already reverse-complemented for [`Strand::Reverse`] reads).
    pub seq: DnaSeq,
    /// Ground truth: graph position of the first sampled character.
    pub true_start: GraphPos,
    /// Ground truth: linear coordinate of the first sampled character.
    pub true_start_linear: u64,
    /// Number of sequencing errors injected.
    pub injected_errors: u32,
    /// Strand the read was sequenced from.
    pub strand: Strand,
}

/// Configuration for [`simulate_reads`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadConfig {
    /// Number of reads.
    pub count: usize,
    /// Read length in bases (before error injection; insertions/deletions
    /// are applied while walking, keeping the final length exact).
    pub len: usize,
    /// Error profile.
    pub errors: ErrorProfile,
    /// RNG seed.
    pub seed: u64,
}

impl ReadConfig {
    /// The paper's long-read shape: 10 kbp reads (PacBio/ONT, Section 10).
    /// Scale `len` down for laptop-sized experiments via the field.
    pub fn long_reads(count: usize, len: usize, errors: ErrorProfile, seed: u64) -> Self {
        Self {
            count,
            len,
            errors,
            seed,
        }
    }

    /// The paper's short-read shape: 100/150/250 bp Illumina reads.
    pub fn short_reads(count: usize, len: usize, seed: u64) -> Self {
        Self {
            count,
            len,
            errors: ErrorProfile::illumina(),
            seed,
        }
    }
}

/// Samples `config.count` reads by walking random paths through `graph`.
///
/// Start positions are drawn uniformly over characters whose forward paths
/// are long enough; branch choices at each node are uniform. Reads are
/// deterministic in `config.seed`.
///
/// # Panics
///
/// Panics when the graph is shorter than one read length or `len == 0`.
///
/// # Examples
///
/// ```
/// use segram_sim::{simulate_reads, ErrorProfile, ReadConfig};
/// use segram_graph::linear_graph;
///
/// let graph = linear_graph(&"ACGTTGCA".repeat(100).parse()?, 32)?;
/// let reads = simulate_reads(&graph, &ReadConfig::short_reads(10, 50, 3));
/// assert_eq!(reads.len(), 10);
/// assert!(reads.iter().all(|r| r.seq.len() == 50));
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
pub fn simulate_reads(graph: &GenomeGraph, config: &ReadConfig) -> Vec<SimulatedRead> {
    assert!(config.len > 0, "read length must be positive");
    assert!(
        graph.total_chars() >= config.len as u64,
        "graph shorter than one read"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut reads = Vec::with_capacity(config.count);
    let mut id = 0u32;
    while reads.len() < config.count {
        // Leave room for a full-length walk on most draws.
        let max_start = graph.total_chars().saturating_sub(config.len as u64).max(1);
        let start_linear = rng.gen_range(0..max_start);
        let start = graph.graph_pos(start_linear).expect("start in bounds");
        if let Some(read) = walk_and_corrupt(graph, start, config, &mut rng, id) {
            let mut read = read;
            read.true_start_linear = start_linear;
            reads.push(read);
            id += 1;
        }
    }
    reads
}

/// Walks a random path from `start`, injecting errors on the fly.
/// Returns `None` when the walk runs out of graph before reaching the
/// requested length.
fn walk_and_corrupt(
    graph: &GenomeGraph,
    start: GraphPos,
    config: &ReadConfig,
    rng: &mut ChaCha8Rng,
    id: u32,
) -> Option<SimulatedRead> {
    let mut seq = DnaSeq::with_capacity(config.len);
    let mut node = start.node;
    let mut offset = start.offset as usize;
    let mut errors = 0u32;
    let e = &config.errors;
    while seq.len() < config.len {
        // Advance to the next reference character (following a random edge
        // at node boundaries).
        if offset >= graph.node_len(node) {
            let succs = graph.successors(node);
            if succs.is_empty() {
                return None; // ran off the end of the graph
            }
            node = succs[rng.gen_range(0..succs.len())];
            offset = 0;
            continue;
        }
        let ref_base = graph
            .base_at(GraphPos::new(node, offset as u32))
            .expect("walk stays in bounds");
        let roll: f64 = rng.gen();
        if roll < e.ins {
            // Insertion: emit a random base, do not consume the reference.
            seq.push(BASES[rng.gen_range(0..4)]);
            errors += 1;
        } else if roll < e.ins + e.del {
            // Deletion: consume the reference base without emitting.
            offset += 1;
            errors += 1;
        } else if roll < e.ins + e.del + e.sub {
            // Substitution.
            let alt = loop {
                let c = BASES[rng.gen_range(0..4)];
                if c != ref_base {
                    break c;
                }
            };
            seq.push(alt);
            offset += 1;
            errors += 1;
        } else {
            seq.push(ref_base);
            offset += 1;
        }
    }
    Some(SimulatedRead {
        id,
        seq,
        true_start: start,
        true_start_linear: 0, // filled by the caller
        injected_errors: errors,
        strand: Strand::Forward,
    })
}

/// Like [`simulate_reads`], but flips each read to the reverse strand with
/// probability `reverse_frac` (sequencers read either strand with equal
/// probability; mappers must therefore try both orientations).
///
/// Ground-truth coordinates stay in forward-strand space: a correct mapper
/// reports the same `true_start_linear` after reverse-complementing the
/// read back.
///
/// # Panics
///
/// Panics when `reverse_frac` is outside `[0, 1]` (and under the same
/// conditions as [`simulate_reads`]).
pub fn simulate_stranded_reads(
    graph: &GenomeGraph,
    config: &ReadConfig,
    reverse_frac: f64,
) -> Vec<SimulatedRead> {
    assert!(
        (0.0..=1.0).contains(&reverse_frac),
        "reverse_frac must be within [0, 1]"
    );
    let mut reads = simulate_reads(graph, config);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5eed_5eed);
    for read in &mut reads {
        if rng.gen_bool(reverse_frac) {
            read.seq = read.seq.reverse_complement();
            read.strand = Strand::Reverse;
        }
    }
    reads
}

/// Samples one error-free path sequence of `len` characters starting at
/// `start` (used by tests that need ground-truth fragments).
pub fn path_fragment(
    graph: &GenomeGraph,
    start: GraphPos,
    len: usize,
    seed: u64,
) -> Option<DnaSeq> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let config = ReadConfig {
        count: 1,
        len,
        errors: ErrorProfile::perfect(),
        seed,
    };
    walk_and_corrupt(graph, start, &config, &mut rng, 0).map(|r| r.seq)
}

/// Returns the smallest `k` guaranteed (with margin) to admit an alignment
/// of a read produced with `profile`: `ceil(len * total_error * margin)`.
pub fn suggested_threshold(len: usize, profile: &ErrorProfile, margin: f64) -> u32 {
    ((len as f64) * profile.total() * margin).ceil() as u32 + 2
}

/// Node id of a read's true start (convenience for mapping-accuracy checks).
pub fn true_node(read: &SimulatedRead) -> NodeId {
    read.true_start.node
}

/// Measured error fraction across a dataset (injected errors / total bases).
pub fn measured_error_rate(reads: &[SimulatedRead]) -> f64 {
    let bases: usize = reads.iter().map(|r| r.seq.len()).sum();
    if bases == 0 {
        return 0.0;
    }
    let errors: u32 = reads.iter().map(|r| r.injected_errors).sum();
    errors as f64 / bases as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{generate_reference, GenomeConfig};
    use crate::variants::{simulate_variants, VariantConfig};
    use segram_graph::{build_graph, linear_graph};

    fn test_graph() -> GenomeGraph {
        let reference = generate_reference(&GenomeConfig::human_like(30_000, 21));
        let variants = simulate_variants(&reference, &VariantConfig::human_like(22));
        build_graph(&reference, variants).unwrap().graph
    }

    #[test]
    fn reads_have_exact_length_and_count() {
        let graph = test_graph();
        let reads = simulate_reads(
            &graph,
            &ReadConfig::long_reads(25, 1000, ErrorProfile::pacbio_5(), 1),
        );
        assert_eq!(reads.len(), 25);
        assert!(reads.iter().all(|r| r.seq.len() == 1000));
        // ids are sequential
        assert!(reads.iter().enumerate().all(|(i, r)| r.id == i as u32));
    }

    #[test]
    fn perfect_reads_spell_graph_paths() {
        let graph = linear_graph(&"ACGTTGCAGTCA".repeat(50).parse().unwrap(), 64).unwrap();
        let reads = simulate_reads(
            &graph,
            &ReadConfig {
                count: 5,
                len: 80,
                errors: ErrorProfile::perfect(),
                seed: 2,
            },
        );
        for read in &reads {
            assert_eq!(read.injected_errors, 0);
            // On a linear graph the read must be an exact substring at its
            // true linear offset.
            let frag = path_fragment(&graph, read.true_start, read.seq.len(), 0).unwrap();
            assert_eq!(read.seq, frag);
        }
    }

    #[test]
    fn error_rates_are_close_to_profile() {
        let graph = test_graph();
        for (profile, expect) in [
            (ErrorProfile::illumina(), 0.01),
            (ErrorProfile::pacbio_5(), 0.05),
            (ErrorProfile::ont_10(), 0.10),
        ] {
            let reads = simulate_reads(
                &graph,
                &ReadConfig {
                    count: 30,
                    len: 2000,
                    errors: profile,
                    seed: 5,
                },
            );
            let measured = measured_error_rate(&reads);
            assert!(
                (measured - expect).abs() < expect * 0.25 + 0.002,
                "profile {expect}: measured {measured}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let graph = test_graph();
        let c = ReadConfig::short_reads(10, 100, 77);
        assert_eq!(simulate_reads(&graph, &c), simulate_reads(&graph, &c));
    }

    #[test]
    fn suggested_threshold_scales() {
        let k = suggested_threshold(10_000, &ErrorProfile::ont_10(), 1.5);
        assert!(k > 1000 && k < 2500, "k = {k}");
        assert!(suggested_threshold(100, &ErrorProfile::perfect(), 1.0) >= 2);
    }

    #[test]
    fn stranded_reads_flip_roughly_half() {
        let graph = test_graph();
        let config = ReadConfig::short_reads(100, 80, 91);
        let reads = simulate_stranded_reads(&graph, &config, 0.5);
        let reverse = reads.iter().filter(|r| r.strand == Strand::Reverse).count();
        assert!((25..=75).contains(&reverse), "reverse count {reverse}");
        // A reversed read's reverse complement equals its forward twin.
        let forward_reads = simulate_reads(&graph, &config);
        for (stranded, forward) in reads.iter().zip(&forward_reads) {
            match stranded.strand {
                Strand::Forward => assert_eq!(stranded.seq, forward.seq),
                Strand::Reverse => {
                    assert_eq!(stranded.seq.reverse_complement(), forward.seq)
                }
            }
            assert_eq!(stranded.true_start_linear, forward.true_start_linear);
        }
    }

    #[test]
    fn reverse_frac_extremes() {
        let graph = test_graph();
        let config = ReadConfig::short_reads(10, 80, 92);
        assert!(simulate_stranded_reads(&graph, &config, 0.0)
            .iter()
            .all(|r| r.strand == Strand::Forward));
        assert!(simulate_stranded_reads(&graph, &config, 1.0)
            .iter()
            .all(|r| r.strand == Strand::Reverse));
    }

    #[test]
    fn reads_cover_the_graph_broadly() {
        let graph = test_graph();
        let reads = simulate_reads(&graph, &ReadConfig::short_reads(200, 64, 6));
        let first_quarter = reads
            .iter()
            .filter(|r| r.true_start_linear < graph.total_chars() / 4)
            .count();
        // Uniform starts: roughly a quarter land in the first quarter.
        assert!((20..=80).contains(&first_quarter), "{first_quarter}");
    }
}
