//! Pattern bitmasks: the per-character query-read pre-processing of
//! GenASM/Bitap ("we generate four pattern bitmasks for the query read,
//! one for each character in the alphabet", Section 7 / Algorithm 1 line 3).

use segram_graph::{Base, DnaSeq, ALPHABET_SIZE};

use crate::Bitvector;

/// The four pattern bitmasks of a query read, in *active-low* encoding:
/// bit `p` of `mask(c)` is 0 exactly when `pattern[m-1-p] == c`.
///
/// Bit `p` corresponds to the pattern *suffix of length `p + 1`*; a status
/// bitvector `R[d]` whose bit `m-1` is 0 therefore signals a full-pattern
/// alignment with at most `d` edits.
///
/// # Examples
///
/// ```
/// use segram_align::PatternBitmasks;
/// use segram_graph::Base;
///
/// let masks = PatternBitmasks::new(&"ACG".parse()?);
/// // bit 2 (suffix "ACG", head 'A') is 0 in mask(A)
/// assert!(!masks.mask(Base::A).bit(2));
/// assert!(masks.mask(Base::C).bit(2));
/// // bit 0 (suffix "G") is 0 in mask(G)
/// assert!(!masks.mask(Base::G).bit(0));
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternBitmasks {
    masks: [Bitvector; ALPHABET_SIZE],
    pattern: Vec<Base>,
}

impl PatternBitmasks {
    /// Pre-processes `pattern` into its four bitmasks.
    ///
    /// # Panics
    ///
    /// Panics when `pattern` is empty.
    pub fn new(pattern: &DnaSeq) -> Self {
        Self::from_bases(pattern.as_slice())
    }

    /// Pre-processes a base slice into its four bitmasks.
    ///
    /// # Panics
    ///
    /// Panics when `pattern` is empty.
    pub fn from_bases(pattern: &[Base]) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        let m = pattern.len();
        let mut masks = [
            Bitvector::all_ones(m),
            Bitvector::all_ones(m),
            Bitvector::all_ones(m),
            Bitvector::all_ones(m),
        ];
        for (p, &base) in pattern.iter().rev().enumerate() {
            // pattern[m-1-p] == base  =>  bit p of mask(base) is 0
            masks[base.code() as usize].clear_bit(p);
        }
        Self {
            masks,
            pattern: pattern.to_vec(),
        }
    }

    /// The bitmask for text character `c`.
    pub fn mask(&self, c: Base) -> &Bitvector {
        &self.masks[c.code() as usize]
    }

    /// Pattern length `m` (= bitvector width).
    pub fn len(&self) -> usize {
        self.pattern.len()
    }

    /// Always `false`: empty patterns are rejected at construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The pattern the masks were built from.
    pub fn pattern(&self) -> &[Base] {
        &self.pattern
    }

    /// The pattern character at suffix bit `p` (i.e. `pattern[m-1-p]`).
    pub fn char_at_bit(&self, p: usize) -> Base {
        self.pattern[self.pattern.len() - 1 - p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_bit_is_zero_in_exactly_one_mask() {
        let pattern: DnaSeq = "ACGTTGCA".parse().unwrap();
        let masks = PatternBitmasks::new(&pattern);
        for p in 0..pattern.len() {
            let zero_count = segram_graph::BASES
                .iter()
                .filter(|&&b| !masks.mask(b).bit(p))
                .count();
            assert_eq!(zero_count, 1);
            assert!(!masks.mask(masks.char_at_bit(p)).bit(p));
        }
    }

    #[test]
    fn bit_orientation_is_suffix_based() {
        let masks = PatternBitmasks::new(&"AAAT".parse().unwrap());
        // suffix "T" (bit 0) -> mask(T) bit0 == 0
        assert!(!masks.mask(Base::T).bit(0));
        // suffix "AAAT" (bit 3) head 'A' -> mask(A) bit3 == 0
        assert!(!masks.mask(Base::A).bit(3));
        assert!(masks.mask(Base::T).bit(3));
    }

    #[test]
    fn homopolymer_mask_is_all_zero() {
        let masks = PatternBitmasks::new(&"GGGG".parse().unwrap());
        for p in 0..4 {
            assert!(!masks.mask(Base::G).bit(p));
            assert!(masks.mask(Base::A).bit(p));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        PatternBitmasks::from_bases(&[]);
    }
}
