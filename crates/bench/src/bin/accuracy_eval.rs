//! **Reference-bias accuracy study** — the paper's core motivation
//! (Sections 1-2): reads drawn from a *population* (paths through a
//! variant graph) map to a genome graph with higher accuracy and fewer
//! residual edits than to the bare linear reference, and the gap widens
//! with variant density ("the African genome ... contains 10% more DNA
//! bases than the current linear human reference genome").
//!
//! For each variant density we simulate a graph and graph-sampled reads,
//! then map the same reads with (a) SeGraM against the graph (S2G) and
//! (b) SeGraM against the linear reference only (S2S). The S2G side is
//! scored against coordinate truth (sensitivity); both sides are scored
//! by *edit inflation* — reported edits relative to the simulator's
//! injected sequencing errors, where 1.0 means every variant was absorbed
//! by the reference representation and anything above it is reference
//! bias showing up as spurious edits.

use segram_bench::{header, write_results, Scale};
use segram_core::{evaluate, SegramConfig, SegramMapper};
use segram_graph::build_graph;
use segram_sim::{
    generate_reference, simulate_reads, simulate_variants, ErrorProfile, GenomeConfig, ReadConfig,
    VariantConfig,
};
use segram_testkit::Serialize;

#[derive(Serialize)]
struct DensityRow {
    variants_per_kbp: f64,
    embedded_variants: usize,
    s2g_mapped: f64,
    s2g_sensitivity: f64,
    /// Reads the S2G mapper placed at the true locus — the paired subset
    /// the bias measurement below is computed on.
    paired_reads: usize,
    /// Mean edits the S2G mapper reports on the paired subset (should
    /// track the injected sequencing errors).
    s2g_edits_per_read: f64,
    /// Mean edits the linear (S2S) mapper reports on the same reads —
    /// every extra edit is a population variant charged as an error.
    s2s_edits_per_read: f64,
    /// The reference-bias gap: S2S minus S2G mean edits.
    bias_edits_per_read: f64,
    /// Injected sequencing errors per read (the floor both mappers chase).
    injected_errors_per_read: f64,
}

fn main() {
    let scale = Scale::from_env();
    header("Reference bias: S2G vs S2S mapping accuracy across variant densities");

    let read_len = 150usize;
    let mut rows = Vec::new();
    println!(
        "  {:>9} {:>9} {:>10} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "var/kbp",
        "variants",
        "S2G map%",
        "S2G sens%",
        "paired",
        "injected",
        "S2G edits",
        "S2S edits",
        "bias"
    );

    for &density in &[0.5e-3, 1.0e-3, 1.0 / 450.0, 4.0e-3, 8.0e-3] {
        let reference = generate_reference(&GenomeConfig::human_like(scale.reference_len, 971));
        let mut var_config = VariantConfig::human_like(972);
        var_config.density = density;
        let variants = simulate_variants(&reference, &var_config);
        let built = build_graph(&reference, variants).expect("synthetic inputs");
        let reads = simulate_reads(
            &built.graph,
            &ReadConfig {
                count: scale.read_count,
                len: read_len,
                errors: ErrorProfile::illumina(),
                seed: 973,
            },
        );

        let mut config = SegramConfig::short_reads();
        config.max_regions = 32;
        let s2g = SegramMapper::new(built.graph.clone(), config);
        let s2s = SegramMapper::new_linear(&reference, config).expect("non-empty reference");

        let g_eval = evaluate(&s2g, &reads, 200);

        // Paired bias measurement: on the subset of reads the S2G mapper
        // places at the true locus, compare the edit counts both mappers
        // report for the *same read*. Mis-mappings (repeats, truncation)
        // affect both sides equally and are excluded, isolating the
        // reference-bias signal.
        let mut paired = 0usize;
        let mut g_edits = 0u64;
        let mut l_edits = 0u64;
        let mut injected = 0u64;
        for read in &reads {
            let (g, _) = s2g.map_read(&read.seq);
            let Some(g) = g else { continue };
            if g.linear_start.abs_diff(read.true_start_linear) > 200 {
                continue;
            }
            let (l, _) = s2s.map_read(&read.seq);
            let Some(l) = l else { continue };
            paired += 1;
            g_edits += u64::from(g.alignment.edit_distance);
            l_edits += u64::from(l.alignment.edit_distance);
            injected += u64::from(read.injected_errors);
        }
        let per = |sum: u64| {
            if paired == 0 {
                0.0
            } else {
                sum as f64 / paired as f64
            }
        };
        let row = DensityRow {
            variants_per_kbp: density * 1000.0,
            embedded_variants: built.embedded_variants,
            s2g_mapped: g_eval.mapped_fraction(),
            s2g_sensitivity: g_eval.sensitivity(),
            paired_reads: paired,
            s2g_edits_per_read: per(g_edits),
            s2s_edits_per_read: per(l_edits),
            bias_edits_per_read: per(l_edits) - per(g_edits),
            injected_errors_per_read: per(injected),
        };
        println!(
            "  {:>9.2} {:>9} {:>9.1}% {:>11.1}% {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            row.variants_per_kbp,
            row.embedded_variants,
            row.s2g_mapped * 100.0,
            row.s2g_sensitivity * 100.0,
            row.paired_reads,
            row.injected_errors_per_read,
            row.s2g_edits_per_read,
            row.s2s_edits_per_read,
            row.bias_edits_per_read,
        );
        rows.push(row);
    }

    println!(
        "\n  Expected shape (paper Sections 1-2): on the paired subset the S2G\n  \
         edit count matches the injected sequencing errors (the graph absorbs\n  \
         population variants), while the linear mapper charges every spanned\n  \
         variant as a spurious edit — a bias column that grows with density.\n  \
         That growing gap is the reference bias that motivates graph-based\n  \
         mapping."
    );
    write_results("accuracy_eval", &rows);
}
