//! The filter contract: sound lower bounds on semi-global edit distance.

use segram_graph::Base;

use crate::{BaseCountFilter, QGramFilter, ShiftedHammingFilter, SneakySnakeFilter};

/// A pre-alignment filter, expressed as a *sound lower bound* on the
/// semi-global edit distance between a read and (any substring of) a
/// candidate reference text.
///
/// Soundness is the defining property: for every read/text pair whose true
/// semi-global edit distance is `d`, `lower_bound(read, text, k) <= d`.
/// A filter may therefore *accept* pairs that alignment will later refute
/// (false accepts cost only wasted alignment work), but it must never
/// *reject* a pair that would have aligned within the threshold (a false
/// reject silently loses a mapping). The property tests in this crate
/// enforce soundness against the exact DP distance.
pub trait EditLowerBound {
    /// A short stable name for reports and experiment tables.
    fn name(&self) -> &'static str;

    /// Returns a lower bound on the semi-global edit distance between
    /// `read` and any substring of `text`.
    ///
    /// `k` is the acceptance threshold the caller will compare against;
    /// implementations may use it to stop refining the bound once it
    /// exceeds `k`, so returned values above `k` only mean "more than `k`".
    fn lower_bound(&self, read: &[Base], text: &[Base], k: u32) -> u32;

    /// Whether the pair survives the filter at threshold `k`.
    fn accepts(&self, read: &[Base], text: &[Base], k: u32) -> bool {
        self.lower_bound(read, text, k) <= k
    }
}

/// A copyable description of a filter configuration, suitable for
/// embedding in mapper configs (it avoids trait objects in `Copy` config
/// structs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterSpec {
    /// [`BaseCountFilter`]: character-composition bound. Cheapest, weakest.
    BaseCount,
    /// [`QGramFilter`] with the given q-gram length (2..=31).
    QGram {
        /// q-gram length.
        q: usize,
    },
    /// [`ShiftedHammingFilter`]: per-character shift-envelope membership.
    ShiftedHamming,
    /// [`SneakySnakeFilter`]: greedy diagonal-run maze solver, the
    /// tightest of the four bounds.
    SneakySnake,
    /// All four bounds combined (their maximum). Orders them cheapest
    /// first so an early bound above `k` short-circuits the rest.
    Cascade {
        /// q-gram length used by the embedded [`QGramFilter`].
        q: usize,
    },
}

impl FilterSpec {
    /// A reasonable default cascade (`q = 5`, the GRIM-Filter ballpark).
    pub fn cascade() -> Self {
        Self::Cascade { q: 5 }
    }

    /// The filter's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::BaseCount => "base-count",
            Self::QGram { .. } => "q-gram",
            Self::ShiftedHamming => "shifted-hamming",
            Self::SneakySnake => "sneaky-snake",
            Self::Cascade { .. } => "cascade",
        }
    }

    /// Evaluates the described filter's lower bound.
    ///
    /// # Panics
    ///
    /// Panics if a q-gram length outside `2..=31` was configured (see
    /// [`QGramFilter::new`]).
    pub fn lower_bound(&self, read: &[Base], text: &[Base], k: u32) -> u32 {
        match *self {
            Self::BaseCount => BaseCountFilter.lower_bound(read, text, k),
            Self::QGram { q } => QGramFilter::new(q).lower_bound(read, text, k),
            Self::ShiftedHamming => ShiftedHammingFilter.lower_bound(read, text, k),
            Self::SneakySnake => SneakySnakeFilter.lower_bound(read, text, k),
            Self::Cascade { q } => {
                let mut bound = BaseCountFilter.lower_bound(read, text, k);
                if bound > k {
                    return bound;
                }
                bound = bound.max(QGramFilter::new(q).lower_bound(read, text, k));
                if bound > k {
                    return bound;
                }
                bound = bound.max(ShiftedHammingFilter.lower_bound(read, text, k));
                if bound > k {
                    return bound;
                }
                bound.max(SneakySnakeFilter.lower_bound(read, text, k))
            }
        }
    }

    /// Whether the pair survives the described filter at threshold `k`.
    pub fn accepts(&self, read: &[Base], text: &[Base], k: u32) -> bool {
        self.lower_bound(read, text, k) <= k
    }
}
