//! # segram-cli
//!
//! The `segram` command-line tool: an end-to-end driver for the SeGraM
//! reproduction that a downstream user can run on real files. It strings
//! the workspace crates together along the paper's pipeline (Figure 2):
//!
//! ```text
//! segram construct    reference.fa + variants.vcf          -> graph.gfa   (step 0.1)
//! segram index        graph.gfa                            -> footprint   (step 0.2)
//! segram index build  reference.fa + variants.vcf          -> ref.sgi     (persistent index)
//! segram map          graph.gfa|ref.sgi + reads.fq         -> SAM / GAF   (steps 1-3)
//! segram serve        ref.sgi                              -> mapping daemon (TCP)
//! segram request      reads.fq -> daemon                   -> SAM / GAF
//! segram simulate     synthetic ref/VCF/graph/reads bundle (Section 10 stand-in)
//! ```
//!
//! The command implementations live in [`commands`] (and the daemon pair
//! in `serve`) as plain functions so integration tests can call them
//! without spawning processes; `main` is a thin dispatcher.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod args;
pub mod commands;
mod error;
mod serve;

pub use args::Options;
pub use commands::{dispatch, USAGE};
pub use error::CliError;
