//! FASTQ reading and writing (the sequencer output format query reads
//! arrive in before they are streamed to the accelerator, Section 4).
//!
//! The strict four-line layout is enforced: `@header`, sequence, `+`
//! separator, quality string of the same length. Qualities are decoded from
//! Phred+33 into numeric scores so error-model code can consume them
//! directly.

use std::fmt::Write as _;
use std::io::BufRead;

use segram_graph::DnaSeq;

use crate::error::FormatError;
use crate::fasta::{append_bases, Ambiguity};
use crate::stream::{next_line, StreamError};

/// Offset between an ASCII quality character and its Phred score.
pub const PHRED_OFFSET: u8 = 33;

/// Highest Phred score representable in the printable ASCII range.
pub const MAX_PHRED: u8 = b'~' - PHRED_OFFSET;

/// One FASTQ record: header, sequence, and per-base Phred qualities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read identifier: the first whitespace-delimited token after `@`.
    pub id: String,
    /// The rest of the header line (may be empty).
    pub description: String,
    /// The read sequence.
    pub seq: DnaSeq,
    /// Phred quality scores, one per base (already offset-corrected).
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Creates a record with a uniform quality score and empty description.
    ///
    /// Useful when synthesizing FASTQ from simulators that model errors but
    /// not per-base confidence.
    ///
    /// # Panics
    ///
    /// Panics if `phred > MAX_PHRED` (the score would not be printable).
    pub fn with_uniform_quality(id: impl Into<String>, seq: DnaSeq, phred: u8) -> Self {
        assert!(
            phred <= MAX_PHRED,
            "phred score {phred} exceeds {MAX_PHRED}"
        );
        let qual = vec![phred; seq.len()];
        Self {
            id: id.into(),
            description: String::new(),
            seq,
            qual,
        }
    }

    /// The probability of error implied by the record's mean Phred score.
    ///
    /// Returns 1.0 for an empty quality vector (no evidence of correctness).
    pub fn mean_error_probability(&self) -> f64 {
        if self.qual.is_empty() {
            return 1.0;
        }
        let mean = self.qual.iter().map(|&q| f64::from(q)).sum::<f64>() / self.qual.len() as f64;
        10f64.powf(-mean / 10.0)
    }
}

/// Converts a per-base error probability into the closest Phred score.
///
/// # Examples
///
/// ```
/// use segram_io::phred_from_error_rate;
///
/// assert_eq!(phred_from_error_rate(0.01), 20); // Illumina-like
/// assert_eq!(phred_from_error_rate(0.10), 10); // noisy long reads
/// ```
pub fn phred_from_error_rate(error_rate: f64) -> u8 {
    if error_rate <= 0.0 {
        return MAX_PHRED;
    }
    let q = (-10.0 * error_rate.log10()).round();
    q.clamp(0.0, f64::from(MAX_PHRED)) as u8
}

/// Parses a FASTQ document with the given ambiguity policy.
///
/// # Errors
///
/// Returns [`FormatError`] on truncated records, missing `@`/`+` markers,
/// length mismatches between sequence and quality, quality characters
/// outside the printable Phred+33 range, or (under [`Ambiguity::Reject`])
/// non-`ACGT` sequence characters.
///
/// # Examples
///
/// ```
/// use segram_io::{read_fastq, Ambiguity};
///
/// let records = read_fastq("@r1\nACGT\n+\nIIII\n", Ambiguity::Reject)?;
/// assert_eq!(records[0].id, "r1");
/// assert_eq!(records[0].qual, vec![40; 4]);
/// # Ok::<(), segram_io::FormatError>(())
/// ```
pub fn read_fastq(text: &str, ambiguity: Ambiguity) -> Result<Vec<FastqRecord>, FormatError> {
    FastqReader::new(text.as_bytes(), ambiguity)
        .map(|item| {
            item.map_err(|err| match err {
                StreamError::Format(err) => err,
                // A byte-slice source cannot fail at the transport level.
                StreamError::Io(err) => {
                    FormatError::malformed(0, format!("unexpected I/O error: {err}"))
                }
            })
        })
        .collect()
}

/// A streaming FASTQ reader: an iterator of [`FastqRecord`]s over any
/// [`BufRead`] source, holding one record in memory at a time — the input
/// side of the `MapEngine` streaming path, where the read set never fits
/// in memory at production scale.
///
/// Iteration stops at the first error (the iterator fuses), mirroring the
/// fail-fast behaviour of [`read_fastq`].
///
/// # Examples
///
/// ```
/// use segram_io::{Ambiguity, FastqReader};
///
/// let mut reader = FastqReader::new(&b"@r1\nACGT\n+\nIIII\n"[..], Ambiguity::Reject);
/// let record = reader.next().unwrap().unwrap();
/// assert_eq!(record.id, "r1");
/// assert!(reader.next().is_none());
/// ```
#[derive(Debug)]
pub struct FastqReader<R: BufRead> {
    source: R,
    ambiguity: Ambiguity,
    /// 1-based number of the last line consumed.
    line: usize,
    /// Set after end-of-input or the first error; the iterator fuses.
    done: bool,
}

impl<R: BufRead> FastqReader<R> {
    /// Wraps a buffered source with the given ambiguity policy.
    pub fn new(source: R, ambiguity: Ambiguity) -> Self {
        Self {
            source,
            ambiguity,
            line: 0,
            done: false,
        }
    }

    /// Reads the next record, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError`] on transport failures and on the same
    /// format violations [`read_fastq`] reports.
    fn next_record(&mut self) -> Result<Option<FastqRecord>, StreamError> {
        // Skip blank lines between records (tolerated like `read_fastq`).
        let header = loop {
            match next_line(&mut self.source, &mut self.line)? {
                None => return Ok(None),
                Some(line) if line.is_empty() => continue,
                Some(line) => break line,
            }
        };
        let line_no = self.line;
        let Some(header) = header.strip_prefix('@') else {
            return Err(FormatError::malformed(
                line_no,
                "expected '@' at the start of a FASTQ record",
            )
            .into());
        };
        let header = header.trim();
        let (id, description) = match header.split_once(char::is_whitespace) {
            Some((id, desc)) => (id.to_owned(), desc.trim().to_owned()),
            None => (header.to_owned(), String::new()),
        };
        if id.is_empty() {
            return Err(FormatError::malformed(line_no, "empty FASTQ header").into());
        }

        let seq_line =
            next_line(&mut self.source, &mut self.line)?.ok_or(FormatError::UnexpectedEof {
                line: line_no + 1,
                expected: "a sequence line",
            })?;
        let mut seq = DnaSeq::with_capacity(seq_line.len());
        append_bases(&mut seq, seq_line.as_bytes(), self.line, self.ambiguity)?;
        if seq.is_empty() {
            return Err(FormatError::invalid_record(
                self.line,
                format!("read {id:?} has an empty sequence"),
            )
            .into());
        }
        let seq_line_no = self.line;

        let sep =
            next_line(&mut self.source, &mut self.line)?.ok_or(FormatError::UnexpectedEof {
                line: seq_line_no + 1,
                expected: "the '+' separator line",
            })?;
        if !sep.starts_with('+') {
            return Err(FormatError::malformed(self.line, "expected '+' separator line").into());
        }
        let sep_line_no = self.line;

        let qual_line =
            next_line(&mut self.source, &mut self.line)?.ok_or(FormatError::UnexpectedEof {
                line: sep_line_no + 1,
                expected: "a quality line",
            })?;
        if qual_line.len() != seq.len() {
            return Err(FormatError::invalid_record(
                self.line,
                format!(
                    "quality length {} does not match sequence length {}",
                    qual_line.len(),
                    seq.len()
                ),
            )
            .into());
        }
        let mut qual = Vec::with_capacity(qual_line.len());
        for &byte in qual_line.as_bytes() {
            if !(PHRED_OFFSET..=b'~').contains(&byte) {
                return Err(FormatError::malformed(
                    self.line,
                    format!("quality character 0x{byte:02x} outside Phred+33 range"),
                )
                .into());
            }
            qual.push(byte - PHRED_OFFSET);
        }

        Ok(Some(FastqRecord {
            id,
            description,
            seq,
            qual,
        }))
    }
}

/// Parses one framed record (see [`crate::FastqFramer`]): the same
/// parser as [`FastqReader`], pointed at the frame's bytes with its line
/// counter pre-advanced to `header_line - 1`, so records *and* errors
/// (variant and line number) are identical to a reader consuming the
/// whole source.
pub(crate) fn decode_framed(
    bytes: &[u8],
    header_line: usize,
    ambiguity: Ambiguity,
) -> Result<FastqRecord, StreamError> {
    let mut reader = FastqReader::new(bytes, ambiguity);
    reader.line = header_line.saturating_sub(1);
    match reader.next_record() {
        Ok(Some(record)) => Ok(record),
        // The framer never yields a frame without a non-blank first line,
        // so an empty parse means the bytes were not framer-produced.
        Ok(None) => Err(FormatError::malformed(header_line, "empty framed FASTQ record").into()),
        Err(err) => Err(err),
    }
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = Result<FastqRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(err) => {
                self.done = true;
                Some(Err(err))
            }
        }
    }
}

/// Renders records as a FASTQ document.
///
/// # Panics
///
/// Panics if any record's quality vector length differs from its sequence
/// length or contains scores above [`MAX_PHRED`]; such records cannot be
/// expressed in the format.
pub fn write_fastq(records: &[FastqRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        assert_eq!(
            rec.qual.len(),
            rec.seq.len(),
            "record {:?}: quality/sequence length mismatch",
            rec.id
        );
        if rec.description.is_empty() {
            let _ = writeln!(out, "@{}", rec.id);
        } else {
            let _ = writeln!(out, "@{} {}", rec.id, rec.description);
        }
        let _ = writeln!(out, "{}", rec.seq);
        out.push_str("+\n");
        for &q in &rec.qual {
            assert!(q <= MAX_PHRED, "record {:?}: phred {q} unprintable", rec.id);
            out.push((q + PHRED_OFFSET) as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        "@r1 first\nACGT\n+\nII5I\n@r2\nTTAA\n+anything\n!!!!\n".to_owned()
    }

    #[test]
    fn parses_two_records() {
        let records = read_fastq(&sample(), Ambiguity::Reject).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "r1");
        assert_eq!(records[0].description, "first");
        assert_eq!(records[0].qual, vec![40, 40, 20, 40]);
        assert_eq!(records[1].qual, vec![0; 4]);
    }

    #[test]
    fn round_trips() {
        let records = read_fastq(&sample(), Ambiguity::Reject).unwrap();
        let text = write_fastq(&records);
        let reparsed = read_fastq(&text, Ambiguity::Reject).unwrap();
        // The writer normalizes the separator line to bare '+'.
        assert_eq!(reparsed, records);
    }

    #[test]
    fn truncation_is_reported_per_missing_line() {
        for (text, expected_line) in [("@r1\n", 2), ("@r1\nACGT\n", 3), ("@r1\nACGT\n+\n", 4)] {
            let err = read_fastq(text, Ambiguity::Reject).unwrap_err();
            assert!(
                matches!(err, FormatError::UnexpectedEof { line, .. } if line == expected_line),
                "text {text:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn quality_length_mismatch_is_rejected() {
        let err = read_fastq("@r1\nACGT\n+\nIII\n", Ambiguity::Reject).unwrap_err();
        assert!(matches!(err, FormatError::InvalidRecord { line: 4, .. }));
    }

    #[test]
    fn missing_markers_are_rejected() {
        assert!(read_fastq("r1\nACGT\n+\nIIII\n", Ambiguity::Reject).is_err());
        assert!(read_fastq("@r1\nACGT\n-\nIIII\n", Ambiguity::Reject).is_err());
    }

    #[test]
    fn uniform_quality_constructor_and_error_probability() {
        let rec = FastqRecord::with_uniform_quality("r", "ACGT".parse().unwrap(), 20);
        assert_eq!(rec.qual, vec![20; 4]);
        let p = rec.mean_error_probability();
        assert!((p - 0.01).abs() < 1e-12);
    }

    #[test]
    fn phred_conversion_clamps() {
        assert_eq!(phred_from_error_rate(0.0), MAX_PHRED);
        assert_eq!(phred_from_error_rate(1.0), 0);
        assert_eq!(phred_from_error_rate(0.05), 13);
    }

    #[test]
    fn blank_lines_between_records_are_tolerated() {
        let records =
            read_fastq("@r1\nACGT\n+\nIIII\n\n@r2\nTT\n+\nII\n", Ambiguity::Reject).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn streaming_reader_agrees_with_batch_parser() {
        let text = sample();
        let batch = read_fastq(&text, Ambiguity::Reject).unwrap();
        let streamed: Vec<FastqRecord> = FastqReader::new(text.as_bytes(), Ambiguity::Reject)
            .map(|r| r.expect("well-formed sample"))
            .collect();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn streaming_reader_fuses_after_an_error() {
        let mut reader = FastqReader::new(
            &b"@r1\nACGT\n+\nIII\n@r2\nTT\n+\nII\n"[..],
            Ambiguity::Reject,
        );
        assert!(reader.next().unwrap().is_err());
        // The record after the malformed one is not resynchronized.
        assert!(reader.next().is_none());
    }

    #[test]
    fn streaming_reader_reports_missing_final_newline_records() {
        // A final record without a trailing newline still parses.
        let mut reader = FastqReader::new(&b"@r1\nACGT\n+\nIIII"[..], Ambiguity::Reject);
        let record = reader.next().unwrap().unwrap();
        assert_eq!(record.qual.len(), 4);
        assert!(reader.next().is_none());
    }
}
