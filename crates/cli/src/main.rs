//! The `segram` binary: parse, dispatch, report.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match segram_cli::dispatch(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("segram: {err}");
            ExitCode::from(err.exit_code().clamp(0, 255) as u8)
        }
    }
}
