//! Error type shared by all parsers in this crate.

use std::error::Error;
use std::fmt;

/// Error produced when parsing or rendering one of the supported formats.
///
/// Every variant carries a 1-based line number so malformed files can be
/// located without a debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// The input ended in the middle of a record (e.g. a FASTQ record with
    /// fewer than four lines).
    UnexpectedEof {
        /// 1-based line where the truncation was detected.
        line: usize,
        /// What the parser was expecting.
        expected: &'static str,
    },
    /// A structural rule of the format was violated.
    Malformed {
        /// 1-based line of the offending text.
        line: usize,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A sequence contained a character outside the `A`/`C`/`G`/`T`
    /// alphabet and the configured [`Ambiguity`](crate::Ambiguity) policy
    /// was [`Reject`](crate::Ambiguity::Reject).
    InvalidBase {
        /// 1-based line of the offending sequence.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A record referenced a reference position outside the sequence, or a
    /// variant could not be expressed in the graph model.
    InvalidRecord {
        /// 1-based line of the offending record.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl FormatError {
    /// Convenience constructor for [`FormatError::Malformed`].
    pub fn malformed(line: usize, message: impl Into<String>) -> Self {
        Self::Malformed {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`FormatError::InvalidRecord`].
    pub fn invalid_record(line: usize, message: impl Into<String>) -> Self {
        Self::InvalidRecord {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number the error refers to.
    pub fn line(&self) -> usize {
        match self {
            Self::UnexpectedEof { line, .. }
            | Self::Malformed { line, .. }
            | Self::InvalidBase { line, .. }
            | Self::InvalidRecord { line, .. } => *line,
        }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof { line, expected } => {
                write!(
                    f,
                    "line {line}: unexpected end of input, expected {expected}"
                )
            }
            Self::Malformed { line, message } => write!(f, "line {line}: {message}"),
            Self::InvalidBase { line, byte } => {
                if byte.is_ascii_graphic() {
                    write!(f, "line {line}: invalid base {:?}", *byte as char)
                } else {
                    write!(f, "line {line}: invalid base 0x{byte:02x}")
                }
            }
            Self::InvalidRecord { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for FormatError {}
