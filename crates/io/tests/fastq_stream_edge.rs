//! Edge-case tests for the streaming `FastqReader`: the malformed inputs
//! a production read stream actually encounters — truncations, missing
//! markers, CRLF transfers — each pinned to the *exact* `StreamError`
//! variant (and line number) the reader must report, not just `is_err()`.

use segram_io::{Ambiguity, FastqReader, FastqRecord, FormatError, StreamError};

fn reader(text: &str) -> FastqReader<&[u8]> {
    FastqReader::new(text.as_bytes(), Ambiguity::Reject)
}

fn first_error(text: &str) -> StreamError {
    reader(text)
        .next()
        .expect("a record or an error")
        .expect_err("input must be rejected")
}

#[test]
fn empty_file_is_end_of_stream_not_an_error() {
    assert!(reader("").next().is_none());
    // Blank lines only: still a clean end of stream.
    assert!(reader("\n\n\n").next().is_none());
}

#[test]
fn empty_sequence_is_an_invalid_record_on_the_sequence_line() {
    let err = first_error("@r1\n\n+\nII\n");
    match err {
        StreamError::Format(FormatError::InvalidRecord { line, message }) => {
            assert_eq!(line, 2, "the sequence line is line 2");
            assert!(message.contains("empty sequence"), "{message}");
            assert!(message.contains("r1"), "names the read: {message}");
        }
        other => panic!("expected InvalidRecord, got {other:?}"),
    }
}

#[test]
fn missing_plus_separator_is_malformed_on_the_separator_line() {
    let err = first_error("@r1\nACGT\nIIII\n@r2\nTT\n+\nII\n");
    match err {
        StreamError::Format(FormatError::Malformed { line, message }) => {
            assert_eq!(line, 3, "the separator line is line 3");
            assert!(message.contains("'+' separator"), "{message}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn truncated_final_record_reports_unexpected_eof_per_missing_line() {
    // Truncation after each of the record's four lines names the line the
    // missing piece should have started on, and what was expected there.
    for (text, missing_line, expectation) in [
        ("@r1\n", 2, "a sequence line"),
        ("@r1\nACGT\n", 3, "the '+' separator line"),
        ("@r1\nACGT\n+\n", 4, "a quality line"),
    ] {
        match first_error(text) {
            StreamError::Format(FormatError::UnexpectedEof { line, expected }) => {
                assert_eq!(line, missing_line, "input {text:?}");
                assert_eq!(expected, expectation, "input {text:?}");
            }
            other => panic!("{text:?}: expected UnexpectedEof, got {other:?}"),
        }
    }
    // A complete record before the truncated one is still delivered.
    let mut records = reader("@ok\nACGT\n+\nIIII\n@r1\nACGT\n");
    assert_eq!(records.next().unwrap().unwrap().id, "ok");
    assert!(matches!(
        records.next().unwrap().unwrap_err(),
        StreamError::Format(FormatError::UnexpectedEof { line: 7, .. })
    ));
    // The iterator fuses after the error.
    assert!(records.next().is_none());
}

#[test]
fn crlf_line_endings_parse_identically_to_lf() {
    let lf = "@r1 first\nACGT\n+\nII5I\n@r2\nTTAA\n+\n!!!!\n";
    let crlf = lf.replace('\n', "\r\n");
    let parse = |text: &str| -> Vec<FastqRecord> {
        FastqReader::new(text.as_bytes(), Ambiguity::Reject)
            .map(|r| r.expect("well-formed record"))
            .collect()
    };
    let from_lf = parse(lf);
    let from_crlf = parse(&crlf);
    assert_eq!(from_lf, from_crlf);
    assert_eq!(from_crlf.len(), 2);
    // The carriage return is stripped before the quality-length check, so
    // qualities keep their exact length and values.
    assert_eq!(from_crlf[0].qual, vec![40, 40, 20, 40]);
    assert_eq!(from_crlf[0].description, "first");
}

#[test]
fn quality_shorter_than_sequence_is_an_invalid_record() {
    // The mismatch is detected on the quality line (line 4), with both
    // lengths named.
    let err = first_error("@r1\nACGT\n+\nIII\n");
    match err {
        StreamError::Format(FormatError::InvalidRecord { line, message }) => {
            assert_eq!(line, 4);
            assert!(message.contains('3') && message.contains('4'), "{message}");
        }
        other => panic!("expected InvalidRecord, got {other:?}"),
    }
}
