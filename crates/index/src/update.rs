//! Incremental store evolution — the engine behind `segram index update`.
//!
//! A persisted store carries everything needed to extend its own epoch
//! chain (the linear reference and the embedded variant set live in the
//! CHANGELOG section), so applying a VCF delta needs no access to the
//! original FASTA: [`update_store`] replays the graph construction with
//! the combined variant set, diffs the graphs into a
//! [`ChangeLog`](segram_graph::ChangeLog), and asks
//! [`GraphIndex::apply_delta`](crate::GraphIndex::apply_delta) to carry
//! every untouched minimizer over — re-extracting only the nodes the
//! delta created. The result is byte-identical to a from-scratch build
//! over the combined VCFs while doing work proportional to the delta.

use segram_graph::{
    apply_variants, graphs_identical, ChangeLog, ConstructedGraph, DnaSeq, VariantSet,
};

use crate::index::DeltaStats;
use crate::minseed::frequency_threshold;
use crate::persist::{computed_identity, EpochEntry, PersistError, PersistedIndex, StoreChangelog};

/// Result of [`update_store`]: the evolved store plus the evidence that
/// the update was partial (stats) and what changed (log).
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// The evolved store, at epoch `parent.epoch + 1`, ready for
    /// [`write_index_file`](crate::write_index_file).
    pub persisted: PersistedIndex,
    /// Carried/dropped/re-extracted counters from the index delta — the
    /// proof that only the touched ranges were re-processed.
    pub stats: DeltaStats,
    /// The graph-level change log (ops, touched ranges, variant counts).
    pub log: ChangeLog,
}

/// The epoch-0 changelog for a fresh `index build`.
///
/// Identity fields are left 0; [`encode_index`](crate::encode_index)
/// stamps them from the actual payload bytes at write time.
pub fn initial_changelog(
    reference: DnaSeq,
    built: &ConstructedGraph,
    source: impl Into<String>,
) -> StoreChangelog {
    let ref_len = reference.len() as u64;
    StoreChangelog {
        epoch: 0,
        parent: 0,
        identity: 0,
        reference,
        applied: built.applied.clone(),
        history: vec![EpochEntry {
            epoch: 0,
            parent: 0,
            identity: 0,
            source: source.into(),
            added_variants: built.embedded_variants as u64,
            dropped_variants: built.dropped_variants as u64,
            touched: vec![(0, ref_len)],
        }],
    }
}

/// Applies a variant `delta` to a persisted store, producing the next
/// epoch.
///
/// `source` labels the new [`EpochEntry`] (conventionally the VCF path).
/// The new store's changelog and provenance are extended, its identity is
/// stamped immediately (so further updates can chain in memory without a
/// round trip through disk), and its frequency threshold is recomputed
/// from the merged index's occurrence counts — no global genome pass.
///
/// # Errors
///
/// * [`PersistError::NoChangelog`] — the store predates versioning.
/// * [`PersistError::Corrupt`] — the changelog does not reconstruct the
///   stored graph, or the delta itself is invalid against the reference
///   (out-of-bounds variants).
pub fn update_store(
    parent: &PersistedIndex,
    delta: &VariantSet,
    source: &str,
) -> Result<UpdateOutcome, PersistError> {
    let log = parent.changelog.as_ref().ok_or(PersistError::NoChangelog)?;
    let built = apply_variants(&log.reference, &log.applied, delta, log.epoch).map_err(|e| {
        PersistError::Corrupt {
            section: "changelog",
            detail: format!("delta does not apply: {e}"),
        }
    })?;
    // The replayed parent graph must be the graph the index was built
    // over — compare actual content, not just summary stats, so a
    // mismatched changelog can never seed a silently wrong delta.
    if !graphs_identical(&built.old.graph, &parent.graph) {
        return Err(PersistError::Corrupt {
            section: "changelog",
            detail: "changelog does not reconstruct the stored graph".into(),
        });
    }

    let (index, stats) = parent
        .index
        .apply_delta(&parent.graph, &built.new.graph, &built.log);
    let freq_threshold = frequency_threshold(&index, parent.discard_frac);
    let identity = computed_identity(&built.new.graph, &index);

    let parent_identity = parent.identity();
    let epoch = log.epoch + 1;
    let mut history = log.history.clone();
    // A parent that never went through `encode_index` still has its tail
    // identity unstamped (0); stamp it now so the hash chain the decoder
    // verifies is intact whether or not the parent ever touched disk.
    if let Some(last) = history.last_mut() {
        if last.identity == 0 {
            last.identity = parent_identity;
        }
    }
    history.push(EpochEntry {
        epoch,
        parent: parent_identity,
        identity,
        source: source.to_string(),
        added_variants: built.log.added_variants as u64,
        dropped_variants: built.log.dropped_variants as u64,
        touched: built.log.touched.clone(),
    });
    let changelog = StoreChangelog {
        epoch,
        parent: parent_identity,
        identity,
        reference: log.reference.clone(),
        applied: built.new.applied.clone(),
        history,
    };
    let provenance = parent.provenance.clone().map(|mut p| {
        p.vcf_paths.push(source.to_string());
        p.epoch = epoch;
        p
    });

    Ok(UpdateOutcome {
        persisted: PersistedIndex {
            graph: built.new.graph,
            index,
            discard_frac: parent.discard_frac,
            freq_threshold,
            changelog: Some(changelog),
            provenance,
        },
        stats,
        log: built.log,
    })
}
