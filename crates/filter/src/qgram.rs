//! The q-gram lemma bound (the counting idea behind GRIM-Filter).

use std::collections::HashMap;

use segram_graph::Base;

use crate::EditLowerBound;

/// Bounds edit distance via the *q-gram lemma*: a read of length `m`
/// contains `m - q + 1` overlapping q-grams, and each edit destroys at
/// most `q` of them. If the read and the (unknown) aligned substring share
/// `s` q-grams, then
///
/// ```text
/// s >= (m - q + 1) - q * edit_distance
/// =>  edit_distance >= ceil(((m - q + 1) - s) / q)
/// ```
///
/// The aligned substring's q-gram multiset is dominated by the whole
/// text's, so counting shared q-grams against the whole candidate text
/// (with multiplicities) keeps the bound sound. This is the in-memory
/// counterpart of GRIM-Filter's per-bin q-gram presence vectors
/// \[Kim+ 2018\], one of the filters the paper's footnote 6 cites as
/// future work to integrate with SeGraM.
///
/// # Examples
///
/// ```
/// use segram_filter::{EditLowerBound, QGramFilter};
/// use segram_graph::DnaSeq;
///
/// let read: DnaSeq = "ACGTACGTACGT".parse()?;
/// let filter = QGramFilter::new(4);
/// // A perfect copy shares every q-gram.
/// assert_eq!(filter.lower_bound(read.as_slice(), read.as_slice(), 3), 0);
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QGramFilter {
    q: usize,
}

impl QGramFilter {
    /// Creates a filter with q-gram length `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= q <= 31` (q-grams are packed 2 bits per base
    /// into a `u64`).
    pub fn new(q: usize) -> Self {
        assert!((2..=31).contains(&q), "q-gram length {q} outside 2..=31");
        Self { q }
    }

    /// The configured q-gram length.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Counts q-grams shared between `read` and `text` with
    /// multiplicities: `Σ_g min(count_read(g), count_text(g))`.
    pub fn shared_qgrams(&self, read: &[Base], text: &[Base]) -> usize {
        let mut text_counts: HashMap<u64, u32> = HashMap::new();
        for gram in qgrams(text, self.q) {
            *text_counts.entry(gram).or_insert(0) += 1;
        }
        let mut shared = 0usize;
        for gram in qgrams(read, self.q) {
            if let Some(count) = text_counts.get_mut(&gram) {
                if *count > 0 {
                    *count -= 1;
                    shared += 1;
                }
            }
        }
        shared
    }

    /// The bound computed from a shared-q-gram count, exposed separately
    /// so graph-aware callers can add a hop-slack to `shared` first (see
    /// [`filter_region`](crate::filter_region)).
    pub fn bound_from_shared(&self, read_len: usize, shared: usize) -> u32 {
        let total = read_len.saturating_sub(self.q - 1);
        let destroyed = total.saturating_sub(shared);
        (destroyed.div_ceil(self.q)) as u32
    }
}

/// Iterates over the packed q-grams of `seq`.
fn qgrams(seq: &[Base], q: usize) -> impl Iterator<Item = u64> + '_ {
    let mask = if q == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * q)) - 1
    };
    let mut acc = 0u64;
    seq.iter().enumerate().filter_map(move |(i, &b)| {
        acc = ((acc << 2) | u64::from(b.code())) & mask;
        (i + 1 >= q).then_some(acc)
    })
}

impl EditLowerBound for QGramFilter {
    fn name(&self) -> &'static str {
        "q-gram"
    }

    fn lower_bound(&self, read: &[Base], text: &[Base], _k: u32) -> u32 {
        if read.len() < self.q {
            return 0; // no q-grams, no evidence
        }
        let shared = self.shared_qgrams(read, text);
        self.bound_from_shared(read.len(), shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_graph::DnaSeq;

    fn bases(s: &str) -> Vec<Base> {
        s.parse::<DnaSeq>().unwrap().into_bases()
    }

    #[test]
    fn identical_sequences_share_everything() {
        let s = bases("ACGTACGTTGCA");
        let f = QGramFilter::new(4);
        assert_eq!(f.shared_qgrams(&s, &s), s.len() - 3);
        assert_eq!(f.lower_bound(&s, &s, 3), 0);
    }

    #[test]
    fn disjoint_sequences_get_a_positive_bound() {
        let read = bases("AAAAAAAAAAAA");
        let text = bases("CGCGCGCGCGCG");
        let f = QGramFilter::new(4);
        assert_eq!(f.shared_qgrams(&read, &text), 0);
        // 9 q-grams destroyed, each edit kills at most 4: bound = ceil(9/4).
        assert_eq!(f.lower_bound(&read, &text, 9), 3);
    }

    #[test]
    fn multiplicity_is_respected() {
        // read has two copies of AAAA-gram region; text only one.
        let read = bases("AAAAAAAA");
        let text = bases("AAAACGTC");
        let f = QGramFilter::new(4);
        // text has exactly one AAAA q-gram; read has five.
        assert_eq!(f.shared_qgrams(&read, &text), 1);
    }

    #[test]
    fn short_reads_are_never_rejected() {
        let read = bases("ACG");
        let text = bases("TTTTTTT");
        let f = QGramFilter::new(4);
        assert_eq!(f.lower_bound(&read, &text, 0), 0);
    }

    #[test]
    fn single_edit_destroys_at_most_q_grams() {
        let original = bases("ACGTACGTACGTACGT");
        let mut mutated = original.clone();
        mutated[8] = match mutated[8] {
            Base::A => Base::C,
            _ => Base::A,
        };
        let f = QGramFilter::new(5);
        assert!(f.lower_bound(&mutated, &original, 5) <= 1);
    }

    #[test]
    #[should_panic(expected = "outside 2..=31")]
    fn q_of_one_is_rejected() {
        let _ = QGramFilter::new(1);
    }
}
