//! `segram serve` and `segram request`: the long-lived mapping daemon and
//! its minimal line-protocol client.
//!
//! The daemon loads a persistent `.sgi` index once (the expensive part of
//! every `segram map` run), then multiplexes N concurrent map requests
//! through one shared [`MultiEngine`]: per-request cancellation (a client
//! disconnect cancels only that request), per-request ordered output, and
//! queued-batch admission control (`BUSY` replies past the limit).
//!
//! ## Wire protocol (one request per TCP connection, line-framed)
//!
//! ```text
//! client:  MAP <sam|gaf> <payload-bytes>\n   then exactly that many
//!          bytes of FASTQ, or
//!          QUIT\n                            stop the daemon
//! server:  OK\n                              request accepted + mapped,
//!          CHUNK <len>\n + <len> bytes       output document pieces,
//!          END reads=<n> mapped=<m>\n        request complete; or
//!          BUSY <queued-batches>\n           admission refused, or
//!          ERR <message>\n                   malformed request/input, or
//!          BYE\n                             QUIT acknowledged
//! ```
//!
//! A request's output document is byte-identical to a one-shot
//! `segram map --index ref.sgi` over the same reads — `ci.sh`'s serve
//! tier diffs exactly that.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use segram_core::{
    gaf_record_for, sam_record_for, MultiConfig, MultiEngine, ReadMapper, RebalanceConfig,
    Rebalancer, RequestHandle, RouteHook, ShardAffinity, ShardedIndex,
};
use segram_graph::{DnaSeq, GenomeGraph};
use segram_io::{Ambiguity, FastqReader, FastqRecord, GafWriter, SamWriter};

use crate::args::Options;
use crate::commands::{
    mapper_from_index_file, preset, schedule_kind, shard_count, sharded_from_index_file,
    thread_count, write_file, Schedule,
};
use crate::error::CliError;

/// Reads per engine batch: small enough that a request's first outputs
/// stream back while its payload is still arriving.
const SERVE_BATCH: usize = 32;

/// Maximum bytes per `CHUNK` reply line.
const CHUNK_BYTES: usize = 64 * 1024;

const SERVE_HELP: &str = "\
segram serve — long-lived mapping daemon over a persistent .sgi index

Loads the index once, then answers concurrent `segram request` calls
through one shared multi-request engine: per-request cancellation (a
client disconnect cancels only that request), per-request ordered output
(byte-identical to a one-shot `segram map --index`), round-robin
fairness, and queued-batch admission control (BUSY past the limit).
Stops when a client sends QUIT (`segram request --shutdown`).

OPTIONS:
    --index <ref.sgi>      persistent index from `segram index build`
                           (required)
    --addr <host:port>     listen address (default 127.0.0.1:0 = any free
                           port; the chosen address is printed as
                           `listening on <addr>`)
    --addr-file <path>     also write the chosen address to this file
                           (for scripts that need to find the port)
    --threads <int>        worker threads (default: all available cores)
    --shards <int>         re-shard the loaded index into N coordinate
                           ranges with a seeding router in front
                           (default 1; replies stay byte-identical)
    --schedule <fanout|elastic>
                           worker schedule (default fanout: all workers
                           serve every request batch). elastic splits the
                           workers into per-shard-group pools, routes each
                           request batch to the pool owning its dominant
                           shard group (idle pools steal), and rebalances
                           shard ownership from live seed-hit counters
    --queue-depth <int>    per-request input-queue capacity in batches
                           (default 2 x threads)
    --max-queued <int>     total queued batches before new requests are
                           refused BUSY (default 4 x queue depth)
    --preset <short|long5|long10>
                           mapper preset for thresholds (default short;
                           scheme/buckets/discard come from the .sgi file)
    --both-strands         also try each read's reverse complement
    --quiet                suppress per-request log lines on stderr
";

const REQUEST_HELP: &str = "\
segram request — line-protocol client for `segram serve`

Sends one FASTQ payload, receives the mapped SAM/GAF document. With
--cancel-after it instead disconnects mid-payload, which makes the
server cancel just that request (the test hook for cancellation
isolation). With --shutdown it asks the daemon to stop.

OPTIONS:
    --addr <host:port>     server address (required; the daemon prints it)
    --reads <reads.fq>     input FASTQ (required unless --shutdown)
    --format <sam|gaf>     output format (default sam)
    --output <path>        write the returned document here (default:
                           stdout section of report)
    --cancel-after <int>   send only this many payload bytes, then
                           disconnect without reading a reply
    --shutdown             send QUIT instead of a mapping request
";

fn seq_of(record: &FastqRecord) -> &DnaSeq {
    &record.seq
}

/// Validated output format of one request.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WireFormat {
    Sam,
    Gaf,
}

impl WireFormat {
    fn parse(name: &str) -> Option<Self> {
        match name {
            "sam" => Some(Self::Sam),
            "gaf" => Some(Self::Gaf),
            _ => None,
        }
    }
}

/// Lifetime counters the daemon reports when it exits.
#[derive(Default)]
struct ServeStats {
    served: AtomicU64,
    cancelled: AtomicU64,
    refused: AtomicU64,
    failed: AtomicU64,
}

impl ServeStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// What the accept loop should do after a connection is handled.
enum Control {
    Continue,
    Quit,
}

/// A reader that counts how many payload bytes actually arrived, so a
/// short payload (the client vanished mid-transfer) is distinguishable
/// from a complete one that merely ended at a record boundary.
struct CountingReader<R> {
    inner: R,
    seen: Arc<AtomicU64>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.seen.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

/// `segram serve`.
pub fn serve(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(SERVE_HELP.to_owned());
    }
    options.reject_unknown(&[
        "index",
        "addr",
        "addr-file",
        "threads",
        "shards",
        "schedule",
        "queue-depth",
        "max-queued",
        "preset",
        "both-strands",
        "quiet",
    ])?;
    let index_path = options.require("index")?;
    let threads = thread_count(options)?;
    let shards = shard_count(options)?;
    let schedule = schedule_kind(options)?;
    let config = preset(options.get("preset").unwrap_or("short"))?;
    let quiet = options.switch("quiet");
    let multi = MultiConfig {
        threads,
        queue_depth: options.number("queue-depth", 0)?,
        max_queued: options.number("max-queued", 0)?,
        both_strands: options.switch("both-strands"),
    };

    if shards <= 1 && schedule == Schedule::Fanout {
        let mapper = mapper_from_index_file(index_path, config)?;
        let graph = mapper.shared_graph();
        let engine = MultiEngine::new(Arc::new(mapper), seq_of, multi);
        return run_daemon(options, engine, &graph, quiet, None);
    }

    // Re-shard the persisted index: same graph, same frequency threshold,
    // so replies stay byte-identical to the monolithic daemon.
    let sharded = Arc::new(sharded_from_index_file(index_path, config, shards)?);
    let graph = sharded.shared_graph();
    match schedule {
        Schedule::Fanout => {
            let engine = MultiEngine::new(Arc::clone(&sharded), seq_of, multi);
            run_daemon(options, engine, &graph, quiet, None)
        }
        Schedule::Elastic => {
            let affinity = ShardAffinity::pin_workers(&sharded.shard_loads(), threads);
            let pools = affinity.groups().len();
            let rebalancer = Arc::new(Mutex::new(Rebalancer::new(
                affinity.groups(),
                shards,
                RebalanceConfig::default(),
            )));
            let route = pool_route(Arc::clone(&sharded), Arc::clone(&rebalancer), pools);
            let engine =
                MultiEngine::with_routing(Arc::clone(&sharded), seq_of, multi, pools, Some(route));
            run_daemon(options, engine, &graph, quiet, Some(rebalancer))
        }
    }
}

/// The serve-side analogue of the elastic producer's pre-route pass: tag a
/// request batch with the pool owning its dominant shard group (strict
/// majority of routed seed hits), or `None` to spill to the least-loaded
/// pool. Each call also feeds the live per-shard seed-hit counters to the
/// rebalancer, so pool ownership follows observed load across requests.
fn pool_route(
    index: Arc<ShardedIndex>,
    rebalancer: Arc<Mutex<Rebalancer>>,
    pools: usize,
) -> RouteHook<FastqRecord> {
    Arc::new(move |batch| {
        let router = index.router();
        let mut shard_hits = vec![0u64; index.shards().len()];
        for record in batch {
            for (shard, hits) in router.route_hits(&record.seq).into_iter().enumerate() {
                shard_hits[shard] += hits;
            }
        }
        let live: Vec<u64> = index.shard_stats().iter().map(|s| s.seed_hits).collect();
        let Ok(mut rebalancer) = rebalancer.lock() else {
            return None;
        };
        rebalancer.observe(&live);
        let mut pool_hits = vec![0u64; pools];
        for (shard, &hits) in shard_hits.iter().enumerate() {
            pool_hits[rebalancer.pool_of(shard)] += hits;
        }
        let total: u64 = pool_hits.iter().sum();
        let (pool, best) = pool_hits
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(pool, hits)| (hits, std::cmp::Reverse(pool)))?;
        (total > 0 && 2 * best > total).then_some(pool)
    })
}

/// The daemon proper: accept loop, per-connection handlers, lifetime
/// report. Generic over the mapper behind the engine — the monolithic
/// [`SegramMapper`] or a routed [`ShardedIndex`] — because requests are
/// handled identically either way.
fn run_daemon<M: ReadMapper + Send + Sync + 'static>(
    options: &Options,
    engine: MultiEngine<M, FastqRecord>,
    graph: &GenomeGraph,
    quiet: bool,
    rebalancer: Option<Arc<Mutex<Rebalancer>>>,
) -> Result<String, CliError> {
    let addr = options.get("addr").unwrap_or("127.0.0.1:0");
    let listener = TcpListener::bind(addr).map_err(|e| CliError::io(addr, e))?;
    let local = listener.local_addr().map_err(|e| CliError::io(addr, e))?;
    // Announce the address *before* blocking in accept: stdout for humans,
    // --addr-file for scripts and tests that must discover the port.
    println!("listening on {local}");
    let _ = std::io::stdout().flush();
    if let Some(path) = options.get("addr-file") {
        write_file(path, &format!("{local}\n"))?;
    }

    let stats = ServeStats::default();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let engine = &engine;
            let stats = &stats;
            let stop = &stop;
            scope.spawn(move || {
                if let Control::Quit = handle_connection(stream, engine, graph, quiet, stats) {
                    stop.store(true, Ordering::SeqCst);
                    // The accept loop is blocked in `incoming()`; one
                    // throwaway connection wakes it to observe `stop`.
                    let _ = TcpStream::connect(local);
                }
            });
        }
    });
    let pools = engine.pools();
    let counters = engine.pool_counters();
    engine.shutdown();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "served {} requests ({} cancelled by clients, {} refused busy, {} failed)",
        stats.served.load(Ordering::Relaxed),
        stats.cancelled.load(Ordering::Relaxed),
        stats.refused.load(Ordering::Relaxed),
        stats.failed.load(Ordering::Relaxed)
    );
    if pools > 1 {
        let migrations = rebalancer
            .as_ref()
            .and_then(|r| r.lock().ok().map(|r| r.migrations()))
            .unwrap_or(0);
        let _ = writeln!(
            report,
            "elastic schedule: {pools} pools, {} batches routed, {} spilled, {} stolen, \
             {migrations} shard migrations",
            counters.routed, counters.spilled, counters.stolen
        );
    }
    Ok(report)
}

/// Handles one client connection: parse the header line, then run the
/// request (or acknowledge QUIT). Reply-side write failures are ignored —
/// the client is gone, and its request has already been settled.
fn handle_connection<M: ReadMapper + Send + Sync + 'static>(
    stream: TcpStream,
    engine: &MultiEngine<M, FastqRecord>,
    graph: &GenomeGraph,
    quiet: bool,
    stats: &ServeStats,
) -> Control {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".to_owned());
    let Ok(read_half) = stream.try_clone() else {
        return Control::Continue;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    let mut header = String::new();
    if reader.read_line(&mut header).is_err() || header.is_empty() {
        return Control::Continue;
    }
    let header = header.trim_end();
    if header == "QUIT" {
        let _ = writer.write_all(b"BYE\n");
        let _ = writer.flush();
        if !quiet {
            eprintln!("serve: shutdown requested by {peer}");
        }
        return Control::Quit;
    }

    match parse_map_header(header) {
        Err(message) => {
            let _ = writeln!(writer, "ERR {message}");
            let _ = writer.flush();
        }
        Ok((format, payload_len)) => {
            handle_map(
                reader,
                writer,
                format,
                payload_len,
                engine,
                graph,
                &peer,
                quiet,
                stats,
            );
        }
    }
    Control::Continue
}

/// Parses `MAP <sam|gaf> <payload-bytes>`.
fn parse_map_header(header: &str) -> Result<(WireFormat, u64), String> {
    let mut tokens = header.split_whitespace();
    match tokens.next() {
        Some("MAP") => {}
        _ => return Err(format!("unknown command {header:?} (expected MAP or QUIT)")),
    }
    let format = tokens
        .next()
        .and_then(WireFormat::parse)
        .ok_or_else(|| format!("bad MAP header {header:?} (expected MAP <sam|gaf> <bytes>)"))?;
    let len: u64 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad payload length in {header:?}"))?;
    if tokens.next().is_some() {
        return Err(format!("trailing tokens in {header:?}"));
    }
    Ok((format, len))
}

/// Runs one MAP request end to end: admission, streaming FASTQ decode off
/// the socket (pushing batches as they parse, so mapping overlaps the
/// transfer), ordered drain, reply.
#[allow(clippy::too_many_arguments)]
fn handle_map<M: ReadMapper + Send + Sync + 'static>(
    reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
    format: WireFormat,
    payload_len: u64,
    engine: &MultiEngine<M, FastqRecord>,
    graph: &GenomeGraph,
    peer: &str,
    quiet: bool,
    stats: &ServeStats,
) {
    let mut handle = match engine.open() {
        Ok(handle) => handle,
        Err(busy) => {
            ServeStats::bump(&stats.refused);
            if !quiet {
                eprintln!("serve: refused {peer}: {busy}");
            }
            // Drain the announced payload before replying: closing the
            // socket while the client is still sending would RST the BUSY
            // line away before the client reads it.
            let _ = std::io::copy(&mut reader.take(payload_len), &mut std::io::sink());
            let _ = writeln!(writer, "BUSY {}", busy.queued);
            let _ = writer.flush();
            return;
        }
    };
    let id = handle.id();
    if !quiet {
        eprintln!("serve: request {id} from {peer}: {payload_len} payload bytes");
    }

    // Input side: decode FASTQ straight off the socket, bounded by the
    // declared payload length so the parser cannot over-read into a next
    // request. The byte counter distinguishes "client disconnected
    // mid-payload" (cancel this request only) from a complete payload.
    let seen = Arc::new(AtomicU64::new(0));
    let mut limited = BufReader::new(CountingReader {
        inner: reader.take(payload_len),
        seen: Arc::clone(&seen),
    });
    let mut decode_failure: Option<String> = None;
    let mut batch: Vec<FastqRecord> = Vec::with_capacity(SERVE_BATCH);
    for record in FastqReader::new(&mut limited, Ambiguity::Reject) {
        match record {
            Ok(record) => {
                batch.push(record);
                if batch.len() == SERVE_BATCH && !handle.push(std::mem::take(&mut batch)) {
                    break;
                }
            }
            Err(err) => {
                decode_failure = Some(err.to_string());
                break;
            }
        }
    }
    if decode_failure.is_none() && !batch.is_empty() {
        handle.push(std::mem::take(&mut batch));
    }

    let short_payload = seen.load(Ordering::Relaxed) < payload_len;
    if !short_payload {
        // Drain any unparsed remainder (a decode error stops the parser
        // mid-payload): replying over a socket with unread inbound bytes
        // risks an RST that discards the reply in flight.
        let _ = std::io::copy(&mut limited, &mut std::io::sink());
    }
    if short_payload || decode_failure.is_some() {
        // Cancel *this* request: queued and in-flight batches wind down,
        // every other request is untouched.
        handle.cancel();
        ServeStats::bump(&stats.cancelled);
        if let Some(message) = decode_failure {
            let _ = writeln!(writer, "ERR {message}");
            let _ = writer.flush();
        }
        if !quiet {
            eprintln!(
                "serve: request {id} cancelled ({} of {payload_len} payload bytes)",
                seen.load(Ordering::Relaxed)
            );
        }
        return;
    }
    handle.finish_input();

    // Output side: drain strictly-ordered batches into the same document
    // writers `segram map` uses, so the reply bytes diff clean against a
    // one-shot run.
    match render_document(handle, format, graph) {
        Ok((document, reads, mapped)) => {
            ServeStats::bump(&stats.served);
            if !quiet {
                eprintln!("serve: request {id} done: {mapped}/{reads} reads mapped");
            }
            let _ = writeln!(writer, "OK");
            for chunk in document.chunks(CHUNK_BYTES) {
                let _ = writeln!(writer, "CHUNK {}", chunk.len());
                let _ = writer.write_all(chunk);
            }
            let _ = writeln!(writer, "END reads={reads} mapped={mapped}");
            let _ = writer.flush();
        }
        Err(message) => {
            ServeStats::bump(&stats.failed);
            if !quiet {
                eprintln!("serve: request {id} failed: {message}");
            }
            let _ = writeln!(writer, "ERR {message}");
            let _ = writer.flush();
        }
    }
}

/// Drains a finished-input request into a rendered SAM/GAF document.
/// Returns `(document bytes, reads, mapped)`.
fn render_document<M: ReadMapper + Send + Sync + 'static>(
    mut handle: RequestHandle<M, FastqRecord>,
    format: WireFormat,
    graph: &GenomeGraph,
) -> Result<(Vec<u8>, usize, usize), String> {
    enum Doc {
        Sam(SamWriter<Vec<u8>>),
        Gaf(GafWriter<Vec<u8>>),
    }
    let mut doc = match format {
        WireFormat::Sam => Doc::Sam(
            SamWriter::new(Vec::new(), "graph", graph.total_chars())
                .map_err(|e| format!("render failed: {e}"))?,
        ),
        WireFormat::Gaf => Doc::Gaf(GafWriter::new(Vec::new())),
    };
    while let Some(batch) = handle.next_output() {
        for (record, outcome) in &batch {
            let result = match &mut doc {
                Doc::Sam(w) => {
                    let rec = sam_record_for(&record.id, &record.seq, outcome);
                    w.write_line(&rec.to_sam_line()).map_err(|e| e.to_string())
                }
                Doc::Gaf(w) => match gaf_record_for(&record.id, &record.seq, graph, outcome) {
                    Err(e) => Err(e.to_string()),
                    Ok(None) => Ok(()),
                    Ok(Some(rec)) => w.write_record(&rec).map_err(|e| e.to_string()),
                },
            };
            if let Err(message) = result {
                handle.cancel();
                return Err(format!("render failed: {message}"));
            }
        }
    }
    let report = handle
        .finish()
        .map_err(|p| format!("mapping panicked: {}", p.message))?;
    let bytes = match doc {
        Doc::Sam(w) => w.finish(),
        Doc::Gaf(w) => w.finish(),
    }
    .map_err(|e| format!("render failed: {e}"))?;
    Ok((bytes, report.reads, report.mapped))
}

/// `segram request`.
pub fn request(options: &Options) -> Result<String, CliError> {
    if options.switch("help") {
        return Ok(REQUEST_HELP.to_owned());
    }
    options.reject_unknown(&[
        "addr",
        "reads",
        "format",
        "output",
        "cancel-after",
        "shutdown",
    ])?;
    let addr = options.require("addr")?;

    if options.switch("shutdown") {
        let stream = TcpStream::connect(addr).map_err(|e| CliError::io(addr, e))?;
        let read_half = stream.try_clone().map_err(|e| CliError::io(addr, e))?;
        let mut writer = BufWriter::new(stream);
        writer
            .write_all(b"QUIT\n")
            .and_then(|()| writer.flush())
            .map_err(|e| CliError::io(addr, e))?;
        let mut line = String::new();
        BufReader::new(read_half)
            .read_line(&mut line)
            .map_err(|e| CliError::io(addr, e))?;
        if line.trim_end() != "BYE" {
            return Err(CliError::server(format!(
                "unexpected shutdown reply {:?}",
                line.trim_end()
            )));
        }
        return Ok("server acknowledged shutdown\n".to_owned());
    }

    let reads_path = options.require("reads")?;
    let format = options.get("format").unwrap_or("sam");
    if WireFormat::parse(format).is_none() {
        return Err(CliError::usage(format!(
            "unknown format {format:?} (expected sam|gaf)"
        )));
    }
    let payload = std::fs::read(reads_path).map_err(|e| CliError::io(reads_path, e))?;

    let stream = TcpStream::connect(addr).map_err(|e| CliError::io(addr, e))?;
    let read_half = stream.try_clone().map_err(|e| CliError::io(addr, e))?;
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "MAP {format} {}", payload.len()).map_err(|e| CliError::io(addr, e))?;

    if let Some(text) = options.get("cancel-after") {
        let cut: usize = text
            .parse()
            .map_err(|_| CliError::usage(format!("--cancel-after: unparsable value {text:?}")))?;
        let cut = cut.min(payload.len());
        writer
            .write_all(&payload[..cut])
            .and_then(|()| writer.flush())
            .map_err(|e| CliError::io(addr, e))?;
        // Drop both halves: the server sees EOF mid-payload and cancels
        // only this request.
        drop(writer);
        drop(read_half);
        return Ok(format!(
            "disconnected after {cut} of {} payload bytes (server cancels this request)\n",
            payload.len()
        ));
    }

    writer
        .write_all(&payload)
        .and_then(|()| writer.flush())
        .map_err(|e| CliError::io(addr, e))?;

    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| CliError::io(addr, e))?;
    let status = line.trim_end().to_owned();
    if let Some(depth) = status.strip_prefix("BUSY ") {
        return Err(CliError::server(format!(
            "server busy (queued depth {depth}); retry later"
        )));
    }
    if let Some(message) = status.strip_prefix("ERR ") {
        return Err(CliError::server(message.to_owned()));
    }
    if status != "OK" {
        return Err(CliError::server(format!("unexpected reply {status:?}")));
    }

    let mut document: Vec<u8> = Vec::new();
    let summary = loop {
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| CliError::io(addr, e))?;
        let trimmed = line.trim_end();
        if let Some(len) = trimmed.strip_prefix("CHUNK ") {
            let len: usize = len
                .parse()
                .map_err(|_| CliError::server(format!("bad chunk length {trimmed:?}")))?;
            let start = document.len();
            document.resize(start + len, 0);
            reader
                .read_exact(&mut document[start..])
                .map_err(|e| CliError::io(addr, e))?;
        } else if let Some(summary) = trimmed.strip_prefix("END ") {
            break summary.to_owned();
        } else {
            return Err(CliError::server(format!("unexpected reply {trimmed:?}")));
        }
    };

    let mut report = String::new();
    let _ = writeln!(
        report,
        "received {} document bytes from {addr} ({summary})",
        document.len()
    );
    match options.get("output") {
        Some(path) => {
            // Raw bytes, not a lossy string round-trip: the document must
            // diff byte-identically against a one-shot `segram map` run.
            if let Some(parent) = Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).map_err(|e| CliError::io(path, e))?;
                }
            }
            std::fs::write(path, &document).map_err(|e| CliError::io(path, e))?;
            let _ = writeln!(report, "wrote {} to {path}", format.to_uppercase());
        }
        None => report.push_str(&String::from_utf8_lossy(&document)),
    }
    Ok(report)
}
