//! **Figure 15**: end-to-end throughput of GraphAligner, vg, and SeGraM
//! for long reads (PacBio/ONT at 5 %/10 % error rates).
//!
//! Paper result: SeGraM outperforms GraphAligner by 5.9× and vg by 3.9× on
//! average, with 4.1×/4.4× lower power; throughput changes little between
//! the 5 % and 10 % error datasets.
//!
//! Substitutions (see DESIGN.md): software baselines are our Rust
//! reimplementations of the tools' algorithmic cores measured single-
//! threaded on this machine; SeGraM is the calibrated 32-accelerator
//! hardware model; CPU power numbers are the paper's own measurements.

use segram_bench::experiments::{figure_row, print_rows, PowerComparison};
use segram_bench::{header, row, write_results, Scale};
use segram_core::SegramConfig;
use segram_testkit::Serialize;

#[derive(Serialize)]
struct Fig15 {
    rows: Vec<segram_bench::experiments::FigureRow>,
    power: PowerComparison,
    paper_speedup_vs_graphaligner: f64,
    paper_speedup_vs_vg: f64,
}

fn main() {
    let scale = Scale::from_env();
    header(&format!(
        "Figure 15: long-read end-to-end throughput ({} reads x {} bp per dataset)",
        scale.read_count, scale.long_read_len
    ));

    let datasets = [
        (scale.dataset_config(151).pacbio_5(), 0.05),
        (scale.dataset_config(152).ont_10(), 0.10),
    ];
    let mut rows = Vec::new();
    for (dataset, error_rate) in &datasets {
        let config = SegramConfig::long_reads(*error_rate);
        rows.push(figure_row(dataset, config));
    }
    let power = PowerComparison::long_reads();
    print_rows(&rows, &power);

    header("Shape checks against the paper");
    let t5 = rows[0].segram_system_reads_per_s;
    let t10 = rows[1].segram_system_reads_per_s;
    row(
        "SeGraM throughput 5% vs 10% error",
        format!("{:.0} vs {:.0} reads/s (paper: nearly equal)", t5, t10),
    );
    row(
        "per-seed latency (paper: 35.9/37.5 us at full scale)",
        format!(
            "{:.1} / {:.1} us at {} bp reads",
            rows[0].segram_per_seed_latency_us,
            rows[1].segram_per_seed_latency_us,
            scale.long_read_len
        ),
    );
    row(
        "SeGraM accuracy vs truth",
        format!(
            "{:.0}% / {:.0}%",
            rows[0].segram_accuracy * 100.0,
            rows[1].segram_accuracy * 100.0
        ),
    );

    write_results(
        "fig15",
        &Fig15 {
            rows,
            power,
            paper_speedup_vs_graphaligner: 5.9,
            paper_speedup_vs_vg: 3.9,
        },
    );
}
