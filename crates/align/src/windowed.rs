//! Windowed (divide-and-conquer) BitAlign.
//!
//! "Similar to GenASM, BitAlign also follows the divide-and-conquer
//! approach, where we divide the linearized subgraph and the query read
//! into overlapping windows and execute BitAlign for each window. After all
//! windows' traceback outputs are found, we merge them to find the final
//! traceback output." (Section 7)
//!
//! The hardware configuration processes `W = 128` bits per window and
//! commits `W - O = 80` pattern characters per window (Section 11.3: a
//! 10 kbp read takes 125 windows); GenASM uses `W = 64` committing 40.
//! Windowing is a heuristic: each window's alignment is locally optimal,
//! so the total distance is an upper bound on the exact distance — property
//! tests check it is exact for realistic error rates.

use segram_graph::{DnaSeq, LinearizedGraph};

use crate::{AlignError, Alignment, BitAlignConfig, BitAligner, Cigar, CigarOp, StartMode};

/// Configuration of windowed alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowConfig {
    /// Window size `W` in pattern characters (= bitvector width in the
    /// accelerator). The paper's BitAlign uses 128; GenASM uses 64.
    pub window: usize,
    /// Overlap `O`: only `W - O` pattern characters are committed per
    /// window. BitAlign commits 80 of 128 (`O = 48`); GenASM 40 of 64
    /// (`O = 24`).
    pub overlap: usize,
    /// Per-window edit threshold. The committed prefix of each window must
    /// be alignable within this budget.
    pub window_k: u32,
}

impl WindowConfig {
    /// The paper's BitAlign configuration: `W = 128`, `O = 48`.
    pub fn bitalign() -> Self {
        Self {
            window: 128,
            overlap: 48,
            window_k: 48,
        }
    }

    /// The GenASM configuration: `W = 64`, `O = 24`.
    pub fn genasm() -> Self {
        Self {
            window: 64,
            overlap: 24,
            window_k: 24,
        }
    }

    /// Pattern characters committed per window (`W - O`).
    pub fn stride(&self) -> usize {
        self.window - self.overlap
    }

    /// Number of windows needed for a pattern of `m` characters
    /// (`ceil(m / (W - O))`), the count used by the hardware cycle model.
    pub fn window_count(&self, m: usize) -> usize {
        m.div_ceil(self.stride())
    }

    fn validate(&self) -> Result<(), AlignError> {
        if self.window == 0 {
            return Err(AlignError::InvalidConfig {
                reason: "window size must be positive",
            });
        }
        if self.overlap >= self.window {
            return Err(AlignError::InvalidConfig {
                reason: "overlap must be smaller than the window",
            });
        }
        Ok(())
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self::bitalign()
    }
}

/// Aligns a long read against a linearized subgraph window by window.
///
/// The first window searches all start positions (seed-extension mode, or a
/// fixed anchor via `start`); every later window is anchored at the text
/// position where the previous window's committed prefix ended. Within each
/// window the full BitAlign machinery (bitvector generation + traceback)
/// runs on `W`-character slices, so memory stays bounded regardless of read
/// length — the property that lets the hardware use fixed scratchpads.
///
/// # Errors
///
/// Returns [`AlignError::WindowFailed`] when some window cannot be aligned
/// within `window_k` edits, and propagates empty-input errors.
///
/// # Examples
///
/// ```
/// use segram_align::{windowed_bitalign, StartMode, WindowConfig};
/// use segram_graph::LinearizedGraph;
///
/// let text: segram_graph::DnaSeq = "ACGT".repeat(100).parse()?;
/// let lin = LinearizedGraph::from_linear_seq(&text);
/// let read: segram_graph::DnaSeq = "ACGT".repeat(80).parse()?;
/// let a = windowed_bitalign(&lin, &read, WindowConfig::bitalign(), StartMode::Free)?;
/// assert_eq!(a.edit_distance, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn windowed_bitalign(
    lin: &LinearizedGraph,
    pattern: &DnaSeq,
    config: WindowConfig,
    start: StartMode,
) -> Result<Alignment, AlignError> {
    config.validate()?;
    if pattern.is_empty() {
        return Err(AlignError::EmptyPattern);
    }
    if lin.is_empty() {
        return Err(AlignError::EmptyText);
    }
    let m = pattern.len();
    if m <= config.window {
        // Single window: plain BitAlign.
        return BitAligner::new(
            lin,
            pattern,
            BitAlignConfig {
                k: config.window_k,
                start,
                ..BitAlignConfig::default()
            },
        )?
        .align();
    }

    let mut cigar = Cigar::new();
    let mut path: Vec<u32> = Vec::new();
    let mut q = 0usize; // pattern cursor
    let mut text_cursor: Option<usize> = match start {
        StartMode::Free => None,
        StartMode::Anchored(a) => Some(a),
    };
    let mut overall_start: Option<usize> = None;

    while q < m {
        let win_len = config.window.min(m - q);
        let last_window = q + win_len >= m;
        let commit_target = if last_window {
            win_len
        } else {
            config.stride().min(win_len)
        };
        let chunk = pattern.slice(q, q + win_len);
        let anchor = text_cursor.unwrap_or(0);
        if anchor >= lin.len() {
            // Ran off the reference: remaining pattern chars are insertions.
            cigar.push_run(CigarOp::Ins, (m - q) as u32);
            break;
        }
        // Anchored windows are built by path reachability so hops whose
        // landing sites lie far ahead in linear coordinates (e.g. across a
        // structural-variant branch) stay available; the free first window
        // searches the entire region.
        let (window_lin, to_parent, window_start) = match text_cursor {
            Some(from) => {
                let (w, map) = lin.reachable_window(from, win_len + config.window_k as usize + 1);
                (w, Some(map), StartMode::Anchored(0))
            }
            None => (lin.clone(), None, StartMode::Free),
        };
        let parent_of = |local: usize| -> usize {
            match &to_parent {
                Some(map) => map[local] as usize,
                None => local,
            }
        };
        let mut aligner = BitAligner::new(
            &window_lin,
            &chunk,
            BitAlignConfig {
                k: config.window_k,
                start: window_start,
                ..BitAlignConfig::default()
            },
        )?;
        let window_alignment = aligner
            .align()
            .map_err(|_| AlignError::WindowFailed { pattern_pos: q })?;
        if overall_start.is_none() {
            overall_start = Some(parent_of(window_alignment.text_start));
        }

        // Commit the first `commit_target` pattern-consuming ops.
        let mut committed_pattern = 0usize;
        let mut path_cursor = 0usize;
        for op in window_alignment.cigar.ops() {
            if committed_pattern >= commit_target && op.consumes_read() {
                break;
            }
            cigar.push(op);
            if op.consumes_read() {
                committed_pattern += 1;
            }
            if op.consumes_ref() {
                let local = window_alignment.path[path_cursor] as usize;
                path.push(parent_of(local) as u32);
                path_cursor += 1;
            }
        }
        q += committed_pattern;
        // Where does the next window start in the text? At the first
        // reference character the *uncommitted* suffix of this window's
        // alignment consumed — this follows the chosen path across hops.
        let next_text = if path_cursor < window_alignment.path.len() {
            parent_of(window_alignment.path[path_cursor] as usize)
        } else {
            match path.last() {
                // No uncommitted reference consumption: continue at the
                // first successor of the last consumed character (the
                // backbone continuation when several exist).
                Some(&last) => lin
                    .successors(last as usize)
                    .first()
                    .map_or(lin.len(), |&s| s as usize),
                None => parent_of(window_alignment.text_start),
            }
        };
        text_cursor = Some(next_text);
        if committed_pattern == 0 {
            // No progress (pathological window): force an insertion to
            // guarantee termination.
            cigar.push(CigarOp::Ins);
            q += 1;
        }
    }

    let text_start = overall_start.unwrap_or(0);
    let text_end = path.last().map_or(text_start, |&p| p as usize + 1);
    Ok(Alignment {
        edit_distance: cigar.edit_count(),
        cigar,
        text_start: path.first().map_or(text_start, |&p| p as usize),
        text_end,
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_dp::graph_dp_distance;

    fn linear(text: &str) -> LinearizedGraph {
        LinearizedGraph::from_linear_seq(&text.parse().unwrap())
    }

    #[test]
    fn window_count_matches_paper() {
        // Section 11.3: 10 kbp read -> 125 windows for BitAlign (stride 80)
        // and 250 windows for GenASM (stride 40).
        assert_eq!(WindowConfig::bitalign().window_count(10_000), 125);
        assert_eq!(WindowConfig::genasm().window_count(10_000), 250);
    }

    /// Deterministic non-periodic text so exact matches are unique.
    fn lcg_text(len: usize, seed: u64) -> String {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ['A', 'C', 'G', 'T'][(state >> 33) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn exact_long_read_aligns_with_zero_edits() {
        let text = lcg_text(800, 7);
        let lin = linear(&text);
        let read: DnaSeq = text[160..160 + 500].parse().unwrap();
        let a = windowed_bitalign(&lin, &read, WindowConfig::bitalign(), StartMode::Free).unwrap();
        assert_eq!(a.edit_distance, 0);
        assert_eq!(a.text_start, 160);
        assert_eq!(a.cigar.read_len() as usize, 500);
    }

    #[test]
    fn scattered_errors_match_exact_dp() {
        // Plant isolated substitutions far apart; windowed must equal exact.
        let text = "ACGTTGCAGTCATGCA".repeat(40); // 640 chars
        let lin = linear(&text);
        let mut read_string = text[100..500].to_string();
        for pos in [50usize, 180, 333] {
            let replacement = if &read_string[pos..=pos] == "A" {
                "C"
            } else {
                "A"
            };
            read_string.replace_range(pos..=pos, replacement);
        }
        let read: DnaSeq = read_string.parse().unwrap();
        let (exact, _) = graph_dp_distance(&lin, &read, StartMode::Free).unwrap();
        let a = windowed_bitalign(&lin, &read, WindowConfig::bitalign(), StartMode::Free).unwrap();
        assert_eq!(a.edit_distance, exact);
        assert!(a.edit_distance <= 3);
    }

    #[test]
    fn windowed_distance_upper_bounds_exact() {
        let text = "ACGATTGCAGTTCAAGGCA".repeat(30);
        let lin = linear(&text);
        // A read with an indel and substitutions.
        let mut read_string = text[37..437].to_string();
        read_string.remove(100);
        read_string.insert(250, 'T');
        read_string.replace_range(10..11, "G");
        let read: DnaSeq = read_string.parse().unwrap();
        let (exact, _) = graph_dp_distance(&lin, &read, StartMode::Free).unwrap();
        let a = windowed_bitalign(&lin, &read, WindowConfig::bitalign(), StartMode::Free).unwrap();
        assert!(a.edit_distance >= exact);
        assert!(a.edit_distance <= exact + 2, "heuristic drift too large");
    }

    #[test]
    fn genasm_config_works_on_linear_text() {
        let text = "TGCATGCA".repeat(50);
        let lin = linear(&text);
        let read: DnaSeq = text[24..324].parse().unwrap();
        let a = windowed_bitalign(&lin, &read, WindowConfig::genasm(), StartMode::Free).unwrap();
        assert_eq!(a.edit_distance, 0);
    }

    #[test]
    fn short_pattern_falls_through_to_single_window() {
        let lin = linear("ACGTACGTACGT");
        let read: DnaSeq = "GTAC".parse().unwrap();
        let a = windowed_bitalign(&lin, &read, WindowConfig::bitalign(), StartMode::Free).unwrap();
        assert_eq!(a.edit_distance, 0);
        assert_eq!(a.text_start, 2);
    }

    #[test]
    fn invalid_config_rejected() {
        let lin = linear("ACGT");
        let read: DnaSeq = "AC".parse().unwrap();
        let bad = WindowConfig {
            window: 8,
            overlap: 8,
            window_k: 2,
        };
        assert!(matches!(
            windowed_bitalign(&lin, &read, bad, StartMode::Free),
            Err(AlignError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn cigar_replay_validates_windowed_traceback() {
        let text = "ACGTTGCAGTCA".repeat(60);
        let lin = linear(&text);
        let mut read_string = text[50..450].to_string();
        read_string.replace_range(200..201, if &text[250..251] == "A" { "C" } else { "A" });
        let read: DnaSeq = read_string.parse().unwrap();
        let a = windowed_bitalign(&lin, &read, WindowConfig::bitalign(), StartMode::Free).unwrap();
        let fragment = a.ref_fragment(&lin);
        assert!(
            a.cigar.replay(&fragment, read.as_slice()).is_some(),
            "windowed CIGAR must replay: {}",
            a.cigar
        );
    }
}
