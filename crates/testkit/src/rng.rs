//! Seeded random-number generation with the `rand`-style surface the
//! workspace uses (`Rng`, `SeedableRng`, `ChaCha8Rng`), implemented from
//! scratch so nothing depends on crates.io.
//!
//! The generator is a genuine ChaCha stream cipher reduced to 8 rounds —
//! the same construction `rand_chacha::ChaCha8Rng` uses. Streams are not
//! bit-compatible with `rand_chacha` (seed expansion differs), which is
//! fine: no test in this workspace pins exact draws, only seeded
//! determinism and distribution shape.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly distributed `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable constructor surface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods (mirrors the subset of `rand::Rng` this
/// workspace uses: `gen_range`, `gen_bool`, `gen`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a type with a standard uniform distribution
    /// (`f64`/`f32` in `[0, 1)`, full range for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Fisher-Yates shuffles a slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (mirrors `rand`'s `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Scalars uniformly samplable between two bounds (mirrors
/// `rand::distributions::uniform::SampleUniform`). The single blanket
/// [`SampleRange`] impl below routes through this trait, which keeps
/// integer-literal inference working (`slice[rng.gen_range(0..4)]`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `start..end`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `start..=end`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                let width = (end as $wide).wrapping_sub(start as $wide) as u64;
                start.wrapping_add((rng.next_u64() % width) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                let width =
                    ((end as $wide).wrapping_sub(start as $wide) as u64).wrapping_add(1);
                if width == 0 {
                    // Full 64-bit domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*}
}
// Widths are computed in the same-width *unsigned* type (two's-complement
// subtraction), so signed ranges wider than the type's positive half
// (e.g. `i8::MIN..i8::MAX`) don't overflow.
int_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
        }
    )*}
}
float_sample_uniform!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(rng, start, end)
    }
}

/// SplitMix64: the standard seed-expansion generator.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A ChaCha stream cipher with 8 double-rounds used as a deterministic,
/// high-quality PRNG (the construction behind `rand_chacha::ChaCha8Rng`).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unconsumed word in `block` (16 = exhausted).
    cursor: usize,
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    /// Builds a generator from a 256-bit key (eight little-endian words).
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" block constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // Words 12..13: 64-bit block counter; 14..15: stream id (zero).
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    #[inline]
    fn quarter_round(block: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        block[a] = block[a].wrapping_add(block[b]);
        block[d] = (block[d] ^ block[a]).rotate_left(16);
        block[c] = block[c].wrapping_add(block[d]);
        block[b] = (block[b] ^ block[c]).rotate_left(12);
        block[a] = block[a].wrapping_add(block[b]);
        block[d] = (block[d] ^ block[a]).rotate_left(8);
        block[c] = block[c].wrapping_add(block[d]);
        block[b] = (block[b] ^ block[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..Self::ROUNDS / 2 {
            // Column round.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // Advance the 64-bit counter in words 12..13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        u64::from(hi) << 32 | u64::from(lo)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        Self::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn extreme_signed_ranges_stay_in_bounds() {
        // Regression: widths wider than the signed type's positive half
        // must not wrap (computed in the unsigned counterpart).
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..20_000 {
            let v = rng.gen_range(i8::MIN..i8::MAX);
            assert!((i8::MIN..i8::MAX).contains(&v));
            let w = rng.gen_range(-100i8..=100);
            assert!((-100..=100).contains(&w));
            saw_low |= w < -64;
            saw_high |= w > 64;
            let x = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = x; // full domain: any value is valid
        }
        // Both halves of the wide range are actually reachable.
        assert!(saw_low && saw_high);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_f64_is_half_open() {
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }

    #[test]
    fn words_are_roughly_uniform() {
        // Cheap chi-square-ish sanity: byte histogram of 64k draws.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut histogram = [0u32; 256];
        for _ in 0..65_536 {
            histogram[(rng.next_u64() & 0xff) as usize] += 1;
        }
        let (min, max) = histogram
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        // Expected 256 per bucket; allow generous slack.
        assert!(min > 150 && max < 400, "histogram spread {min}..{max}");
    }
}
