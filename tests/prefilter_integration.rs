//! Integration tests for the pre-alignment filter study (the paper's
//! footnote-6 future work): enabling a sound prefilter must never lose a
//! mapping, and it must actually reject decoy candidates.

use segram_testkit::rng::ChaCha8Rng;
use segram_testkit::rng::{Rng, SeedableRng};

use segram_core::{SegramConfig, SegramMapper};
use segram_filter::FilterSpec;
use segram_graph::Base;
use segram_sim::DatasetConfig;

fn all_specs() -> [FilterSpec; 5] {
    [
        FilterSpec::BaseCount,
        FilterSpec::QGram { q: 5 },
        FilterSpec::ShiftedHamming,
        FilterSpec::SneakySnake,
        FilterSpec::cascade(),
    ]
}

/// Every read that maps without the filter still maps — to the same place
/// with the same edit distance — with any filter enabled.
#[test]
fn prefilter_loses_no_mappings_on_short_reads() {
    let dataset = DatasetConfig::tiny(11).illumina(100);
    let plain = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    for spec in all_specs() {
        let filtered = SegramMapper::new(
            dataset.graph().clone(),
            SegramConfig::short_reads().with_prefilter(spec),
        );
        for read in &dataset.reads {
            let (without, _) = plain.map_read(&read.seq);
            let (with, _) = filtered.map_read(&read.seq);
            match (without, with) {
                (None, _) => {}
                (Some(w), Some(f)) => {
                    assert_eq!(
                        (w.linear_start, w.alignment.edit_distance),
                        (f.linear_start, f.alignment.edit_distance),
                        "{:?} changed the mapping of read {}",
                        spec,
                        read.id
                    );
                }
                (Some(w), None) => panic!(
                    "{:?} lost read {} (was at {} with {} edits)",
                    spec, read.id, w.linear_start, w.alignment.edit_distance
                ),
            }
        }
    }
}

/// Long noisy reads keep their mappings too (the windowed alignment path).
#[test]
fn prefilter_loses_no_mappings_on_long_reads() {
    let dataset = DatasetConfig::tiny(13).pacbio_5();
    let mut config = SegramConfig::long_reads(0.05);
    // Cap the candidate list (identically for both mappers) to keep the
    // test fast on the repeat-heavy tiny genome.
    config.max_regions = 12;
    let plain = SegramMapper::new(dataset.graph().clone(), config);
    let filtered = SegramMapper::new(
        dataset.graph().clone(),
        SegramConfig {
            prefilter: Some(FilterSpec::cascade()),
            ..config
        },
    );
    for read in &dataset.reads {
        let (without, _) = plain.map_read(&read.seq);
        let (with, _) = filtered.map_read(&read.seq);
        if let Some(w) = without {
            let f = with.unwrap_or_else(|| panic!("cascade lost long read {}", read.id));
            assert_eq!(
                (w.linear_start, w.alignment.edit_distance),
                (f.linear_start, f.alignment.edit_distance)
            );
        }
    }
}

/// Decoy reads — an intact seed followed by random sequence — produce
/// candidate regions the filter must reject before alignment.
#[test]
fn prefilter_rejects_decoy_candidates() {
    let dataset = DatasetConfig::tiny(17).illumina(150);
    let config = SegramConfig::short_reads().with_prefilter(FilterSpec::SneakySnake);
    let mapper = SegramMapper::new(dataset.graph().clone(), config);
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    let mut filtered_total = 0usize;
    let mut decoys_with_candidates = 0usize;
    for read in dataset.reads.iter().take(10) {
        // Keep the first 40 bases (several intact minimizers seed the true
        // locus), replace the rest with random noise.
        let mut decoy = read.seq.slice(0, 40);
        for _ in 40..read.seq.len() {
            decoy.push(match rng.gen_range(0..4u8) {
                0 => Base::A,
                1 => Base::C,
                2 => Base::G,
                _ => Base::T,
            });
        }
        let (_, stats) = mapper.map_read(&decoy);
        if stats.regions_aligned + stats.regions_filtered > 0 {
            decoys_with_candidates += 1;
        }
        filtered_total += stats.regions_filtered;
    }
    assert!(
        decoys_with_candidates > 0,
        "decoy construction failed to produce any candidates"
    );
    assert!(
        filtered_total > 0,
        "the filter rejected nothing across {decoys_with_candidates} decoys with candidates"
    );
}

/// The filter statistics add up: every candidate either reaches alignment
/// or is counted as filtered.
#[test]
fn filter_statistics_are_consistent() {
    let dataset = DatasetConfig::tiny(19).illumina(100);
    let plain = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let filtered = SegramMapper::new(
        dataset.graph().clone(),
        SegramConfig::short_reads().with_prefilter(FilterSpec::cascade()),
    );
    for read in &dataset.reads {
        let (_, s0) = plain.map_read(&read.seq);
        let (_, s1) = filtered.map_read(&read.seq);
        assert_eq!(s0.regions_filtered, 0);
        // With the filter on, alignments can only decrease; the early-exit
        // and retry logic make exact equality unnecessary, but no new
        // alignment work may appear.
        assert!(s1.regions_aligned <= s0.regions_aligned + s1.regions_filtered);
    }
}
