//! **Ablation: pre-alignment filtering** — the study the paper's footnote 6
//! leaves to future work: "Employing a filtering approach as part of our
//! design would increase SeGraM's performance and efficiency".
//!
//! For each filter (none / base-count / q-gram / shifted-Hamming /
//! SneakySnake / cascade) we map the Section-10-style datasets and record
//! (a) the fraction of candidate regions rejected before BitAlign, (b) the
//! mapping accuracy (which soundness says must not drop), and (c) the
//! modeled accelerator throughput when BitAlign only sees the surviving
//! regions. Filter logic itself is simple comparators and counters —
//! GateKeeper/SneakySnake-class designs fit in a few kGE next to MinSeed —
//! so the model charges it zero cycles (it hides under MinSeed's
//! already-pipelined latency).

use segram_bench::{header, timed, write_results, Scale};
use segram_core::{EngineConfig, MapEngine, SegramConfig, SegramMapper};
use segram_filter::FilterSpec;
use segram_hw::{SeedWorkload, SegramSystem};
use segram_sim::Dataset;
use segram_testkit::Serialize;

#[derive(Serialize)]
struct FilterRow {
    filter: String,
    reject_fraction: f64,
    regions_aligned_per_read: f64,
    mapped: usize,
    accurate: usize,
    software_ms: f64,
    modeled_system_reads_per_s: f64,
    modeled_speedup_vs_unfiltered: f64,
}

#[derive(Serialize)]
struct FilterAblation {
    dataset: String,
    reads: usize,
    rows: Vec<FilterRow>,
}

fn specs() -> [(String, Option<FilterSpec>); 6] {
    [
        ("none (paper)".into(), None),
        ("base-count".into(), Some(FilterSpec::BaseCount)),
        ("q-gram(5)".into(), Some(FilterSpec::QGram { q: 5 })),
        ("shifted-hamming".into(), Some(FilterSpec::ShiftedHamming)),
        ("sneaky-snake".into(), Some(FilterSpec::SneakySnake)),
        ("cascade".into(), Some(FilterSpec::cascade())),
    ]
}

fn run_dataset(dataset: &Dataset, base: SegramConfig, tolerance: u64) -> FilterAblation {
    let system = SegramSystem::default();
    let mut rows = Vec::new();
    let mut unfiltered_throughput = 0.0f64;

    for (name, spec) in specs() {
        let mut config = base;
        config.prefilter = spec;
        // Bound the per-read candidate list so the software measurement
        // stays tractable on repeat-heavy synthetic genomes; the same cap
        // applies to every row, so the filter comparison is fair.
        config.max_regions = 48;
        let mapper = SegramMapper::new(dataset.graph().clone(), config);

        let mut mapped = 0usize;
        let mut accurate = 0usize;
        let mut aligned = 0usize;
        let mut filtered = 0usize;
        let mut minimizers = 0usize;
        let mut survivors = 0usize;
        let mut seeds = 0usize;
        let mut region_len = 0u64;
        // One serial engine run per filter: single-threaded so the
        // software-time column stays a per-core measurement, with the
        // per-read truth check done in the order-preserving sink.
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(1));
        let (_, software_s) = timed(|| {
            let report = engine.map_stream(
                dataset.reads.iter(),
                |read| &read.seq,
                |read, outcome| {
                    if let Some(m) = &outcome.mapping {
                        mapped += 1;
                        if m.linear_start.abs_diff(read.true_start_linear) <= tolerance {
                            accurate += 1;
                        }
                    }
                },
            );
            aligned += report.stats.regions_aligned;
            filtered += report.stats.regions_filtered;
            minimizers += report.stats.minimizers;
            survivors += report.stats.minimizers - report.stats.filtered_minimizers;
            seeds += report.stats.seed_locations;
            region_len += report.stats.total_region_len;
        });

        let n = dataset.reads.len() as f64;
        // The accelerator model: seeding fetches every seed as before, but
        // BitAlign only runs on regions the filter accepted.
        let workload = SeedWorkload {
            read_len: dataset.read_len(),
            minimizers_per_read: minimizers as f64 / n,
            surviving_minimizers: survivors as f64 / n,
            seeds_per_read: (aligned as f64 / n).max(1.0),
            avg_region_len: if aligned == 0 {
                0.0
            } else {
                region_len as f64 / aligned as f64
            },
        };
        let throughput = system.throughput_reads_per_s(&workload);
        if spec.is_none() {
            unfiltered_throughput = throughput;
        }
        rows.push(FilterRow {
            filter: name,
            reject_fraction: if aligned + filtered == 0 {
                0.0
            } else {
                filtered as f64 / (aligned + filtered) as f64
            },
            regions_aligned_per_read: aligned as f64 / n,
            mapped,
            accurate,
            software_ms: software_s * 1e3,
            modeled_system_reads_per_s: throughput,
            modeled_speedup_vs_unfiltered: if unfiltered_throughput > 0.0 {
                throughput / unfiltered_throughput
            } else {
                1.0
            },
        });
    }

    FilterAblation {
        dataset: dataset.name.clone(),
        reads: dataset.reads.len(),
        rows,
    }
}

fn print_ablation(ablation: &FilterAblation) {
    println!(
        "\n  dataset: {} ({} reads)",
        ablation.dataset, ablation.reads
    );
    println!(
        "  {:<16} {:>9} {:>12} {:>8} {:>9} {:>12} {:>14} {:>9}",
        "filter",
        "reject %",
        "regions/read",
        "mapped",
        "accurate",
        "software ms",
        "model reads/s",
        "speedup"
    );
    for row in &ablation.rows {
        println!(
            "  {:<16} {:>8.1}% {:>12.2} {:>8} {:>9} {:>12.1} {:>14.0} {:>8.2}x",
            row.filter,
            row.reject_fraction * 100.0,
            row.regions_aligned_per_read,
            row.mapped,
            row.accurate,
            row.software_ms,
            row.modeled_system_reads_per_s,
            row.modeled_speedup_vs_unfiltered,
        );
    }
}

fn main() {
    let scale = Scale::from_env();
    header("Ablation: pre-alignment filtering (paper footnote 6 future work)");

    let short = scale.dataset_config(331).illumina(150);
    let short_result = run_dataset(&short, SegramConfig::short_reads(), 200);
    print_ablation(&short_result);

    let mut long_cfg = scale.dataset_config(332);
    long_cfg.read_count = (long_cfg.read_count / 4).max(10);
    long_cfg.long_read_len = long_cfg.long_read_len.min(1_500);
    let long = long_cfg.pacbio_5();
    let long_result = run_dataset(&long, SegramConfig::long_reads(0.05), 500);
    print_ablation(&long_result);

    println!(
        "\n  Soundness check: accuracy must be identical down the column (a sound\n  \
         filter only removes work, never mappings)."
    );
    write_results("ablation_filter", &vec![short_result, long_result]);
}
