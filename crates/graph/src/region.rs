//! Subgraph extraction and linearization.
//!
//! MinSeed hands BitAlign "the subgraph surrounding the seed" (Section 4,
//! step 7). BitAlign consumes a *linearized and topologically sorted*
//! subgraph (Algorithm 1) together with per-character successor
//! information — the HopBits adjacency of Figure 12. This module extracts a
//! linear-coordinate window `[start, end)` from a genome graph and produces
//! that character-level representation.

use crate::{Base, GenomeGraph, GraphError, GraphPos, NodeId};

/// A linearized, topologically sorted subgraph at character granularity.
///
/// Position `i` holds one reference character; `successors(i)` lists the
/// indices of the characters that can follow it on some path. Successor
/// index `i + 1` is the ordinary "neighbor" dependency of sequence-to-
/// sequence alignment; larger jumps are *hops* (Figure 3b).
///
/// # Examples
///
/// ```
/// use segram_graph::{build_graph, Base, LinearizedGraph, Variant};
///
/// let built = build_graph(
///     &"ACGTACGT".parse()?,
///     [Variant::snp(3, Base::G)].into_iter().collect(),
/// )?;
/// let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars())?;
/// assert_eq!(lin.len(), 9); // ACG + T + G + ACGT
/// // The last char of "ACG" hops to both the ref and the alt allele.
/// assert_eq!(lin.successors(2), &[3, 4]);
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearizedGraph {
    bases: Vec<Base>,
    /// Successor character indices, each list sorted ascending.
    succ: Vec<Vec<u32>>,
    /// Graph provenance of every character.
    origins: Vec<GraphPos>,
    /// Linear coordinate (in the full graph) of the first character.
    start_linear: u64,
}

impl LinearizedGraph {
    /// Extracts and linearizes the window `[start, end)` of `graph`'s
    /// linear coordinate space.
    ///
    /// The graph must be topologically sorted. Characters are emitted in
    /// linear-coordinate order, which preserves topological order; edges
    /// leaving the window are clipped.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LinearPosOutOfBounds`] when the window is
    /// empty or exceeds the graph.
    pub fn extract(graph: &GenomeGraph, start: u64, end: u64) -> Result<Self, GraphError> {
        if start >= end || end > graph.total_chars() {
            return Err(GraphError::LinearPosOutOfBounds {
                pos: end,
                total: graph.total_chars(),
            });
        }
        let first = graph.graph_pos(start)?;
        let len = (end - start) as usize;
        let mut bases = Vec::with_capacity(len);
        let mut succ = Vec::with_capacity(len);
        let mut origins = Vec::with_capacity(len);

        let mut node = first.node;
        let mut offset = first.offset as usize;
        let to_local = |linear: u64| -> Option<u32> {
            (linear >= start && linear < end).then(|| (linear - start) as u32)
        };
        while bases.len() < len {
            let seq = graph.seq(node);
            let node_start = graph.char_start(node);
            while offset < seq.len() && bases.len() < len {
                bases.push(seq[offset]);
                origins.push(GraphPos::new(node, offset as u32));
                let local = bases.len() as u32 - 1;
                let mut ss: Vec<u32> = Vec::new();
                if offset + 1 < seq.len() {
                    // Intra-node neighbor.
                    if let Some(next) = to_local(node_start + offset as u64 + 1) {
                        ss.push(next);
                    }
                } else {
                    // Node boundary: hop to the first character of every
                    // successor node that falls inside the window.
                    for &next_node in graph.successors(node) {
                        if let Some(next) = to_local(graph.char_start(next_node)) {
                            ss.push(next);
                        }
                    }
                }
                ss.sort_unstable();
                debug_assert!(ss.iter().all(|&s| s > local));
                succ.push(ss);
                offset += 1;
            }
            // Advance to the next node in id (= topological / linear) order.
            node = NodeId(node.0 + 1);
            offset = 0;
        }
        Ok(Self {
            bases,
            succ,
            origins,
            start_linear: start,
        })
    }

    /// Builds a linearization directly from parts (used by tests and by the
    /// simulator for hand-crafted subgraphs).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CyclicGraph`] when any successor does not point
    /// strictly forward (which would violate topological order).
    pub fn from_parts(
        bases: Vec<Base>,
        succ: Vec<Vec<u32>>,
        start_linear: u64,
    ) -> Result<Self, GraphError> {
        assert_eq!(
            bases.len(),
            succ.len(),
            "bases and successor lists must align"
        );
        for (i, list) in succ.iter().enumerate() {
            if list
                .iter()
                .any(|&s| s as usize <= i || s as usize >= bases.len())
            {
                return Err(GraphError::CyclicGraph);
            }
        }
        let origins = (0..bases.len())
            .map(|i| GraphPos::new(NodeId(0), i as u32))
            .collect();
        Ok(Self {
            bases,
            succ,
            origins,
            start_linear,
        })
    }

    /// Builds a purely linear text (every character's only successor is the
    /// next one) — the sequence-to-sequence special case.
    pub fn from_linear_seq(seq: &crate::DnaSeq) -> Self {
        let n = seq.len();
        let succ = (0..n)
            .map(|i| {
                if i + 1 < n {
                    vec![i as u32 + 1]
                } else {
                    Vec::new()
                }
            })
            .collect();
        Self {
            bases: seq.iter().collect(),
            succ,
            origins: (0..n).map(|i| GraphPos::new(NodeId(0), i as u32)).collect(),
            start_linear: 0,
        }
    }

    /// Number of characters.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Returns `true` when the subgraph holds no characters.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Character at position `i`.
    pub fn base(&self, i: usize) -> Base {
        self.bases[i]
    }

    /// All characters.
    pub fn bases(&self) -> &[Base] {
        &self.bases
    }

    /// Successor indices of position `i` (sorted ascending, all `> i`).
    pub fn successors(&self, i: usize) -> &[u32] {
        &self.succ[i]
    }

    /// Graph position the character at `i` came from.
    pub fn origin(&self, i: usize) -> GraphPos {
        self.origins[i]
    }

    /// Linear coordinate (in the source graph) of character 0.
    pub fn start_linear(&self) -> u64 {
        self.start_linear
    }

    /// Iterates over every hop `(from, to)` whose distance `to - from`
    /// exceeds 1 — the dependencies that need the hop queue in hardware.
    pub fn hops(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.succ.iter().enumerate().flat_map(|(i, list)| {
            list.iter()
                .filter(move |&&s| s != i as u32 + 1)
                .map(move |&s| (i as u32, s))
        })
    }

    /// Returns a copy with every successor farther than `hop_limit`
    /// characters removed, together with the number of dropped hops.
    ///
    /// This models the hardware's bounded hop queue (Section 8.2 /
    /// Figure 13: "when we select 12 as the hop limit, we cover more than
    /// 99% of all hops"). Successor distance 1 is always kept.
    pub fn with_hop_limit(&self, hop_limit: u32) -> (Self, usize) {
        let mut dropped = 0usize;
        let succ = self
            .succ
            .iter()
            .enumerate()
            .map(|(i, list)| {
                list.iter()
                    .filter(|&&s| {
                        let keep = s - i as u32 <= hop_limit.max(1);
                        if !keep {
                            dropped += 1;
                        }
                        keep
                    })
                    .copied()
                    .collect()
            })
            .collect();
        (
            Self {
                bases: self.bases.clone(),
                succ,
                origins: self.origins.clone(),
                start_linear: self.start_linear,
            },
            dropped,
        )
    }

    /// Statistics over hop distances: for each hop `(i, j)` the distance is
    /// `j - i`. Returns the multiset of distances of *hops* (distance > 1).
    pub fn hop_distances(&self) -> Vec<u32> {
        self.hops().map(|(a, b)| b - a).collect()
    }

    /// Dense HopBits adjacency matrix (Figure 12): entry `(x, y)` is `true`
    /// when character `y` is a successor of character `x`.
    ///
    /// Intended for small subgraphs (tests, visualization, the hardware
    /// model's scratchpad accounting); the matrix is `len²` bits.
    pub fn hop_bits(&self) -> Vec<Vec<bool>> {
        let n = self.len();
        let mut m = vec![vec![false; n]; n];
        for (i, list) in self.succ.iter().enumerate() {
            for &s in list {
                m[i][s as usize] = true;
            }
        }
        m
    }

    /// Extracts the sub-graph of all characters reachable from `from`
    /// within `path_len` path steps (edges followed, hops included),
    /// remapped to dense local indices. Returns the window plus the map
    /// from local index back to the index in `self`.
    ///
    /// This is how anchored alignment windows must be built: a linear
    /// slice `[from, from + len)` can clip the landing site of a hop (for
    /// example, an alignment path skipping over a structural-variant
    /// branch whose characters sit inline in the linearization), whereas
    /// path-reachability keeps every continuation the aligner may need —
    /// mirroring how the hardware fetches subgraphs by walking nodes.
    ///
    /// # Panics
    ///
    /// Panics when `from >= self.len()`.
    pub fn reachable_window(&self, from: usize, path_len: usize) -> (Self, Vec<u32>) {
        assert!(from < self.len());
        // BFS with unit edge weights: dist = characters consumed so far.
        let mut dist: Vec<u32> = vec![u32::MAX; self.len()];
        let mut queue = std::collections::VecDeque::from([from]);
        dist[from] = 0;
        while let Some(i) = queue.pop_front() {
            if dist[i] as usize >= path_len {
                continue;
            }
            for &j in self.successors(i) {
                let j = j as usize;
                if dist[j] == u32::MAX {
                    dist[j] = dist[i] + 1;
                    queue.push_back(j);
                }
            }
        }
        let selected: Vec<u32> = (0..self.len() as u32)
            .filter(|&i| dist[i as usize] != u32::MAX)
            .collect();
        let mut local_of = vec![u32::MAX; self.len()];
        for (local, &parent) in selected.iter().enumerate() {
            local_of[parent as usize] = local as u32;
        }
        let bases = selected.iter().map(|&p| self.bases[p as usize]).collect();
        let succ = selected
            .iter()
            .map(|&p| {
                self.succ[p as usize]
                    .iter()
                    .filter_map(|&s| {
                        let l = local_of[s as usize];
                        (l != u32::MAX).then_some(l)
                    })
                    .collect()
            })
            .collect();
        let origins = selected.iter().map(|&p| self.origins[p as usize]).collect();
        (
            Self {
                bases,
                succ,
                origins,
                start_linear: self.start_linear + from as u64,
            },
            selected,
        )
    }

    /// The sub-window `[from, to)` of this linearization (clipping edges
    /// that leave the window), used by windowed (divide-and-conquer)
    /// alignment.
    ///
    /// # Panics
    ///
    /// Panics when `from >= to` or `to > self.len()`.
    pub fn window(&self, from: usize, to: usize) -> Self {
        assert!(from < to && to <= self.len());
        let succ = self.succ[from..to]
            .iter()
            .map(|list| {
                list.iter()
                    .filter(|&&s| (s as usize) < to)
                    .map(|&s| s - from as u32)
                    .collect()
            })
            .collect();
        Self {
            bases: self.bases[from..to].to_vec(),
            succ,
            origins: self.origins[from..to].to_vec(),
            start_linear: self.start_linear + from as u64,
        }
    }

    /// Splits the linearization into maximal straight-line *segments*:
    /// runs in which every character's only successor is the next
    /// character and no interior character is a hop target. Returns each
    /// segment as a `(start, end)` half-open char range.
    fn segments(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        let mut is_target = vec![false; n];
        for (i, list) in self.succ.iter().enumerate() {
            for &s in list {
                if s as usize != i + 1 {
                    is_target[s as usize] = true;
                }
            }
        }
        let mut segments = Vec::new();
        let mut start = 0usize;
        for i in 0..n {
            let continues =
                self.succ[i].as_slice() == [i as u32 + 1] && i + 1 < n && !is_target[i + 1];
            if !continues {
                segments.push((start, i + 1));
                start = i + 1;
            }
        }
        segments
    }

    /// Returns an equivalent linearization whose segment order is chosen
    /// to shorten hop distances — the paper's footnote-2 future work
    /// ("overcoming the [hop-limit] tradeoff and improving accuracy").
    ///
    /// The default linearization emits nodes in linear-coordinate order;
    /// any topological order is equally valid for BitAlign, and in
    /// principle an order that places a branch's targets sooner lets more
    /// hops fit within the hardware's hop limit (Figure 13). This method
    /// re-orders the straight-line segments greedily: among the ready
    /// segments (all predecessors placed) it always places the one whose
    /// *oldest* pending incoming edge is earliest — the classic
    /// oldest-pending-edge bandwidth heuristic.
    ///
    /// The `fig13` experiment applies this to pangenome graphs and finds a
    /// **negative result**: bubble-shaped variant graphs leave essentially
    /// no ordering freedom (every bubble's hop distances are fixed by its
    /// allele lengths — one of the two edges crossing a long allele must
    /// span it in any order), which is *why* the paper's simple
    /// linear-coordinate order plus hop limit 12 suffices. The method
    /// still helps hand-built DAGs with parallel independent branches.
    ///
    /// Alignment semantics are unchanged (same characters, same edges, a
    /// permuted order); per-character provenance ([`Self::origin`]) is
    /// permuted along, so mappings remain traceable to graph coordinates.
    /// Linear *window* arithmetic (`start_linear + index`) does **not**
    /// survive reordering — callers must go through [`Self::origin`].
    pub fn reordered_for_hops(&self) -> Self {
        let segments = self.segments();
        let seg_count = segments.len();
        if seg_count <= 2 {
            return self.clone();
        }
        // Map char -> segment, and build the segment DAG.
        let mut seg_of = vec![0usize; self.len()];
        for (s, &(a, b)) in segments.iter().enumerate() {
            seg_of[a..b].fill(s);
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); seg_count];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); seg_count];
        for (s, &(_, b)) in segments.iter().enumerate() {
            for &t in &self.succ[b - 1] {
                let to = seg_of[t as usize];
                succs[s].push(to);
                preds[to].push(s);
            }
        }

        // Greedy topological order. `placed_end[s]` = char position just
        // past segment s in the new order (once placed).
        let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..seg_count).filter(|&s| indegree[s] == 0).collect();
        let mut placed_end = vec![usize::MAX; seg_count];
        let mut order = Vec::with_capacity(seg_count);
        let mut cursor = 0usize;
        while let Some(pick_idx) = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| {
                // Deadline: the earliest placed predecessor's end — the
                // edge that has been stretching the longest. Sources sort
                // by their original position.
                let oldest = preds[s]
                    .iter()
                    .map(|&p| placed_end[p])
                    .min()
                    .unwrap_or(segments[s].0);
                (oldest, segments[s].0)
            })
            .map(|(i, _)| i)
        {
            let s = ready.swap_remove(pick_idx);
            order.push(s);
            cursor += segments[s].1 - segments[s].0;
            placed_end[s] = cursor;
            for &t in &succs[s] {
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    ready.push(t);
                }
            }
        }
        debug_assert_eq!(order.len(), seg_count, "segment DAG must be acyclic");

        // Rebuild in the new order.
        let mut new_index = vec![0u32; self.len()];
        let mut pos = 0u32;
        for &s in &order {
            let (a, b) = segments[s];
            for slot in &mut new_index[a..b] {
                *slot = pos;
                pos += 1;
            }
        }
        let mut bases = vec![self.bases[0]; self.len()];
        let mut origins = vec![self.origins[0]; self.len()];
        let mut succ = vec![Vec::new(); self.len()];
        for c in 0..self.len() {
            let nc = new_index[c] as usize;
            bases[nc] = self.bases[c];
            origins[nc] = self.origins[c];
            let mut list: Vec<u32> = self.succ[c]
                .iter()
                .map(|&t| new_index[t as usize])
                .collect();
            list.sort_unstable();
            debug_assert!(
                list.iter().all(|&t| t > nc as u32),
                "order must stay topological"
            );
            succ[nc] = list;
        }
        Self {
            bases,
            succ,
            origins,
            start_linear: self.start_linear,
        }
    }

    /// The largest hop distance in this linearization (0 when hop-free) —
    /// the hop-queue depth a hardware run of this subgraph would need.
    pub fn max_hop_distance(&self) -> u32 {
        self.hop_distances().into_iter().max().unwrap_or(0)
    }

    /// Fraction of this linearization's hops with distance at most
    /// `hop_limit` (1.0 when hop-free) — Figure 13's quantity for a single
    /// subgraph.
    pub fn hop_coverage_at(&self, hop_limit: u32) -> f64 {
        let distances = self.hop_distances();
        if distances.is_empty() {
            return 1.0;
        }
        distances.iter().filter(|&&d| d <= hop_limit).count() as f64 / distances.len() as f64
    }
}

/// Fraction of hops in `graph` (linearized in full) whose distance is at
/// most `hop_limit` — the quantity plotted in Figure 13.
///
/// # Errors
///
/// Returns an error when the graph is empty.
pub fn hop_coverage(graph: &GenomeGraph, hop_limit: u32) -> Result<f64, GraphError> {
    let lin = LinearizedGraph::extract(graph, 0, graph.total_chars())?;
    let distances = lin.hop_distances();
    if distances.is_empty() {
        return Ok(1.0);
    }
    let covered = distances.iter().filter(|&&d| d <= hop_limit).count();
    Ok(covered as f64 / distances.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_graph, Variant, VariantSet};

    fn snp_graph() -> GenomeGraph {
        build_graph(
            &"ACGTACGT".parse().unwrap(),
            [Variant::snp(3, crate::Base::G)].into_iter().collect(),
        )
        .unwrap()
        .graph
    }

    #[test]
    fn full_extraction_matches_graph() {
        let g = snp_graph();
        let lin = LinearizedGraph::extract(&g, 0, g.total_chars()).unwrap();
        assert_eq!(lin.len(), 9);
        let spelled: String = lin.bases().iter().map(|b| char::from(*b)).collect();
        assert_eq!(spelled, "ACGTGACGT"); // ACG | T | G | ACGT in id order
                                          // char 2 = 'G' end of node 0 -> successors are starts of T (3) and G (4)
        assert_eq!(lin.successors(2), &[3, 4]);
        // char 3 = ref allele T -> start of ACGT (5)
        assert_eq!(lin.successors(3), &[5]);
        // char 4 = alt allele G -> start of ACGT (5)
        assert_eq!(lin.successors(4), &[5]);
        // last char has no successors
        assert!(lin.successors(8).is_empty());
    }

    #[test]
    fn window_extraction_clips_edges() {
        let g = snp_graph();
        // Window [2, 6): chars G T G A
        let lin = LinearizedGraph::extract(&g, 2, 6).unwrap();
        assert_eq!(lin.len(), 4);
        assert_eq!(lin.successors(0), &[1, 2]);
        assert_eq!(lin.successors(1), &[3]);
        assert_eq!(lin.successors(2), &[3]);
        assert_eq!(lin.start_linear(), 2);
        assert_eq!(lin.origin(0), GraphPos::new(NodeId(0), 2));
    }

    #[test]
    fn invalid_windows_rejected() {
        let g = snp_graph();
        assert!(LinearizedGraph::extract(&g, 3, 3).is_err());
        assert!(LinearizedGraph::extract(&g, 0, 10).is_err());
    }

    #[test]
    fn hops_and_distances() {
        let g = snp_graph();
        let lin = LinearizedGraph::extract(&g, 0, g.total_chars()).unwrap();
        // Hops (distance > 1): 2->4 (alt branch) and 3->5 (rejoin over alt).
        let hops: Vec<(u32, u32)> = lin.hops().collect();
        assert_eq!(hops, vec![(2, 4), (3, 5)]);
        assert_eq!(lin.hop_distances(), vec![2, 2]);
    }

    #[test]
    fn hop_limit_drops_long_hops() {
        let g = build_graph(
            &"AACCCCCCTT".parse().unwrap(),
            [Variant::deletion(2, 6)].into_iter().collect(),
        )
        .unwrap()
        .graph;
        let lin = LinearizedGraph::extract(&g, 0, g.total_chars()).unwrap();
        // The deletion skip edge jumps 7 characters (A at idx 1 -> T at idx 8).
        assert_eq!(lin.hop_distances(), vec![7]);
        let (limited, dropped) = lin.with_hop_limit(6);
        assert_eq!(dropped, 1);
        assert!(limited.hop_distances().is_empty());
        let (kept, dropped) = lin.with_hop_limit(7);
        assert_eq!(dropped, 0);
        assert_eq!(kept.hop_distances(), vec![7]);
    }

    #[test]
    fn hop_coverage_is_monotonic() {
        let reference: crate::DnaSeq = "ACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let variants: VariantSet = [
            Variant::snp(3, crate::Base::A),
            Variant::deletion(8, 5),
            Variant::insertion(20, "GG".parse().unwrap()),
        ]
        .into_iter()
        .collect();
        let g = build_graph(&reference, variants).unwrap().graph;
        let mut prev = 0.0;
        for limit in 1..16 {
            let c = hop_coverage(&g, limit).unwrap();
            assert!(c >= prev, "coverage must grow with the hop limit");
            prev = c;
        }
        assert!((hop_coverage(&g, 64).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hop_bits_matches_successors() {
        let g = snp_graph();
        let lin = LinearizedGraph::extract(&g, 0, g.total_chars()).unwrap();
        let m = lin.hop_bits();
        for (i, row) in m.iter().enumerate() {
            for (j, &bit) in row.iter().enumerate() {
                assert_eq!(bit, lin.successors(i).contains(&(j as u32)));
            }
        }
    }

    #[test]
    fn from_linear_seq_is_a_chain() {
        let lin = LinearizedGraph::from_linear_seq(&"ACGT".parse().unwrap());
        assert_eq!(lin.len(), 4);
        assert_eq!(lin.successors(0), &[1]);
        assert!(lin.successors(3).is_empty());
        assert!(lin.hop_distances().is_empty());
    }

    #[test]
    fn from_parts_validates_forward_edges() {
        use crate::Base::*;
        assert!(LinearizedGraph::from_parts(vec![A, C], vec![vec![1], vec![]], 0).is_ok());
        assert!(LinearizedGraph::from_parts(vec![A, C], vec![vec![0], vec![]], 0).is_err());
        assert!(LinearizedGraph::from_parts(vec![A, C], vec![vec![2], vec![]], 0).is_err());
    }

    #[test]
    fn reachable_window_follows_hops() {
        // A deletion bubble: chars of the deleted segment sit inline, but a
        // path-reachable window from before the bubble must include the
        // landing site beyond it.
        let g = build_graph(
            &"AACCCCCCTT".parse().unwrap(),
            [Variant::deletion(2, 6)].into_iter().collect(),
        )
        .unwrap()
        .graph;
        let lin = LinearizedGraph::extract(&g, 0, g.total_chars()).unwrap();
        // From char 1 ('A' before the bubble) with 3 path steps: reaches
        // C (idx 2..), and T T (idx 8, 9) via the skip edge.
        let (w, map) = lin.reachable_window(1, 3);
        assert!(map.contains(&8), "landing site must be reachable: {map:?}");
        assert_eq!(map[0], 1);
        // Local successor structure is consistent with the parent.
        for (local, &parent) in map.iter().enumerate() {
            for &ls in w.successors(local) {
                let parent_succ = map[ls as usize];
                assert!(lin.successors(parent as usize).contains(&parent_succ));
            }
        }
        // Bases survive the remap.
        for (local, &parent) in map.iter().enumerate() {
            assert_eq!(w.base(local), lin.base(parent as usize));
        }
    }

    #[test]
    fn reachable_window_on_linear_text_is_a_slice() {
        let lin = LinearizedGraph::from_linear_seq(&"ACGTACGT".parse().unwrap());
        let (w, map) = lin.reachable_window(2, 3);
        assert_eq!(map, vec![2, 3, 4, 5]);
        assert_eq!(w.len(), 4);
        assert_eq!(w.successors(0), &[1]);
    }

    #[test]
    fn window_of_linearization() {
        let g = snp_graph();
        let lin = LinearizedGraph::extract(&g, 0, g.total_chars()).unwrap();
        let w = lin.window(2, 6);
        let direct = LinearizedGraph::extract(&g, 2, 6).unwrap();
        assert_eq!(w.bases(), direct.bases());
        assert_eq!(
            (0..w.len())
                .map(|i| w.successors(i).to_vec())
                .collect::<Vec<_>>(),
            (0..direct.len())
                .map(|i| direct.successors(i).to_vec())
                .collect::<Vec<_>>()
        );
    }

    /// Checks that `reordered` is a char-level permutation of `lin` with
    /// exactly the same edge set (as origin pairs) and valid topology.
    fn assert_equivalent(lin: &LinearizedGraph, reordered: &LinearizedGraph) {
        assert_eq!(lin.len(), reordered.len());
        let edge_set = |l: &LinearizedGraph| {
            let mut edges: Vec<(GraphPos, GraphPos)> = (0..l.len())
                .flat_map(|i| {
                    l.successors(i)
                        .iter()
                        .map(|&s| (l.origin(i), l.origin(s as usize)))
                        .collect::<Vec<_>>()
                })
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(edge_set(lin), edge_set(reordered));
        let mut chars: Vec<(GraphPos, Base)> = (0..lin.len())
            .map(|i| (lin.origin(i), lin.base(i)))
            .collect();
        let mut chars2: Vec<(GraphPos, Base)> = (0..reordered.len())
            .map(|i| (reordered.origin(i), reordered.base(i)))
            .collect();
        chars.sort();
        chars2.sort();
        assert_eq!(chars, chars2);
        for i in 0..reordered.len() {
            assert!(reordered.successors(i).iter().all(|&s| s as usize > i));
        }
    }

    #[test]
    fn reorder_preserves_structure_on_variant_graph() {
        let reference: crate::DnaSeq = "ACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let mut set = VariantSet::new();
        set.push(Variant::snp(3, crate::Base::G));
        set.push(Variant::insertion(10, "TTTT".parse().unwrap()));
        set.push(Variant::deletion(20, 3));
        let g = build_graph(&reference, set.into_sorted()).unwrap().graph;
        let lin = LinearizedGraph::extract(&g, 0, g.total_chars()).unwrap();
        let reordered = lin.reordered_for_hops();
        assert_equivalent(&lin, &reordered);
    }

    #[test]
    fn reorder_shrinks_hops_on_parallel_branches() {
        // One source fanning out to three parallel alleles of lengths
        // 6, 1, 6, converging on a tail. In source order the short allele
        // sits between the long ones, stretching the source->branch hops;
        // the greedy order places each branch as soon as its edge ages.
        //   chars: S | AAAAAA | C | GGGGGG | T(tail)
        let bases: Vec<Base> = "AAAAAAACGGGGGGT"
            .parse::<crate::DnaSeq>()
            .unwrap()
            .into_bases();
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); bases.len()];
        succ[0] = vec![1, 7, 8]; // S -> three branch starts
        for (i, s) in succ.iter_mut().enumerate().take(6).skip(1) {
            *s = vec![i as u32 + 1];
        }
        succ[6] = vec![14]; // branch 1 -> tail
        succ[7] = vec![14]; // branch 2 -> tail
        for (i, s) in succ.iter_mut().enumerate().take(13).skip(8) {
            *s = vec![i as u32 + 1];
        }
        succ[13] = vec![14]; // branch 3 -> tail
        let lin = LinearizedGraph::from_parts(bases, succ, 0).unwrap();
        let reordered = lin.reordered_for_hops();
        assert_equivalent(&lin, &reordered);
        assert!(
            reordered.max_hop_distance() <= lin.max_hop_distance(),
            "reorder should not stretch the worst hop: {} vs {}",
            reordered.max_hop_distance(),
            lin.max_hop_distance()
        );
        assert!(reordered.hop_coverage_at(7) >= lin.hop_coverage_at(7));
    }

    #[test]
    fn reorder_is_identity_on_linear_text() {
        let lin = LinearizedGraph::from_linear_seq(&"ACGTACGTACGT".parse().unwrap());
        let reordered = lin.reordered_for_hops();
        assert_eq!(lin, reordered);
    }

    #[test]
    fn hop_metrics_on_snp_graph() {
        let g = snp_graph();
        let lin = LinearizedGraph::extract(&g, 0, g.total_chars()).unwrap();
        assert_eq!(lin.max_hop_distance(), 2);
        assert_eq!(lin.hop_coverage_at(1), 0.0);
        assert_eq!(lin.hop_coverage_at(2), 1.0);
    }
}
