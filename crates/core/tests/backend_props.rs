//! Differential property tests for the pluggable mapping backends: on
//! random simulated datasets, **every** backend driven through the
//! [`MapEngine`] produces SAM and GAF documents byte-identical to its own
//! serial path (direct `map_read` calls, no engine) at every thread
//! count — and the segram backend's output is identical to the direct
//! [`SegramMapper`] path, so the adapter/factory layer introduces no
//! regression. `ci.sh`'s backend-matrix tier checks the same property end
//! to end through the built binary.

use segram_core::{
    gaf_record_for, sam_record_for, Backend, BackendKind, EngineConfig, MapEngine, MapStats,
    ReadMapper, ReadOutcome, SegramConfig, SegramMapper,
};
use segram_graph::DnaSeq;
use segram_io::{
    write_fastq, Ambiguity, FastqFramer, FastqRecord, GafWriter, RawFastqRecord, SamWriter,
};
use segram_sim::{DatasetConfig, Strand};
use segram_testkit::prelude::*;

type Documents = (Vec<u8>, Vec<u8>);

/// Renders both output documents from direct per-read `map_read` calls —
/// the backend's own serial path, no engine, no batching — using the same
/// shared renderers and writers as the CLI.
fn render_serial<M: ReadMapper>(mapper: &M, reads: &[(String, DnaSeq)]) -> Documents {
    let mut sam = SamWriter::new(Vec::new(), "graph", mapper.graph().total_chars())
        .expect("vec write cannot fail");
    let mut gaf = GafWriter::new(Vec::new());
    for (id, seq) in reads {
        let (mapping, stats) = mapper.map_read(seq);
        let outcome = ReadOutcome {
            mapping,
            strand: Strand::Forward,
            stats,
        };
        let record = sam_record_for(id, seq, &outcome);
        sam.write_line(&record.to_sam_line())
            .expect("vec write cannot fail");
        if let Some(record) =
            gaf_record_for(id, seq, mapper.graph(), &outcome).expect("consistent graph path")
        {
            gaf.write_record(&record).expect("vec write cannot fail");
        }
    }
    (
        sam.finish().expect("vec flush cannot fail"),
        gaf.finish().expect("vec flush cannot fail"),
    )
}

/// Renders both output documents through the engine, exactly as the CLI's
/// streaming path does.
fn render_engine<M: ReadMapper>(
    mapper: &M,
    reads: &[(String, DnaSeq)],
    threads: usize,
) -> Documents {
    let mut config = EngineConfig::with_threads(threads);
    // Tiny batches force interleaving across workers even on the small
    // datasets the strategy generates.
    config.batch_size = 2;
    let engine = MapEngine::new(mapper, config);
    let mut sam = SamWriter::new(Vec::new(), "graph", mapper.graph().total_chars())
        .expect("vec write cannot fail");
    let mut gaf = GafWriter::new(Vec::new());
    engine.map_stream(
        reads.iter(),
        |(_, seq)| seq,
        |(id, seq), outcome| {
            let record = sam_record_for(id, seq, &outcome);
            sam.write_line(&record.to_sam_line())
                .expect("vec write cannot fail");
            if let Some(record) =
                gaf_record_for(id, seq, mapper.graph(), &outcome).expect("consistent graph path")
            {
                gaf.write_record(&record).expect("vec write cannot fail");
            }
        },
    );
    (
        sam.finish().expect("vec flush cannot fail"),
        gaf.finish().expect("vec flush cannot fail"),
    )
}

/// Renders both output documents through the *overlapped* path: the
/// reads serialized to FASTQ bytes, framed by [`FastqFramer`], decoded in
/// the worker stage (`map_raw_stream`), rendered from the decoded
/// records — the exact pipeline `segram map` runs.
fn render_engine_overlapped<M: ReadMapper>(
    mapper: &M,
    reads: &[(String, DnaSeq)],
    threads: usize,
) -> Documents {
    let fastq: Vec<FastqRecord> = reads
        .iter()
        .map(|(id, seq)| FastqRecord::with_uniform_quality(id.clone(), seq.clone(), 30))
        .collect();
    let bytes = write_fastq(&fastq).into_bytes();
    let mut config = EngineConfig::with_threads(threads);
    config.batch_size = 2;
    let engine = MapEngine::new(mapper, config);
    let mut sam = SamWriter::new(Vec::new(), "graph", mapper.graph().total_chars())
        .expect("vec write cannot fail");
    let mut gaf = GafWriter::new(Vec::new());
    // A tiny block size forces records to straddle block boundaries even
    // on the small documents the strategy generates.
    let mut framer = FastqFramer::with_block_size(bytes.as_slice(), 7);
    let raws = std::iter::from_fn(|| match framer.next() {
        Some(Ok(raw)) => Some(raw),
        Some(Err(err)) => panic!("in-memory framing cannot fail: {err}"),
        None => None,
    });
    engine.map_raw_stream(
        raws,
        |raw: RawFastqRecord| Some(raw.decode(Ambiguity::Reject).expect("well-formed FASTQ")),
        |record| &record.seq,
        |record, outcome| {
            let rec = sam_record_for(&record.id, &record.seq, &outcome);
            sam.write_line(&rec.to_sam_line())
                .expect("vec write cannot fail");
            if let Some(rec) = gaf_record_for(&record.id, &record.seq, mapper.graph(), &outcome)
                .expect("consistent graph path")
            {
                gaf.write_record(&rec).expect("vec write cannot fail");
            }
        },
    );
    (
        sam.finish().expect("vec flush cannot fail"),
        gaf.finish().expect("vec flush cannot fail"),
    )
}

proptest! {
    #[test]
    fn every_backend_is_engine_and_thread_invariant(
        seed in 0u64..5_000,
        read_count in 3usize..6,
        read_len in prop::sample::select(vec![80usize, 100]),
    ) {
        // A smaller reference than `tiny()`'s 30 kb: the HGA backend runs
        // whole-graph DP per read, and this test maps every read 7 times
        // per backend (serial + engine at 2 thread counts, x4 backends).
        let mut dataset_config = DatasetConfig::tiny(seed);
        dataset_config.reference_len = 8_000;
        dataset_config.read_count = read_count;
        let dataset = dataset_config.illumina(read_len);
        let config = SegramConfig::short_reads();
        let reads: Vec<(String, DnaSeq)> = dataset
            .reads
            .iter()
            .map(|r| (format!("read{}", r.id), r.seq.clone()))
            .collect();

        // Today's native path: the direct SegramMapper, no Backend layer.
        let native = SegramMapper::new(dataset.graph().clone(), config);
        let (sam_native, gaf_native) = render_serial(&native, &reads);
        // One SAM record per read, whatever the backend emits later.
        let records = sam_native.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count();
        prop_assert_eq!(records, reads.len() + 3); // 3 header lines

        for kind in BackendKind::ALL {
            let backend = Backend::build(kind, dataset.graph().clone(), config, 1);
            let (sam_serial, gaf_serial) = render_serial(&backend, &reads);
            for threads in [1usize, 4] {
                let (sam, gaf) = render_engine(&backend, &reads, threads);
                prop_assert_eq!(&sam, &sam_serial);
                prop_assert_eq!(&gaf, &gaf_serial);
            }
            // The overlapped path (FASTQ bytes -> framer -> worker decode
            // -> writer thread) emits the same bytes as the serial path.
            let (sam, gaf) = render_engine_overlapped(&backend, &reads, 4);
            prop_assert_eq!(&sam, &sam_serial);
            prop_assert_eq!(&gaf, &gaf_serial);
            if kind == BackendKind::Segram {
                // The factory's segram backend *is* the native path.
                prop_assert_eq!(&sam_serial, &sam_native);
                prop_assert_eq!(&gaf_serial, &gaf_native);
            }
        }
    }
}

/// Deterministic (non-property) spot check that the adapter layer maps
/// MapStats stage times into the engine's aggregate: a baseline backend's
/// engine report accounts seeding and alignment separately, exactly as
/// the serial [`segram_core::StepTimes`] did.
#[test]
fn baseline_engine_report_carries_stage_times() {
    let mut dataset_config = DatasetConfig::tiny(777);
    dataset_config.reference_len = 8_000;
    dataset_config.read_count = 4;
    let dataset = dataset_config.illumina(100);
    let config = SegramConfig::short_reads();
    let backend = Backend::build(
        BackendKind::GraphAligner,
        dataset.graph().clone(),
        config,
        1,
    );
    let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
    let engine = MapEngine::new(&backend, EngineConfig::with_threads(2));
    let (outcomes, report) = engine.map_batch(&reads);
    assert_eq!(report.backend, "graphaligner");
    assert!(report.stats.seeding > std::time::Duration::ZERO);
    assert!(report.stats.alignment > std::time::Duration::ZERO);
    // Counts aggregate exactly like any MapStats.
    let mut summed = MapStats::default();
    for outcome in &outcomes {
        summed.merge(&outcome.stats);
    }
    assert_eq!(summed.regions_aligned, report.stats.regions_aligned);
}
