//! Criterion benchmarks for the persistent on-disk index and the
//! multi-request serve engine: what `segram index build` buys (encode /
//! decode vs. rebuilding the index from scratch on every run), and how
//! the shared `MultiEngine` behaves as concurrent requests stack up on
//! one worker pool.

use std::sync::Arc;

use segram_core::{EngineOptions, MultiEngine, SegramConfig, SegramMapper};
use segram_graph::DnaSeq;
use segram_index::{decode_index, encode_index, frequency_threshold, GraphIndex, PersistedIndex};
use segram_sim::DatasetConfig;
use segram_testkit::bench::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};

fn setup() -> (Vec<DnaSeq>, SegramConfig, segram_sim::Dataset) {
    let dataset = DatasetConfig {
        reference_len: 100_000,
        read_count: 32,
        long_read_len: 2_000,
        seed: 211,
    }
    .illumina(150);
    let mut config = SegramConfig::short_reads();
    config.max_regions = 8;
    let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
    (reads, config, dataset)
}

fn persisted(config: SegramConfig, dataset: &segram_sim::Dataset) -> PersistedIndex {
    let graph = dataset.graph().clone();
    let index = GraphIndex::build(&graph, config.scheme, config.bucket_bits);
    let freq_threshold = frequency_threshold(&index, config.discard_frac);
    PersistedIndex {
        graph,
        index,
        discard_frac: config.discard_frac,
        freq_threshold,
        changelog: None,
        provenance: None,
    }
}

/// The cold-start trade the `.sgi` file exists to win: every `segram map
/// --graph` run pays `GraphIndex::build`; `segram map --index` and
/// `segram serve` pay `decode_index` instead (encode is the one-time
/// `index build` cost).
fn bench_persist_round_trip(c: &mut Criterion) {
    let (_, config, dataset) = setup();
    let persisted = persisted(config, &dataset);
    let bytes = encode_index(&persisted);

    let mut group = c.benchmark_group("persist_100kb");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("rebuild_index", |b| {
        b.iter(|| {
            let index = GraphIndex::build(
                black_box(&persisted.graph),
                config.scheme,
                config.bucket_bits,
            );
            black_box(index.footprint().total_bytes())
        })
    });
    group.bench_function("encode", |b| {
        b.iter(|| black_box(encode_index(black_box(&persisted))).len())
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            let loaded = decode_index(black_box(&bytes)).expect("decode");
            black_box(loaded.index.footprint().total_bytes())
        })
    });
    group.finish();

    println!(
        "  info: .sgi payload {} bytes for a {}-char graph (index footprint {} bytes)",
        bytes.len(),
        persisted.graph.total_chars(),
        persisted.index.footprint().total_bytes()
    );
}

/// N concurrent requests through one shared engine: the serve-mode shape.
/// Total read throughput should hold roughly flat as the same work is
/// split across more interleaved requests (round-robin scheduling,
/// per-request reorder buffers).
fn bench_multi_engine_requests(c: &mut Criterion) {
    let (reads, config, dataset) = setup();
    let loaded = {
        let bytes = encode_index(&persisted(config, &dataset));
        decode_index(&bytes).expect("decode")
    };
    let mapper = SegramMapper::from_parts(
        Arc::new(loaded.graph),
        loaded.index,
        config,
        loaded.freq_threshold,
    );
    fn identity(read: &DnaSeq) -> &DnaSeq {
        read
    }
    let engine = MultiEngine::new(
        Arc::new(mapper),
        identity,
        EngineOptions::new()
            .threads(4)
            .queue_depth(64)
            .max_queued(1024),
    );

    const BATCH: usize = 4;
    let mut group = c.benchmark_group("multi_engine_150bp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    for requests in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("requests", requests), |b| {
            b.iter(|| {
                // The same total workload, interleaved across `requests`
                // open handles: batches round-robin in, ordered drains out.
                let mut handles: Vec<_> = (0..requests)
                    .map(|_| engine.open().expect("admission"))
                    .collect();
                for (i, batch) in reads.chunks(BATCH).enumerate() {
                    assert!(handles[i % requests].push(batch.to_vec()));
                }
                let mut mapped = 0usize;
                for mut handle in handles.drain(..) {
                    handle.finish_input();
                    while let Some(batch) = handle.next_output() {
                        mapped += batch
                            .iter()
                            .filter(|(_, outcome)| outcome.mapping.is_some())
                            .count();
                    }
                    handle.finish().expect("request");
                }
                black_box(mapped)
            })
        });
    }
    group.finish();
    engine.shutdown();
}

criterion_group!(
    benches,
    bench_persist_round_trip,
    bench_multi_engine_requests
);
criterion_main!(benches);
