//! SAM-style output for mappings — the interchange format downstream
//! variant callers consume, making the mapper usable as a pipeline stage
//! rather than a demo. Coordinates are *surjected* onto the linear
//! coordinate space of the (topologically sorted) graph, the convention vg
//! uses when exporting graph alignments.

use std::fmt::Write as _;

use segram_graph::DnaSeq;

use crate::mapper::Mapping;

/// One SAM record's worth of mapping information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamRecord {
    /// Query (read) name.
    pub qname: String,
    /// Bitwise flags (only `0x4` = unmapped is used here).
    pub flag: u16,
    /// Reference name.
    pub rname: String,
    /// 1-based mapping position in linear coordinates.
    pub pos: u64,
    /// Mapping quality (255 = unavailable; we report a simple seed-support
    /// derived score capped at 60).
    pub mapq: u8,
    /// CIGAR string (`=`/`X`/`I`/`D` ops).
    pub cigar: String,
    /// The read sequence.
    pub seq: String,
    /// Edit distance (`NM:i` tag).
    pub edit_distance: u32,
}

impl SamRecord {
    /// Builds a record from a mapping.
    pub fn from_mapping(
        qname: impl Into<String>,
        rname: impl Into<String>,
        read: &DnaSeq,
        mapping: &Mapping,
        mapq: u8,
    ) -> Self {
        Self {
            qname: qname.into(),
            flag: 0,
            rname: rname.into(),
            pos: mapping.linear_start + 1, // SAM is 1-based
            mapq,
            cigar: mapping.alignment.cigar.to_string(),
            seq: read.to_string(),
            edit_distance: mapping.alignment.edit_distance,
        }
    }

    /// Builds an unmapped record.
    pub fn unmapped(qname: impl Into<String>, read: &DnaSeq) -> Self {
        Self {
            qname: qname.into(),
            flag: 0x4,
            rname: "*".into(),
            pos: 0,
            mapq: 0,
            cigar: "*".into(),
            seq: read.to_string(),
            edit_distance: 0,
        }
    }

    /// Whether the record represents a mapped read.
    pub fn is_mapped(&self) -> bool {
        self.flag & 0x4 == 0
    }

    /// Renders the record as one SAM line (no trailing newline).
    pub fn to_sam_line(&self) -> String {
        let mut line = String::new();
        // QNAME FLAG RNAME POS MAPQ CIGAR RNEXT PNEXT TLEN SEQ QUAL [tags]
        write!(
            line,
            "{}\t{}\t{}\t{}\t{}\t{}\t*\t0\t0\t{}\t*",
            self.qname, self.flag, self.rname, self.pos, self.mapq, self.cigar, self.seq
        )
        .expect("string write");
        if self.is_mapped() {
            write!(line, "\tNM:i:{}", self.edit_distance).expect("string write");
        }
        line
    }
}

/// Renders a complete SAM document: header (`@HD`, `@SQ`, `@PG`) plus one
/// line per record — the whole-document convenience over the streaming
/// [`segram_io::SamWriter`].
///
/// # Examples
///
/// ```
/// use segram_core::{sam_document, SamRecord};
///
/// let rec = SamRecord::unmapped("read0", &"ACGT".parse()?);
/// let doc = sam_document("graph", 1000, &[rec]);
/// assert!(doc.starts_with("@HD\tVN:1.6"));
/// assert!(doc.contains("@SQ\tSN:graph\tLN:1000"));
/// assert!(doc.lines().count() >= 4);
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
pub fn sam_document(reference_name: &str, reference_len: u64, records: &[SamRecord]) -> String {
    let mut writer = segram_io::SamWriter::new(Vec::new(), reference_name, reference_len)
        .expect("vec write cannot fail");
    for rec in records {
        writer
            .write_line(&rec.to_sam_line())
            .expect("vec write cannot fail");
    }
    let bytes = writer.finish().expect("vec flush cannot fail");
    String::from_utf8(bytes).expect("SAM lines are UTF-8")
}

/// A crude mapping quality from seed support and edit distance: more
/// supporting regions and fewer edits give higher confidence, capped at 60
/// like most mappers.
pub fn mapq_estimate(regions_aligned: usize, edit_distance: u32, read_len: usize) -> u8 {
    if regions_aligned == 0 {
        return 0;
    }
    let edit_frac = edit_distance as f64 / read_len.max(1) as f64;
    let base = 60.0 * (1.0 - edit_frac * 4.0).clamp(0.0, 1.0);
    // Many candidate regions -> possible multi-mapping -> lower confidence.
    let ambiguity = (regions_aligned as f64).log2().max(1.0);
    (base / ambiguity).clamp(0.0, 60.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SegramConfig, SegramMapper};
    use segram_sim::DatasetConfig;

    #[test]
    fn mapped_record_round_trips_fields() {
        let dataset = DatasetConfig::tiny(131).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let read = &dataset.reads[0];
        let (mapping, stats) = mapper.map_read(&read.seq);
        let mapping = mapping.expect("read maps");
        let mapq = mapq_estimate(
            stats.regions_aligned,
            mapping.alignment.edit_distance,
            read.seq.len(),
        );
        let rec = SamRecord::from_mapping("read0", "graph", &read.seq, &mapping, mapq);
        assert!(rec.is_mapped());
        assert_eq!(rec.pos, mapping.linear_start + 1);
        let line = rec.to_sam_line();
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 12);
        assert_eq!(fields[0], "read0");
        assert_eq!(fields[2], "graph");
        assert!(fields[11].starts_with("NM:i:"));
        // CIGAR read length must equal SEQ length (SAM invariant).
        assert_eq!(mapping.alignment.cigar.read_len() as usize, rec.seq.len());
    }

    #[test]
    fn unmapped_record_has_star_fields() {
        let rec = SamRecord::unmapped("r", &"ACGT".parse().unwrap());
        assert!(!rec.is_mapped());
        let line = rec.to_sam_line();
        assert!(line.contains("\t*\t0\t0\t"));
        assert!(!line.contains("NM:i:"));
    }

    #[test]
    fn document_has_header_and_records() {
        let recs = vec![
            SamRecord::unmapped("a", &"AC".parse().unwrap()),
            SamRecord::unmapped("b", &"GT".parse().unwrap()),
        ];
        let doc = sam_document("chr1", 5000, &recs);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("LN:5000"));
        assert!(lines[3].starts_with('a'));
    }

    #[test]
    fn mapq_behaviour() {
        // Unique, perfect mapping: max quality.
        assert_eq!(mapq_estimate(1, 0, 100), 60);
        // No mapping evidence: zero.
        assert_eq!(mapq_estimate(0, 0, 100), 0);
        // Heavy multi-mapping lowers quality.
        assert!(mapq_estimate(64, 0, 100) < mapq_estimate(2, 0, 100));
        // High edit fraction lowers quality.
        assert!(mapq_estimate(1, 30, 100) < mapq_estimate(1, 2, 100));
    }
}
