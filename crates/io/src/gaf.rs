//! GAF (Graph Alignment Format) writing and reading.
//!
//! GAF is the PAF-derived text format that graph mappers (minigraph, vg,
//! GraphAligner — the paper's software baselines) emit for
//! sequence-to-graph mappings. Where SAM forces graph alignments through a
//! lossy linear *surjection* (see `segram-core`'s SAM writer), GAF keeps
//! the graph path explicit: column 6 lists the oriented node ids the
//! alignment walks through.
//!
//! Only forward-strand segments (`>id`) are produced here because the
//! mapper handles reverse-complement reads by aligning the
//! reverse-complemented sequence, never by walking edges backwards.

use std::fmt::Write as _;

use segram_align::{Cigar, CigarOp};
use segram_graph::{GenomeGraph, GraphPos, NodeId};

use crate::error::FormatError;

/// One GAF alignment record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GafRecord {
    /// Query (read) name.
    pub qname: String,
    /// Query length.
    pub qlen: usize,
    /// 0-based start of the aligned query interval.
    pub qstart: usize,
    /// 0-based exclusive end of the aligned query interval.
    pub qend: usize,
    /// `+` (the only strand this writer produces) or `-`.
    pub strand: char,
    /// The node ids the alignment path visits, in order.
    pub path: Vec<NodeId>,
    /// Total length of the path's node sequences.
    pub plen: u64,
    /// 0-based start of the alignment on the path.
    pub pstart: u64,
    /// 0-based exclusive end of the alignment on the path.
    pub pend: u64,
    /// Number of exactly matching characters.
    pub matches: u64,
    /// Total alignment block length (all CIGAR ops).
    pub block_len: u64,
    /// Mapping quality (255 = missing).
    pub mapq: u8,
    /// Edit distance (`NM:i` tag).
    pub edit_distance: u32,
    /// CIGAR string (`cg:Z` tag; `=`/`X`/`I`/`D` ops).
    pub cigar: String,
}

impl GafRecord {
    /// Builds a record from an alignment's consumed character path.
    ///
    /// `char_path` is the per-character graph path of the alignment (the
    /// output of [`segram_align::Alignment::graph_path`]); `cigar` is the
    /// matching traceback. The whole query is considered aligned
    /// (`qstart = 0`, `qend = read_len`), matching the pattern-global
    /// semantics of BitAlign.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] when the path is empty, visits a node
    /// outside `graph`, takes a step that is neither the next character of
    /// the same node nor an existing edge to the start of another node, or
    /// disagrees with the CIGAR's reference-consumption count.
    pub fn from_char_path(
        qname: impl Into<String>,
        read_len: usize,
        graph: &GenomeGraph,
        char_path: &[GraphPos],
        cigar: &Cigar,
        edit_distance: u32,
        mapq: u8,
    ) -> Result<Self, FormatError> {
        let qname = qname.into();
        let first = *char_path.first().ok_or_else(|| {
            FormatError::invalid_record(0, format!("read {qname:?}: empty alignment path"))
        })?;

        let mut nodes = vec![first.node];
        for pair in char_path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let same_node_step = a.node == b.node && b.offset == a.offset + 1;
            let edge_step =
                b.offset == 0 && a.node != b.node && graph.successors(a.node).contains(&b.node);
            if !(same_node_step || edge_step) {
                return Err(FormatError::invalid_record(
                    0,
                    format!("read {qname:?}: path step {a:?} -> {b:?} is not a valid graph step"),
                ));
            }
            if a.node != b.node {
                nodes.push(b.node);
            }
        }
        for &node in &nodes {
            if node.index() >= graph.node_count() {
                return Err(FormatError::invalid_record(
                    0,
                    format!("read {qname:?}: path references unknown node {node:?}"),
                ));
            }
        }

        let ref_consumed = cigar.ref_len() as usize;
        if ref_consumed != char_path.len() {
            return Err(FormatError::invalid_record(
                0,
                format!(
                    "read {qname:?}: CIGAR consumes {ref_consumed} reference chars \
                     but the path has {}",
                    char_path.len()
                ),
            ));
        }

        let plen: u64 = nodes.iter().map(|&n| graph.node_len(n) as u64).sum();
        let pstart = u64::from(first.offset);
        let pend = pstart + char_path.len() as u64;
        debug_assert!(pend <= plen);

        let matches = cigar
            .runs()
            .iter()
            .filter(|(op, _)| *op == CigarOp::Match)
            .map(|&(_, n)| u64::from(n))
            .sum();
        let block_len = u64::from(cigar.op_count());

        Ok(Self {
            qname,
            qlen: read_len,
            qstart: 0,
            qend: read_len,
            strand: '+',
            path: nodes,
            plen,
            pstart,
            pend,
            matches,
            block_len,
            mapq,
            edit_distance,
            cigar: cigar.to_string(),
        })
    }

    /// The GAF identity: matches over block length.
    pub fn identity(&self) -> f64 {
        if self.block_len == 0 {
            return 0.0;
        }
        self.matches as f64 / self.block_len as f64
    }

    /// Renders the record as one GAF line (no trailing newline).
    pub fn to_gaf_line(&self) -> String {
        let mut line = String::new();
        let _ = write!(
            line,
            "{}\t{}\t{}\t{}\t{}\t",
            self.qname, self.qlen, self.qstart, self.qend, self.strand
        );
        for node in &self.path {
            let _ = write!(line, ">{}", node.0);
        }
        let _ = write!(
            line,
            "\t{}\t{}\t{}\t{}\t{}\t{}\tNM:i:{}\tcg:Z:{}",
            self.plen,
            self.pstart,
            self.pend,
            self.matches,
            self.block_len,
            self.mapq,
            self.edit_distance,
            self.cigar
        );
        line
    }
}

/// Renders records as a GAF document (one line per record) — the
/// whole-document convenience over the streaming
/// [`GafWriter`](crate::GafWriter).
pub fn write_gaf(records: &[GafRecord]) -> String {
    let mut writer = crate::GafWriter::new(Vec::new());
    for rec in records {
        writer.write_record(rec).expect("vec write cannot fail");
    }
    let bytes = writer.finish().expect("vec flush cannot fail");
    String::from_utf8(bytes).expect("GAF lines are UTF-8")
}

/// Parses a GAF document produced by [`write_gaf`] (or by other graph
/// mappers, as long as they stick to forward-strand `>`-oriented paths and
/// the `NM`/`cg` tags).
///
/// # Errors
///
/// Returns [`FormatError`] on missing columns, unparsable integers, or
/// path segments that are not `>`-oriented numeric node ids.
pub fn read_gaf(text: &str) -> Result<Vec<GafRecord>, FormatError> {
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        records.push(parse_gaf_line(line, line_no)?);
    }
    Ok(records)
}

fn parse_gaf_line(line: &str, line_no: usize) -> Result<GafRecord, FormatError> {
    let mut cols = line.split('\t');
    let mut next = |name: &'static str| {
        cols.next().ok_or(FormatError::UnexpectedEof {
            line: line_no,
            expected: name,
        })
    };
    let parse_u64 = |text: &str, what: &str| -> Result<u64, FormatError> {
        text.parse()
            .map_err(|_| FormatError::malformed(line_no, format!("unparsable {what} {text:?}")))
    };

    let qname = next("the query name column")?.to_owned();
    let qlen = parse_u64(next("the query length column")?, "query length")? as usize;
    let qstart = parse_u64(next("the query start column")?, "query start")? as usize;
    let qend = parse_u64(next("the query end column")?, "query end")? as usize;
    let strand_text = next("the strand column")?;
    let strand = match strand_text {
        "+" => '+',
        "-" => '-',
        other => {
            return Err(FormatError::malformed(
                line_no,
                format!("invalid strand {other:?}"),
            ))
        }
    };

    let path_text = next("the path column")?;
    let mut path = Vec::new();
    for segment in path_text.split('>').skip(1) {
        if segment.is_empty() || path_text.contains('<') {
            return Err(FormatError::malformed(
                line_no,
                "only forward-oriented '>' path segments are supported",
            ));
        }
        path.push(NodeId(parse_u64(segment, "path node id")? as u32));
    }
    if path.is_empty() {
        return Err(FormatError::malformed(line_no, "empty path column"));
    }

    let plen = parse_u64(next("the path length column")?, "path length")?;
    let pstart = parse_u64(next("the path start column")?, "path start")?;
    let pend = parse_u64(next("the path end column")?, "path end")?;
    let matches = parse_u64(next("the matches column")?, "match count")?;
    let block_len = parse_u64(next("the block length column")?, "block length")?;
    let mapq = parse_u64(next("the mapq column")?, "mapq")?.min(255) as u8;

    let mut edit_distance = 0;
    let mut cigar = String::new();
    for tag in cols {
        if let Some(value) = tag.strip_prefix("NM:i:") {
            edit_distance = parse_u64(value, "NM tag")? as u32;
        } else if let Some(value) = tag.strip_prefix("cg:Z:") {
            cigar = value.to_owned();
        }
    }

    Ok(GafRecord {
        qname,
        qlen,
        qstart,
        qend,
        strand,
        path,
        plen,
        pstart,
        pend,
        matches,
        block_len,
        mapq,
        edit_distance,
        cigar,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_graph::{build_graph, Base, DnaSeq, Variant};

    /// ACGTACGT with a SNP bubble at position 3 (T/G).
    fn bubble_graph() -> GenomeGraph {
        build_graph(
            &"ACGTACGT".parse::<DnaSeq>().unwrap(),
            [Variant::snp(3, Base::G)].into_iter().collect(),
        )
        .unwrap()
        .graph
    }

    fn char_path_for(graph: &GenomeGraph, nodes: &[u32]) -> Vec<GraphPos> {
        let mut path = Vec::new();
        for &n in nodes {
            let node = NodeId(n);
            for offset in 0..graph.node_len(node) as u32 {
                path.push(GraphPos::new(node, offset));
            }
        }
        path
    }

    fn all_match_cigar(len: u32) -> Cigar {
        let mut cigar = Cigar::new();
        cigar.push_run(CigarOp::Match, len);
        cigar
    }

    #[test]
    fn builds_record_from_full_path() {
        let graph = bubble_graph();
        // Walk every node of one allele: node ids are topologically sorted,
        // find them by structure (first node, one branch, tail).
        let first = NodeId(0);
        let branch = graph.successors(first)[0];
        let tail = graph.successors(branch)[0];
        let char_path = char_path_for(&graph, &[first.0, branch.0, tail.0]);
        let total = char_path.len() as u32;
        let rec = GafRecord::from_char_path(
            "r1",
            total as usize,
            &graph,
            &char_path,
            &all_match_cigar(total),
            0,
            60,
        )
        .unwrap();
        assert_eq!(rec.path, vec![first, branch, tail]);
        assert_eq!(rec.pstart, 0);
        assert_eq!(rec.pend, u64::from(total));
        assert_eq!(rec.plen, u64::from(total));
        assert_eq!(rec.matches, u64::from(total));
        assert!((rec.identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_edge_steps() {
        let graph = bubble_graph();
        // Jump from node 0 directly to a node that is not a successor at a
        // non-zero offset.
        let bogus = vec![GraphPos::new(NodeId(0), 0), GraphPos::new(NodeId(0), 2)];
        let err = GafRecord::from_char_path("r", 2, &graph, &bogus, &all_match_cigar(2), 0, 60)
            .unwrap_err();
        assert!(matches!(err, FormatError::InvalidRecord { .. }));
    }

    #[test]
    fn rejects_cigar_path_disagreement() {
        let graph = bubble_graph();
        let char_path = vec![GraphPos::new(NodeId(0), 0), GraphPos::new(NodeId(0), 1)];
        let err = GafRecord::from_char_path("r", 3, &graph, &char_path, &all_match_cigar(3), 0, 60)
            .unwrap_err();
        assert!(matches!(err, FormatError::InvalidRecord { .. }));
    }

    #[test]
    fn rejects_empty_path() {
        let graph = bubble_graph();
        assert!(GafRecord::from_char_path("r", 0, &graph, &[], &Cigar::new(), 0, 0).is_err());
    }

    #[test]
    fn gaf_line_round_trips() {
        let graph = bubble_graph();
        let first = NodeId(0);
        let char_path = char_path_for(&graph, &[first.0]);
        let len = char_path.len() as u32;
        let mut cigar = Cigar::new();
        cigar.push_run(CigarOp::Match, len - 1);
        cigar.push_run(CigarOp::Subst, 1);
        let rec =
            GafRecord::from_char_path("read/1", len as usize, &graph, &char_path, &cigar, 1, 42)
                .unwrap();
        let text = write_gaf(std::slice::from_ref(&rec));
        let parsed = read_gaf(&text).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn reader_rejects_reverse_segments_and_garbage() {
        assert!(read_gaf("r\t4\t0\t4\t+\t<3\t4\t0\t4\t4\t4\t60\n").is_err());
        assert!(read_gaf("r\t4\t0\t4\t?\t>3\t4\t0\t4\t4\t4\t60\n").is_err());
        assert!(read_gaf("r\t4\t0\t4\t+\t>x\t4\t0\t4\t4\t4\t60\n").is_err());
        assert!(read_gaf("r\t4\t0\t4\n").is_err());
    }

    #[test]
    fn reader_accepts_records_without_tags() {
        let recs = read_gaf("r\t4\t0\t4\t+\t>0>1\t8\t0\t4\t4\t4\t60\n").unwrap();
        assert_eq!(recs[0].path, vec![NodeId(0), NodeId(1)]);
        assert_eq!(recs[0].cigar, "");
        assert_eq!(recs[0].edit_distance, 0);
    }
}
