//! The batched, multi-threaded, order-preserving map engine.
//!
//! [`MapEngine`] is the production driver around
//! [`SegramMapper`](crate::SegramMapper): it consumes a stream of reads,
//! groups them into fixed-size batches, fans the batches out to
//! `std::thread::scope` workers through a bounded work queue (so an
//! arbitrarily long input stream never piles up in memory), and emits
//! per-read outcomes to a sink **in input order**, whatever the worker
//! interleaving. Per-stage [`MapStats`] are aggregated across all workers.
//!
//! Ordering guarantee: batches are numbered by the producer and a reorder
//! buffer releases them to the sink strictly sequentially, so the output
//! of `threads = N` is byte-identical to `threads = 1` for any `N` (the
//! mapper itself is deterministic). `ci.sh` enforces this end to end.
//!
//! The engine is generic over [`ReadMapper`], so the same driver runs the
//! monolithic [`SegramMapper`] and the coordinate-range
//! [`ShardedIndex`](crate::ShardedIndex). The bounded queue exposes
//! depth/wait counters ([`QueueStats`]) to locate the
//! producer-vs-worker bottleneck, and a [`ShardAffinity`] plan assigns
//! workers to shard groups with the same size-balanced placement the
//! paper uses for chromosomes over memory channels (an ownership model
//! plus batch accounting — routing still fans out to every shard).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use segram_graph::DnaSeq;
use segram_sim::Strand;

use crate::mapper::{MapStats, Mapping, ReadMapper, SegramMapper};
use crate::shard::balance_loads;

/// Tuning knobs of a [`MapEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker thread count (clamped to at least 1).
    pub threads: usize,
    /// Reads per work item; batching amortizes queue synchronization.
    pub batch_size: usize,
    /// Bounded work-queue capacity in batches (0 = `2 × threads`). Bounds
    /// how far the producer can run ahead of the workers.
    pub queue_depth: usize,
    /// Map each read on both strands and keep the better mapping.
    pub both_strands: bool,
}

impl EngineConfig {
    /// A configuration with `threads` workers and default batching.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Returns a copy with both-strand mapping enabled or disabled.
    pub fn both_strands(mut self, enabled: bool) -> Self {
        self.both_strands = enabled;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_size: 16,
            queue_depth: 0,
            both_strands: false,
        }
    }
}

/// The engine's per-read result: the mapping (if any), the strand it was
/// found on, and this read's per-stage statistics (the inputs SAM/GAF
/// rendering needs, e.g. for MAPQ estimation).
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// The winning mapping, if the read mapped.
    pub mapping: Option<Mapping>,
    /// Strand the mapping was found on ([`Strand::Forward`] unless
    /// [`EngineConfig::both_strands`] found a better reverse mapping).
    pub strand: Strand,
    /// This read's pipeline statistics.
    pub stats: MapStats,
}

/// Aggregate of one engine run.
#[derive(Clone, Copy, Debug)]
pub struct EngineReport {
    /// The backend that produced this run
    /// ([`ReadMapper::backend_name`]), so reports and artifacts always
    /// name the mapper behind the numbers.
    pub backend: &'static str,
    /// Reads consumed from the input stream.
    pub reads: usize,
    /// Reads that produced a mapping.
    pub mapped: usize,
    /// Batches the input was split into.
    pub batches: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Per-stage statistics summed over every read and worker.
    pub stats: MapStats,
    /// Work-queue depth and wait counters for this run.
    pub queue: QueueStats,
}

impl Default for EngineReport {
    fn default() -> Self {
        Self {
            backend: "segram",
            reads: 0,
            mapped: 0,
            batches: 0,
            threads: 0,
            stats: MapStats::default(),
            queue: QueueStats::default(),
        }
    }
}

/// Depth/wait counters of the engine's bounded work queue — the
/// backpressure observability that locates the producer-vs-worker
/// bottleneck at high thread counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// High-water mark of queued batches.
    pub max_depth: usize,
    /// Times the producer blocked on a full queue.
    pub producer_waits: u64,
    /// Total time the producer spent blocked on a full queue.
    pub producer_wait: Duration,
    /// Times a worker blocked on an empty queue (excluding the final
    /// end-of-stream drain).
    pub worker_waits: u64,
    /// Total time workers spent blocked on an empty queue.
    pub worker_wait: Duration,
}

/// Worker-to-shard ownership *plan* plus per-group batch accounting:
/// distributes shard ids over worker groups with the same greedy
/// size-balanced placement the paper uses to spread chromosomes across
/// HBM channels (Section 8.3, [`balance_loads`](crate::balance_loads)),
/// and counts the batches each group's workers processed.
///
/// This is the deployment model for a NUMA/multi-queue setup, not a
/// routing constraint: today every worker still pops from the one shared
/// queue and the seeding router fans each read out to **all** shards, so
/// the per-group batch counts measure queue scheduling, not shard-local
/// work (per-shard occupancy lives in
/// [`ShardStats`](crate::ShardStats)). Dedicated per-group worker pools
/// are the ROADMAP's follow-up extension.
///
/// With more workers than shards, workers share groups round-robin; with
/// more shards than workers, a group owns several shards.
#[derive(Debug)]
pub struct ShardAffinity {
    /// Per group, the shard ids pinned to it.
    groups: Vec<Vec<usize>>,
    /// Worker index → group index.
    worker_group: Vec<usize>,
    /// Per group, batches processed by its workers.
    batches: Vec<AtomicU64>,
}

impl ShardAffinity {
    /// Pins `workers` workers to shard groups balanced by `shard_loads`
    /// (per-shard memory bytes).
    ///
    /// # Panics
    ///
    /// Panics when `shard_loads` is empty or `workers` is zero.
    pub fn pin_workers(shard_loads: &[u64], workers: usize) -> Self {
        assert!(!shard_loads.is_empty(), "at least one shard");
        assert!(workers > 0, "at least one worker");
        let group_count = workers.min(shard_loads.len());
        let groups = balance_loads(shard_loads, group_count);
        let worker_group = (0..workers).map(|w| w % group_count).collect();
        let batches = (0..group_count).map(|_| AtomicU64::new(0)).collect();
        Self {
            groups,
            worker_group,
            batches,
        }
    }

    /// Per group, the shard ids pinned to it.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The shard group a worker is pinned to.
    pub fn group_of(&self, worker: usize) -> usize {
        self.worker_group[worker % self.worker_group.len()]
    }

    /// Batches processed per shard group (since construction).
    pub fn batches_per_group(&self) -> Vec<u64> {
        self.batches
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn record_batch(&self, worker: usize) {
        self.batches[self.group_of(worker)].fetch_add(1, Ordering::Relaxed);
    }
}

/// A bounded single-producer / multi-consumer batch queue (Mutex +
/// Condvar; no external dependencies). `push` blocks while the queue is
/// full, `pop` blocks while it is empty, and `close` wakes everyone so
/// drained workers observe end-of-stream.
struct WorkQueue<T> {
    inner: Mutex<WorkQueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    // Wait accounting lives outside the mutex so blocked-time bookkeeping
    // never extends the critical section.
    producer_waits: AtomicU64,
    producer_wait_ns: AtomicU64,
    worker_waits: AtomicU64,
    worker_wait_ns: AtomicU64,
}

struct WorkQueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
    /// High-water mark of `items.len()`.
    max_depth: usize,
}

impl<T> WorkQueue<T> {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(WorkQueueInner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            producer_waits: AtomicU64::new(0),
            producer_wait_ns: AtomicU64::new(0),
            worker_waits: AtomicU64::new(0),
            worker_wait_ns: AtomicU64::new(0),
        }
    }

    fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        if inner.items.len() >= inner.capacity && !inner.closed {
            let blocked = Instant::now();
            while inner.items.len() >= inner.capacity && !inner.closed {
                inner = self.not_full.wait(inner).expect("work queue poisoned");
            }
            self.producer_waits.fetch_add(1, Ordering::Relaxed);
            self.producer_wait_ns
                .fetch_add(blocked.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if inner.closed {
            return;
        }
        inner.items.push_back(item);
        inner.max_depth = inner.max_depth.max(inner.items.len());
        drop(inner);
        self.not_empty.notify_one();
    }

    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            // One blocked period counts as one wait, however many
            // (possibly spurious) wakeups it takes — mirroring the
            // producer-side accounting so the two columns compare.
            // End-of-stream wakeups (close with no work) are not
            // starvation and are not counted.
            let blocked = Instant::now();
            while inner.items.is_empty() && !inner.closed {
                inner = self.not_empty.wait(inner).expect("work queue poisoned");
            }
            if !inner.items.is_empty() {
                self.worker_waits.fetch_add(1, Ordering::Relaxed);
                self.worker_wait_ns
                    .fetch_add(blocked.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot of the queue's depth/wait counters.
    fn stats(&self) -> QueueStats {
        let max_depth = match self.inner.lock() {
            Ok(inner) => inner.max_depth,
            Err(poisoned) => poisoned.into_inner().max_depth,
        };
        QueueStats {
            max_depth,
            producer_waits: self.producer_waits.load(Ordering::Relaxed),
            producer_wait: Duration::from_nanos(self.producer_wait_ns.load(Ordering::Relaxed)),
            worker_waits: self.worker_waits.load(Ordering::Relaxed),
            worker_wait: Duration::from_nanos(self.worker_wait_ns.load(Ordering::Relaxed)),
        }
    }

    fn close(&self) {
        match self.inner.lock() {
            Ok(mut inner) => inner.closed = true,
            // Closing must succeed even after a worker panicked while
            // holding the lock — liveness beats the poison flag here.
            Err(poisoned) => poisoned.into_inner().closed = true,
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Closes the queue when dropped — including during a panic unwind. Both
/// the producer and every worker hold one, so a panic anywhere (input
/// iterator, sink, pipeline) releases the threads blocked on the queue
/// and lets `std::thread::scope` propagate the panic instead of
/// deadlocking.
struct CloseOnDrop<'a, T>(&'a WorkQueue<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// The in-order emission side: completed batches park in `pending` until
/// every earlier batch has been handed to the sink.
struct Reorder<T, F> {
    next: usize,
    pending: BTreeMap<usize, Vec<(T, ReadOutcome)>>,
    sink: F,
    report: EngineReport,
}

/// The batched, multi-threaded, order-preserving mapping engine, generic
/// over the [`ReadMapper`] it drives (the monolithic [`SegramMapper`] or
/// the coordinate-range [`ShardedIndex`](crate::ShardedIndex)).
///
/// # Examples
///
/// ```
/// use segram_core::{EngineConfig, MapEngine, SegramConfig, SegramMapper};
/// use segram_sim::DatasetConfig;
///
/// let dataset = DatasetConfig::tiny(3).illumina(100);
/// let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
/// let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
/// let reads: Vec<_> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
/// let (outcomes, report) = engine.map_batch(&reads);
/// assert_eq!(outcomes.len(), reads.len());
/// assert_eq!(report.reads, reads.len());
/// assert!(report.mapped > 0);
/// ```
#[derive(Debug)]
pub struct MapEngine<'m, M: ReadMapper = SegramMapper> {
    mapper: &'m M,
    config: EngineConfig,
    affinity: Option<ShardAffinity>,
}

impl<'m, M: ReadMapper> MapEngine<'m, M> {
    /// Binds the engine to a mapper.
    pub fn new(mapper: &'m M, config: EngineConfig) -> Self {
        Self {
            mapper,
            config,
            affinity: None,
        }
    }

    /// Binds the engine to a mapper with a worker-to-shard-group
    /// ownership plan (see [`ShardAffinity`] for what the plan does and
    /// does not affect).
    pub fn with_affinity(mapper: &'m M, config: EngineConfig, affinity: ShardAffinity) -> Self {
        Self {
            mapper,
            config,
            affinity: Some(affinity),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The worker-to-shard pinning, when configured.
    pub fn affinity(&self) -> Option<&ShardAffinity> {
        self.affinity.as_ref()
    }

    /// Maps one read according to the engine's strand policy.
    fn map_one(&self, read: &DnaSeq) -> ReadOutcome {
        if self.config.both_strands {
            let (best, stats) = self.mapper.map_read_both(read);
            let (mapping, strand) = match best {
                Some((mapping, strand)) => (Some(mapping), strand),
                None => (None, Strand::Forward),
            };
            ReadOutcome {
                mapping,
                strand,
                stats,
            }
        } else {
            let (mapping, stats) = self.mapper.map_read(read);
            ReadOutcome {
                mapping,
                strand: Strand::Forward,
                stats,
            }
        }
    }

    /// Streams `reads` through the engine, calling `sink(item, outcome)`
    /// once per read **in input order**.
    ///
    /// `read_of` projects the sequence out of an arbitrary item type, so
    /// callers can stream `FastqRecord`s, `SimulatedRead`s, or bare
    /// [`DnaSeq`]s and get the item back in the sink alongside its
    /// outcome. The input iterator is consumed incrementally on the
    /// calling thread, and a worker that runs too far ahead of a slow
    /// batch parks until the reorder buffer drains, so at most
    /// `2 × queue_depth + 2 × threads` batches exist at any moment —
    /// memory stays bounded for arbitrarily long streams.
    pub fn map_stream<T, R, F>(
        &self,
        mut reads: impl Iterator<Item = T>,
        read_of: R,
        sink: F,
    ) -> EngineReport
    where
        T: Send,
        R: Fn(&T) -> &DnaSeq + Sync,
        F: FnMut(T, ReadOutcome) + Send,
    {
        let threads = self.config.threads.max(1);
        let batch_size = self.config.batch_size.max(1);
        let queue_depth = if self.config.queue_depth == 0 {
            threads * 2
        } else {
            self.config.queue_depth
        };
        let queue: WorkQueue<(usize, Vec<T>)> = WorkQueue::new(queue_depth);
        // The reorder buffer is bounded too: a worker whose finished batch
        // is further than this ahead of the next-to-emit batch parks until
        // the slow batch releases, so one pathological read cannot make
        // `pending` absorb the rest of the stream.
        let max_ahead = queue_depth + threads;
        let output = Mutex::new(Reorder {
            next: 0,
            pending: BTreeMap::new(),
            sink,
            report: EngineReport::default(),
        });
        let released = Condvar::new();
        let read_of = &read_of;
        let mut batches = 0usize;

        std::thread::scope(|scope| {
            for worker in 0..threads {
                let queue = &queue;
                let output = &output;
                let released = &released;
                let affinity = self.affinity.as_ref();
                scope.spawn(move || {
                    // Unblocks the producer and fellow workers if this
                    // worker panics (sink, pipeline, or poisoned lock).
                    let _close_guard = CloseOnDrop(queue);
                    while let Some((index, items)) = queue.pop() {
                        if let Some(affinity) = affinity {
                            affinity.record_batch(worker);
                        }
                        let outcomes: Vec<(T, ReadOutcome)> = items
                            .into_iter()
                            .map(|item| {
                                let outcome = self.map_one(read_of(&item));
                                (item, outcome)
                            })
                            .collect();
                        let mut guard = output.lock().expect("engine output poisoned");
                        // Backpressure: the worker owning batch `next` is
                        // never parked here, so emission always advances.
                        while index >= guard.next + max_ahead {
                            guard = released.wait(guard).expect("engine output poisoned");
                        }
                        let out = &mut *guard;
                        out.pending.insert(index, outcomes);
                        // Release every batch that is now contiguous with
                        // the emitted prefix, in order.
                        let mut advanced = false;
                        while let Some(ready) = out.pending.remove(&out.next) {
                            out.next += 1;
                            advanced = true;
                            for (item, outcome) in ready {
                                out.report.reads += 1;
                                if outcome.mapping.is_some() {
                                    out.report.mapped += 1;
                                }
                                out.report.stats.merge(&outcome.stats);
                                (out.sink)(item, outcome);
                            }
                        }
                        drop(guard);
                        if advanced {
                            released.notify_all();
                        }
                    }
                });
            }

            // The calling thread is the producer: batch the stream into
            // the bounded queue, then signal end-of-input (the guard also
            // closes the queue if the input iterator panics, so workers
            // are never left blocked).
            let _close_guard = CloseOnDrop(&queue);
            loop {
                let batch: Vec<T> = reads.by_ref().take(batch_size).collect();
                if batch.is_empty() {
                    break;
                }
                queue.push((batches, batch));
                batches += 1;
            }
        });

        let mut report = output.into_inner().expect("engine output poisoned").report;
        report.backend = self.mapper.backend_name();
        report.batches = batches;
        report.threads = threads;
        report.queue = queue.stats();
        report
    }

    /// Maps a slice of reads, returning the outcomes in input order plus
    /// the aggregate report (the batch-oriented convenience entry point).
    pub fn map_batch(&self, reads: &[DnaSeq]) -> (Vec<ReadOutcome>, EngineReport) {
        let mut outcomes = Vec::with_capacity(reads.len());
        let report = self.map_stream(
            reads.iter(),
            |read| *read,
            |_, outcome| outcomes.push(outcome),
        );
        (outcomes, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegramConfig;
    use segram_sim::DatasetConfig;
    use std::time::Duration;

    fn setup() -> (segram_sim::Dataset, SegramMapper) {
        let dataset = DatasetConfig::tiny(91).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        (dataset, mapper)
    }

    #[test]
    fn outcomes_preserve_input_order_across_thread_counts() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let serial = MapEngine::new(&mapper, EngineConfig::with_threads(1));
        let (base, base_report) = serial.map_batch(&reads);
        assert_eq!(base_report.reads, reads.len());
        for threads in [2usize, 4] {
            let mut config = EngineConfig::with_threads(threads);
            config.batch_size = 3; // force interleaving across workers
            let engine = MapEngine::new(&mapper, config);
            let (outcomes, report) = engine.map_batch(&reads);
            assert_eq!(report.threads, threads);
            assert_eq!(report.reads, reads.len());
            assert_eq!(report.mapped, base_report.mapped);
            for (a, b) in base.iter().zip(&outcomes) {
                assert_eq!(
                    a.mapping
                        .as_ref()
                        .map(|m| (m.linear_start, m.alignment.edit_distance)),
                    b.mapping
                        .as_ref()
                        .map(|m| (m.linear_start, m.alignment.edit_distance)),
                );
                assert_eq!(a.strand, b.strand);
            }
        }
    }

    #[test]
    fn tiny_queue_backpressure_still_preserves_order() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let (base, _) = MapEngine::new(&mapper, EngineConfig::with_threads(1)).map_batch(&reads);
        // One-read batches through a one-slot queue with four workers:
        // maximum contention on both the work queue and the bounded
        // reorder buffer (max_ahead = 5 with 20 batches in flight).
        let mut config = EngineConfig::with_threads(4);
        config.batch_size = 1;
        config.queue_depth = 1;
        let engine = MapEngine::new(&mapper, config);
        let (outcomes, report) = engine.map_batch(&reads);
        assert_eq!(report.reads, reads.len());
        assert_eq!(report.batches, reads.len());
        for (a, b) in base.iter().zip(&outcomes) {
            assert_eq!(
                a.mapping.as_ref().map(|m| m.linear_start),
                b.mapping.as_ref().map(|m| m.linear_start),
            );
        }
    }

    #[test]
    fn per_stage_stats_aggregation_matches_serial_sums() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();

        // Serial reference: sum per-read stats by hand.
        let mut serial = MapStats::default();
        let mut serial_mapped = 0usize;
        for read in &reads {
            let (mapping, stats) = mapper.map_read(read);
            serial.merge(&stats);
            if mapping.is_some() {
                serial_mapped += 1;
            }
        }

        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(4));
        let (_, report) = engine.map_batch(&reads);
        // Counts are deterministic and must match the serial sums exactly;
        // durations are wall-clock measurements, so only their presence is
        // checked.
        assert_eq!(report.mapped, serial_mapped);
        assert_eq!(report.stats.minimizers, serial.minimizers);
        assert_eq!(report.stats.filtered_minimizers, serial.filtered_minimizers);
        assert_eq!(report.stats.seed_locations, serial.seed_locations);
        assert_eq!(report.stats.regions_aligned, serial.regions_aligned);
        assert_eq!(report.stats.regions_filtered, serial.regions_filtered);
        assert_eq!(report.stats.total_region_len, serial.total_region_len);
        assert!(report.stats.seeding > Duration::ZERO);
        assert!(report.stats.alignment > Duration::ZERO);
    }

    #[test]
    fn prefiltered_engine_accounts_filtering_time_separately() {
        let dataset = DatasetConfig::tiny(93).illumina(100);
        let config =
            SegramConfig::short_reads().with_prefilter(segram_filter::FilterSpec::cascade());
        let mapper = SegramMapper::new(dataset.graph().clone(), config);
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
        let (_, report) = engine.map_batch(&reads);
        assert!(report.stats.filtering > Duration::ZERO);
        let fraction = report.stats.alignment_fraction();
        assert!(fraction > 0.0 && fraction < 1.0);
    }

    #[test]
    fn queue_stats_observe_depth_and_waits() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        // A one-slot queue with one-read batches maximizes contention: the
        // producer must block while workers drain.
        let mut config = EngineConfig::with_threads(2);
        config.batch_size = 1;
        config.queue_depth = 1;
        let engine = MapEngine::new(&mapper, config);
        let (_, report) = engine.map_batch(&reads);
        assert!(report.queue.max_depth >= 1);
        assert!(
            report.queue.max_depth <= 1,
            "bounded queue must bound depth"
        );
        // With 20 single-read batches through one slot, someone must have
        // waited at least once on either side.
        assert!(
            report.queue.producer_waits + report.queue.worker_waits > 0,
            "contended run recorded no waits: {:?}",
            report.queue
        );
    }

    #[test]
    fn shard_affinity_pins_workers_and_counts_batches() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let affinity = ShardAffinity::pin_workers(&[100, 80, 60, 40], 4);
        // Every shard pinned to exactly one group.
        let mut pinned: Vec<usize> = affinity.groups().iter().flatten().copied().collect();
        pinned.sort_unstable();
        assert_eq!(pinned, vec![0, 1, 2, 3]);
        let mut config = EngineConfig::with_threads(4);
        config.batch_size = 2;
        let engine = MapEngine::with_affinity(&mapper, config, affinity);
        let (_, report) = engine.map_batch(&reads);
        let per_group = engine
            .affinity()
            .expect("affinity configured")
            .batches_per_group();
        assert_eq!(per_group.iter().sum::<u64>() as usize, report.batches);
    }

    #[test]
    fn more_workers_than_shards_share_groups() {
        let affinity = ShardAffinity::pin_workers(&[10, 20], 5);
        assert_eq!(affinity.groups().len(), 2);
        for worker in 0..5 {
            assert!(affinity.group_of(worker) < 2);
        }
        // More shards than workers: one group owns several shards.
        let wide = ShardAffinity::pin_workers(&[5, 4, 3, 2, 1], 2);
        assert_eq!(wide.groups().len(), 2);
        assert_eq!(wide.groups().iter().map(Vec::len).sum::<usize>(), 5);
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let (_, mapper) = setup();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(3));
        let report = engine.map_stream(std::iter::empty::<DnaSeq>(), |r| r, |_, _| {});
        assert_eq!(report.reads, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.mapped, 0);
    }

    #[test]
    fn report_names_the_backend() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset
            .reads
            .iter()
            .map(|r| r.seq.clone())
            .take(3)
            .collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
        let (_, report) = engine.map_batch(&reads);
        assert_eq!(report.backend, "segram");
        assert_eq!(EngineReport::default().backend, "segram");
    }

    #[test]
    fn work_queue_depth_high_water_never_exceeds_capacity() {
        // Direct accounting check on the bounded queue: with a consumer
        // draining a 3-slot queue, max_depth reflects occupancy and stays
        // within the configured capacity.
        let queue: WorkQueue<u32> = WorkQueue::new(3);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for item in 0..20u32 {
                    queue.push(item);
                }
                queue.close();
            });
            let mut popped = Vec::new();
            while let Some(item) = queue.pop() {
                popped.push(item);
            }
            assert_eq!(popped, (0..20).collect::<Vec<_>>());
        });
        let stats = queue.stats();
        assert!(stats.max_depth >= 1);
        assert!(
            stats.max_depth <= 3,
            "high-water {} exceeds capacity 3",
            stats.max_depth
        );
    }

    #[test]
    fn work_queue_wait_counters_are_monotone_and_consistent() {
        let queue: WorkQueue<u32> = WorkQueue::new(1);
        // Producer wait: fill the single slot, then push from another
        // thread while this one drains slowly.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for item in 0..5u32 {
                    queue.push(item); // blocks whenever the slot is full
                }
                queue.close();
            });
            let mut snapshots = Vec::new();
            while let Some(_item) = queue.pop() {
                std::thread::sleep(Duration::from_millis(2));
                snapshots.push(queue.stats());
            }
            // Counters only ever grow between snapshots.
            for pair in snapshots.windows(2) {
                assert!(pair[1].producer_waits >= pair[0].producer_waits);
                assert!(pair[1].worker_waits >= pair[0].worker_waits);
                assert!(pair[1].producer_wait >= pair[0].producer_wait);
                assert!(pair[1].worker_wait >= pair[0].worker_wait);
            }
        });
        let stats = queue.stats();
        assert!(
            stats.producer_waits >= 1,
            "slow consumer on a 1-slot queue must block the producer: {stats:?}"
        );
        // A recorded wait implies recorded blocked time, and vice versa.
        assert_eq!(
            stats.producer_waits > 0,
            stats.producer_wait > Duration::ZERO
        );
        assert_eq!(stats.worker_waits > 0, stats.worker_wait > Duration::ZERO);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn worker_wait_is_counted_only_for_real_starvation() {
        // Whether the consumer actually blocks before the push depends on
        // scheduling, so retry until a starved pop is observed instead of
        // trusting one sleep; a barrier removes the thread-spawn delay
        // from the race window. Consistency (a recorded wait carries
        // recorded blocked time) is asserted on every attempt.
        let mut starved = false;
        for _ in 0..20 {
            let queue: WorkQueue<u32> = WorkQueue::new(4);
            let barrier = std::sync::Barrier::new(2);
            std::thread::scope(|scope| {
                let consumer = scope.spawn(|| {
                    barrier.wait();
                    // Blocks on the empty queue until the item arrives.
                    assert_eq!(queue.pop(), Some(7));
                });
                barrier.wait();
                std::thread::sleep(Duration::from_millis(10));
                queue.push(7);
                consumer.join().expect("consumer");
            });
            let stats = queue.stats();
            assert_eq!(stats.worker_waits > 0, stats.worker_wait > Duration::ZERO);
            if stats.worker_waits >= 1 {
                starved = true;
                break;
            }
        }
        assert!(starved, "consumer never observed starving in 20 attempts");

        // End-of-stream drain: a pop woken only by close() is not counted
        // as starvation, however the pop and the close interleave.
        let drained: WorkQueue<u32> = WorkQueue::new(4);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| drained.pop());
            std::thread::sleep(Duration::from_millis(5));
            drained.close();
            assert_eq!(consumer.join().expect("consumer"), None);
        });
        assert_eq!(drained.stats().worker_waits, 0);
        assert_eq!(drained.stats().worker_wait, Duration::ZERO);
    }

    #[test]
    fn both_strand_engine_recovers_reverse_reads() {
        let dataset = DatasetConfig::tiny(95).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let stranded = segram_sim::simulate_stranded_reads(
            dataset.graph(),
            &segram_sim::ReadConfig::short_reads(10, 100, 96),
            1.0,
        );
        let reads: Vec<DnaSeq> = stranded.iter().map(|r| r.seq.clone()).collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2).both_strands(true));
        let (outcomes, report) = engine.map_batch(&reads);
        assert!(report.mapped >= 8, "only {} of 10 mapped", report.mapped);
        assert!(outcomes
            .iter()
            .filter_map(|o| o.mapping.as_ref().map(|_| o.strand))
            .any(|s| s == Strand::Reverse));
    }
}
