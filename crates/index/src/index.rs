//! The hash-table-based index of the genome graph (Figure 6): a
//! three-level structure of buckets → minimizers → seed locations, with the
//! paper's byte accounting (4 B per bucket, 12 B per minimizer, 8 B per
//! location).

use std::collections::HashMap;

use segram_graph::{ChangeLog, GenomeGraph, GraphPos, NodeId};

use crate::minimizer::{extract_minimizers_from, Minimizer, MinimizerScheme};

/// Bytes per first-level bucket entry (Figure 6).
pub const BUCKET_ENTRY_BYTES: u64 = 4;
/// Bytes per second-level minimizer entry (Figure 6).
pub const MINIMIZER_ENTRY_BYTES: u64 = 12;
/// Bytes per third-level seed-location entry (Figure 6).
pub const LOCATION_ENTRY_BYTES: u64 = 8;

/// The paper's empirically chosen bucket count, `2^24` (Figure 7 ff.).
pub const DEFAULT_BUCKET_BITS: u32 = 24;

/// One second-level entry: a distinct minimizer and its seed locations.
/// Crate-visible so the `persist` module can stream entries to and from
/// the on-disk format without re-sorting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct MinimizerEntry {
    /// Hash value of the minimizer.
    pub(crate) hash: u64,
    /// Start of this minimizer's locations in the third level.
    pub(crate) loc_start: u32,
    /// Number of locations.
    pub(crate) loc_count: u32,
}

/// The three-level hash-table index over a genome graph's nodes.
///
/// # Examples
///
/// ```
/// use segram_index::{GraphIndex, MinimizerScheme};
/// use segram_graph::linear_graph;
///
/// let graph = linear_graph(&"ACGTTGCAGTCATGCA".repeat(20).parse()?, 64)?;
/// let index = GraphIndex::build(&graph, MinimizerScheme::new(5, 8), 10);
/// assert!(index.distinct_minimizers() > 0);
/// // Every indexed minimizer can be queried back.
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphIndex {
    pub(crate) scheme: MinimizerScheme,
    pub(crate) bucket_bits: u32,
    /// First level: per bucket, the range of second-level entries.
    pub(crate) bucket_starts: Vec<u32>,
    /// Second level, sorted by (bucket, hash).
    pub(crate) minimizers: Vec<MinimizerEntry>,
    /// Third level, grouped per minimizer, sorted by (node, offset).
    pub(crate) locations: Vec<GraphPos>,
}

impl GraphIndex {
    /// Indexes the nodes of `graph` (Section 5: "the nodes of the graph
    /// structure are indexed and stored in the hash-table-based index").
    ///
    /// K-mers are taken *within* nodes; `bucket_bits` selects the
    /// first-level bucket count `2^bucket_bits`.
    ///
    /// # Panics
    ///
    /// Panics when `bucket_bits` is 0 or exceeds 32.
    pub fn build(graph: &GenomeGraph, scheme: MinimizerScheme, bucket_bits: u32) -> Self {
        assert!(
            (1..=32).contains(&bucket_bits),
            "bucket_bits must be 1..=32"
        );
        // Collect (hash, node, offset) for every node's minimizers.
        let mut raw: Vec<(u64, GraphPos)> = Vec::new();
        for node in graph.node_ids() {
            let seq = graph.seq(node);
            for m in extract_minimizers_from(seq.as_slice(), &scheme) {
                raw.push((m.rank, GraphPos::new(node, m.pos)));
            }
        }
        Self::from_raw(scheme, bucket_bits, raw)
    }

    fn from_raw(scheme: MinimizerScheme, bucket_bits: u32, mut raw: Vec<(u64, GraphPos)>) -> Self {
        let bucket_count = 1usize << bucket_bits;
        let bucket_of = |hash: u64| -> usize { (hash % bucket_count as u64) as usize };
        raw.sort_by_key(|&(hash, pos)| (bucket_of(hash), hash, pos));
        Self::from_sorted(scheme, bucket_bits, raw)
    }

    /// Assembles the three levels from a `(hash, location)` stream already
    /// in `(bucket, hash, location)` order — the no-re-sort fast path
    /// [`Self::apply_delta`] uses to merge carried and fresh entries.
    fn from_sorted(scheme: MinimizerScheme, bucket_bits: u32, raw: Vec<(u64, GraphPos)>) -> Self {
        let bucket_count = 1usize << bucket_bits;
        let bucket_of = |hash: u64| -> usize { (hash % bucket_count as u64) as usize };
        debug_assert!(
            raw.windows(2)
                .all(|w| (bucket_of(w[0].0), w[0].0, w[0].1) <= (bucket_of(w[1].0), w[1].0, w[1].1)),
            "from_sorted input must arrive in (bucket, hash, location) order"
        );
        let mut bucket_starts = vec![0u32; bucket_count + 1];
        let mut minimizers: Vec<MinimizerEntry> = Vec::new();
        let mut locations: Vec<GraphPos> = Vec::with_capacity(raw.len());
        for (hash, pos) in raw {
            let same = minimizers.last().is_some_and(|last| last.hash == hash);
            if same {
                minimizers.last_mut().expect("non-empty").loc_count += 1;
            } else {
                minimizers.push(MinimizerEntry {
                    hash,
                    loc_start: locations.len() as u32,
                    loc_count: 1,
                });
                bucket_starts[bucket_of(hash) + 1] += 1;
            }
            locations.push(pos);
        }
        // Prefix sums: bucket_starts[b] = first second-level entry of bucket b.
        for b in 1..=bucket_count {
            bucket_starts[b] += bucket_starts[b - 1];
        }
        Self {
            scheme,
            bucket_bits,
            bucket_starts,
            minimizers,
            locations,
        }
    }

    /// The minimizer scheme the index was built with.
    pub fn scheme(&self) -> &MinimizerScheme {
        &self.scheme
    }

    /// `log2` of the bucket count.
    pub fn bucket_bits(&self) -> u32 {
        self.bucket_bits
    }

    /// Number of distinct minimizers (second-level entries).
    pub fn distinct_minimizers(&self) -> usize {
        self.minimizers.len()
    }

    /// Total number of seed locations (third-level entries).
    pub fn total_locations(&self) -> usize {
        self.locations.len()
    }

    /// Occurrence frequency of a minimizer hash (the value MinSeed fetches
    /// first, step 3 in Figure 4). Zero when absent.
    pub fn frequency(&self, hash: u64) -> u32 {
        self.entry(hash).map_or(0, |e| e.loc_count)
    }

    /// All seed locations of a minimizer hash (step 5 in Figure 4).
    pub fn locations(&self, hash: u64) -> &[GraphPos] {
        match self.entry(hash) {
            Some(e) => &self.locations[e.loc_start as usize..][..e.loc_count as usize],
            None => &[],
        }
    }

    fn entry(&self, hash: u64) -> Option<MinimizerEntry> {
        let bucket = (hash % (1u64 << self.bucket_bits)) as usize;
        let start = self.bucket_starts[bucket] as usize;
        let end = self.bucket_starts[bucket + 1] as usize;
        let slice = &self.minimizers[start..end];
        slice
            .binary_search_by_key(&hash, |e| e.hash)
            .ok()
            .map(|i| slice[i])
    }

    /// Queries a [`Minimizer`] extracted from a read.
    pub fn lookup(&self, minimizer: &Minimizer) -> &[GraphPos] {
        self.locations(minimizer.rank)
    }

    /// Splits this index into per-coordinate-range shard indexes — the
    /// software analogue of the paper's per-HBM-channel index slices
    /// (Section 8.3). `boundaries` are `N + 1` ascending linear-coordinate
    /// cut points; shard `s` receives exactly the seed locations whose
    /// linear coordinate falls in `[boundaries[s], boundaries[s + 1])`.
    ///
    /// The shards partition this index: every location lands in exactly
    /// one shard, so summing a minimizer's per-shard frequencies
    /// reproduces [`Self::frequency`] and concatenating per-shard
    /// [`Self::locations`] reproduces the monolithic location multiset.
    /// Each shard keeps the parent's scheme and bucket count.
    ///
    /// # Panics
    ///
    /// Panics when `boundaries` has fewer than two entries, is not
    /// ascending, or when a location's linear coordinate cannot be
    /// resolved against `graph` (i.e. `graph` is not the graph this index
    /// was built from).
    pub fn split_by_ranges(&self, graph: &GenomeGraph, boundaries: &[u64]) -> Vec<GraphIndex> {
        assert!(boundaries.len() >= 2, "need at least one shard range");
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "shard boundaries must be ascending"
        );
        let shards = boundaries.len() - 1;
        let mut raw: Vec<Vec<(u64, GraphPos)>> = vec![Vec::new(); shards];
        for entry in &self.minimizers {
            let locs = &self.locations[entry.loc_start as usize..][..entry.loc_count as usize];
            for &loc in locs {
                let linear = graph
                    .linear_pos(loc)
                    .expect("index location must resolve against its own graph");
                // partition_point: first boundary > linear, minus one =
                // owning shard; coordinates past the last cut stay in the
                // final shard so a short `boundaries` never loses seeds.
                let shard = boundaries[1..boundaries.len() - 1]
                    .partition_point(|&b| b <= linear)
                    .min(shards - 1);
                raw[shard].push((entry.hash, loc));
            }
        }
        raw.into_iter()
            .map(|r| Self::from_raw(self.scheme, self.bucket_bits, r))
            .collect()
    }

    /// Extracts the single shard `shard` of the [`Self::split_by_ranges`]
    /// partition without materializing the other shards — the dirty-shard
    /// delta swap rebuilds only the touched shards, so partitioning the
    /// clean ones would be wasted work. Ownership is identical to
    /// `split_by_ranges(graph, boundaries)[shard]`.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::split_by_ranges`], plus `shard` must be a
    /// valid shard number for `boundaries`.
    pub fn extract_shard(
        &self,
        graph: &GenomeGraph,
        boundaries: &[u64],
        shard: usize,
    ) -> GraphIndex {
        assert!(boundaries.len() >= 2, "need at least one shard range");
        let shards = boundaries.len() - 1;
        assert!(shard < shards, "shard {shard} out of {shards}");
        let mut raw: Vec<(u64, GraphPos)> = Vec::new();
        for entry in &self.minimizers {
            let locs = &self.locations[entry.loc_start as usize..][..entry.loc_count as usize];
            for &loc in locs {
                let linear = graph
                    .linear_pos(loc)
                    .expect("index location must resolve against its own graph");
                let owner = boundaries[1..boundaries.len() - 1]
                    .partition_point(|&b| b <= linear)
                    .min(shards - 1);
                if owner == shard {
                    raw.push((entry.hash, loc));
                }
            }
        }
        Self::from_raw(self.scheme, self.bucket_bits, raw)
    }

    /// Incrementally maintains the index across a graph delta: carried
    /// nodes keep their already-extracted minimizers (only the node id is
    /// translated), fresh nodes are re-extracted, dropped nodes' entries
    /// die — **no minimizer outside the touched ranges is re-hashed**.
    ///
    /// `self` must be the index of `old_graph`, and `log` the
    /// [`ChangeLog`] mapping `old_graph` to `new_graph`. The result is
    /// byte-identical to `GraphIndex::build(new_graph, ...)` because
    /// minimizers never cross node boundaries (a content-identical node
    /// yields the identical minimizer set) and the carried-node mapping is
    /// monotone (the carried entry stream stays sorted, so the merge with
    /// the freshly extracted stream needs no global re-sort).
    pub fn apply_delta(
        &self,
        old_graph: &GenomeGraph,
        new_graph: &GenomeGraph,
        log: &ChangeLog,
    ) -> (GraphIndex, DeltaStats) {
        let bucket_count = 1u64 << self.bucket_bits;
        let key = |hash: u64, pos: GraphPos| (hash % bucket_count, hash, pos);
        let carried_map = log.carried_map(old_graph.node_count());

        // Carried stream: walk the old index in its own (bucket, hash,
        // location) order, translating node ids. Monotone carried maps
        // preserve the order; the debug assert in `from_sorted` guards it.
        let mut stats = DeltaStats::default();
        let mut carried: Vec<(u64, GraphPos)> = Vec::with_capacity(self.locations.len());
        for entry in &self.minimizers {
            let locs = &self.locations[entry.loc_start as usize..][..entry.loc_count as usize];
            for &loc in locs {
                match carried_map[loc.node.index()] {
                    Some(new_node) => {
                        carried.push((entry.hash, GraphPos::new(new_node, loc.offset)));
                        stats.carried_locations += 1;
                    }
                    None => stats.dropped_locations += 1,
                }
            }
        }

        // Fresh stream: extract only the nodes the delta created.
        let mut fresh: Vec<(u64, GraphPos)> = Vec::new();
        for &node in &log.fresh {
            let seq = new_graph.seq(node);
            stats.extracted_chars += seq.len() as u64;
            for m in extract_minimizers_from(seq.as_slice(), &self.scheme) {
                fresh.push((m.rank, GraphPos::new(node, m.pos)));
            }
        }
        stats.extracted_locations = fresh.len();
        stats.carried_nodes = log.carried.len();
        stats.fresh_nodes = log.fresh.len();
        fresh.sort_by_key(|&(hash, pos)| key(hash, pos));

        // Two-pointer merge of the two sorted streams.
        let mut merged: Vec<(u64, GraphPos)> = Vec::with_capacity(carried.len() + fresh.len());
        let (mut i, mut j) = (0, 0);
        while i < carried.len() && j < fresh.len() {
            if key(carried[i].0, carried[i].1) <= key(fresh[j].0, fresh[j].1) {
                merged.push(carried[i]);
                i += 1;
            } else {
                merged.push(fresh[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&carried[i..]);
        merged.extend_from_slice(&fresh[j..]);

        (
            Self::from_sorted(self.scheme, self.bucket_bits, merged),
            stats,
        )
    }

    /// The per-minimizer occurrence counts (used to derive the frequency
    /// filter threshold).
    pub fn frequencies(&self) -> impl Iterator<Item = u32> + '_ {
        self.minimizers.iter().map(|e| e.loc_count)
    }

    /// Translates every location's node id through `map`, preserving the
    /// index structure byte-for-byte otherwise. Returns `None` when a
    /// location's node is unmapped or the translation would perturb the
    /// in-entry location order — callers treat that as "rebuild instead".
    ///
    /// This is the clean-shard path of the sharded delta swap: a shard
    /// whose coordinate range the delta never touched holds only carried
    /// nodes, so its slice survives with nothing but an id translation
    /// (no re-extraction, no re-sort, no re-partition).
    pub fn remap_nodes(&self, map: &[Option<NodeId>]) -> Option<GraphIndex> {
        let mut locations = Vec::with_capacity(self.locations.len());
        for entry in &self.minimizers {
            let slice = &self.locations[entry.loc_start as usize..][..entry.loc_count as usize];
            let start = locations.len();
            for loc in slice {
                let new_node = *map.get(loc.node.index())?;
                locations.push(GraphPos::new(new_node?, loc.offset));
            }
            if locations[start..].windows(2).any(|w| w[0] > w[1]) {
                return None;
            }
        }
        Some(GraphIndex {
            scheme: self.scheme,
            bucket_bits: self.bucket_bits,
            bucket_starts: self.bucket_starts.clone(),
            minimizers: self.minimizers.clone(),
            locations,
        })
    }

    /// Whether `map` is the identity over every node this index touches —
    /// when true, [`Self::remap_nodes`] would return a clone and the
    /// caller can share the existing structure instead.
    pub fn remap_is_identity(&self, map: &[Option<NodeId>]) -> bool {
        self.locations
            .iter()
            .all(|loc| map.get(loc.node.index()).copied().flatten() == Some(loc.node))
    }

    /// Byte footprint at this index's own bucket count.
    pub fn footprint(&self) -> IndexFootprint {
        self.footprint_with_buckets(self.bucket_bits)
    }

    /// Byte footprint of the same minimizer content under a different
    /// bucket count — the Figure 7 sweep.
    pub fn footprint_with_buckets(&self, bucket_bits: u32) -> IndexFootprint {
        IndexFootprint {
            bucket_bits,
            bucket_bytes: (1u64 << bucket_bits) * BUCKET_ENTRY_BYTES,
            minimizer_bytes: self.minimizers.len() as u64 * MINIMIZER_ENTRY_BYTES,
            location_bytes: self.locations.len() as u64 * LOCATION_ENTRY_BYTES,
            max_minimizers_per_bucket: self.max_bucket_load(bucket_bits),
        }
    }

    /// Maximum number of distinct minimizers hashing to one bucket under a
    /// hypothetical bucket count (right axis of Figure 7).
    fn max_bucket_load(&self, bucket_bits: u32) -> usize {
        let mut loads: HashMap<u64, usize> = HashMap::new();
        let buckets = 1u64 << bucket_bits;
        for e in &self.minimizers {
            *loads.entry(e.hash % buckets).or_insert(0) += 1;
        }
        loads.values().copied().max().unwrap_or(0)
    }
}

/// Equal-width coordinate cut points for `shards` shards over a graph of
/// `total_chars` linear characters: `shards + 1` ascending boundaries with
/// the remainder spread over the leading shards, suitable for
/// [`GraphIndex::split_by_ranges`].
///
/// Degenerate requests are clamped: asking for more shards than there are
/// characters would force duplicate boundaries (silently empty shards), so
/// the effective shard count is `min(shards, max(total_chars, 1))` and the
/// returned vector may be shorter than `shards + 1`. Callers that must
/// honor the requested count exactly should compare `len() - 1` against it
/// (the CLI warns on this).
///
/// # Panics
///
/// Panics when `shards` is zero.
pub fn shard_boundaries(total_chars: u64, shards: usize) -> Vec<u64> {
    assert!(shards > 0, "at least one shard");
    let shards = (shards as u64).min(total_chars.max(1));
    // boundary[s] = base·s + min(s, rem) is the overflow-safe split;
    // the naive `total_chars * s / shards` overflows u64 once
    // total_chars × shards exceeds 2^64 (human-scale totals at high
    // shard counts).
    let base = total_chars / shards;
    let rem = total_chars % shards;
    (0..=shards).map(|s| base * s + s.min(rem)).collect()
}

/// Work accounting for one [`GraphIndex::apply_delta`] call — the proof
/// that the update re-extracted only the touched ranges (surfaced by
/// `segram index update`'s report and asserted in CI).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Old-index locations carried over with only a node-id translation.
    pub carried_locations: usize,
    /// Old-index locations discarded with their dropped nodes.
    pub dropped_locations: usize,
    /// Locations extracted fresh from the delta's new nodes.
    pub extracted_locations: usize,
    /// Characters the minimizer extractor actually re-scanned.
    pub extracted_chars: u64,
    /// Nodes whose index entries carried over.
    pub carried_nodes: usize,
    /// Nodes extracted from scratch.
    pub fresh_nodes: usize,
}

/// Byte footprint of the index (Figure 7's left axis) plus the bucket-load
/// metric (right axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexFootprint {
    /// `log2` bucket count this footprint was computed for.
    pub bucket_bits: u32,
    /// First-level bytes: `2^bits * 4 B`.
    pub bucket_bytes: u64,
    /// Second-level bytes: `#distinct minimizers * 12 B`.
    pub minimizer_bytes: u64,
    /// Third-level bytes: `#locations * 8 B`.
    pub location_bytes: u64,
    /// Maximum number of minimizers in any one bucket.
    pub max_minimizers_per_bucket: usize,
}

impl IndexFootprint {
    /// Total bytes across all three levels.
    pub fn total_bytes(&self) -> u64 {
        self.bucket_bytes + self.minimizer_bytes + self.location_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimizer::extract_minimizers;
    use segram_graph::{build_graph, linear_graph, Variant};
    use segram_graph::{DnaSeq, GenomeGraph};

    fn lcg_seq(len: usize, seed: u64) -> DnaSeq {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                segram_graph::Base::from_code_masked((state >> 33) as u8)
            })
            .collect()
    }

    fn test_graph() -> GenomeGraph {
        let reference = lcg_seq(5000, 3);
        build_graph(
            &reference,
            (0..20)
                .map(|i| Variant::snp(i * 230 + 7, reference[(i * 230 + 7) as usize].complement()))
                .collect(),
        )
        .unwrap()
        .graph
    }

    #[test]
    fn every_extracted_minimizer_is_queryable() {
        let graph = test_graph();
        let scheme = MinimizerScheme::new(5, 11);
        let index = GraphIndex::build(&graph, scheme, 12);
        for node in graph.node_ids() {
            for m in extract_minimizers(graph.seq(node), &scheme) {
                let locs = index.lookup(&m);
                assert!(
                    locs.contains(&GraphPos::new(node, m.pos)),
                    "minimizer at {node}:{} missing",
                    m.pos
                );
                assert_eq!(index.frequency(m.rank) as usize, locs.len());
            }
        }
    }

    #[test]
    fn queries_return_exactly_linear_scan_results() {
        let graph = test_graph();
        let scheme = MinimizerScheme::new(5, 11);
        let index = GraphIndex::build(&graph, scheme, 8);
        // Brute-force collection of all (hash -> positions).
        let mut expected: HashMap<u64, Vec<GraphPos>> = HashMap::new();
        for node in graph.node_ids() {
            for m in extract_minimizers(graph.seq(node), &scheme) {
                expected
                    .entry(m.rank)
                    .or_default()
                    .push(GraphPos::new(node, m.pos));
            }
        }
        for (hash, mut positions) in expected {
            positions.sort();
            positions.dedup();
            let mut got = index.locations(hash).to_vec();
            got.sort();
            got.dedup();
            assert_eq!(got, positions, "hash {hash}");
        }
    }

    #[test]
    fn absent_minimizer_yields_empty() {
        let graph = linear_graph(&lcg_seq(300, 9), 64).unwrap();
        let index = GraphIndex::build(&graph, MinimizerScheme::new(4, 13), 10);
        assert_eq!(index.frequency(u64::MAX / 3), 0);
        assert!(index.locations(u64::MAX / 3).is_empty());
    }

    #[test]
    fn footprint_formulas_match_paper() {
        let graph = test_graph();
        let index = GraphIndex::build(&graph, MinimizerScheme::new(5, 11), 12);
        let fp = index.footprint();
        assert_eq!(fp.bucket_bytes, (1 << 12) * 4);
        assert_eq!(fp.minimizer_bytes, index.distinct_minimizers() as u64 * 12);
        assert_eq!(fp.location_bytes, index.total_locations() as u64 * 8);
        assert_eq!(
            fp.total_bytes(),
            fp.bucket_bytes + fp.minimizer_bytes + fp.location_bytes
        );
    }

    #[test]
    fn figure7_tradeoff_direction() {
        // Fewer buckets -> smaller footprint but higher max bucket load.
        let graph = test_graph();
        let index = GraphIndex::build(&graph, MinimizerScheme::new(5, 11), 16);
        let small = index.footprint_with_buckets(6);
        let large = index.footprint_with_buckets(16);
        assert!(small.total_bytes() < large.total_bytes());
        assert!(small.max_minimizers_per_bucket >= large.max_minimizers_per_bucket);
    }

    #[test]
    fn human_scale_footprint_extrapolation() {
        // Paper: 2^24 buckets + human-genome minimizer counts -> 9.8 GB.
        // With ~540 M distinct minimizers and ~740 M locations:
        let total = (1u64 << 24) * BUCKET_ENTRY_BYTES
            + 540_000_000 * MINIMIZER_ENTRY_BYTES
            + 400_000_000 * LOCATION_ENTRY_BYTES;
        let gb = total as f64 / 1e9;
        assert!((8.0..11.0).contains(&gb), "got {gb} GB");
    }

    #[test]
    fn shard_boundaries_cover_and_ascend() {
        for shards in [1usize, 2, 3, 4, 7] {
            let bounds = shard_boundaries(10_007, shards);
            assert_eq!(bounds.len(), shards + 1);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), 10_007);
            assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        }
        // Human-scale totals at high shard counts used to overflow the
        // naive `total * s / shards` computation; the widths must still be
        // within one character of each other.
        for total in [3_100_000_000u64, u64::MAX / 2, u64::MAX] {
            for shards in [64usize, 1024, 4096] {
                let bounds = shard_boundaries(total, shards);
                assert_eq!(bounds.len(), shards + 1, "total {total} × {shards}");
                assert_eq!(bounds[0], 0);
                assert_eq!(*bounds.last().unwrap(), total);
                assert!(bounds.windows(2).all(|w| w[0] < w[1]));
                let widths: Vec<u64> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
                let (min, max) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
                assert!(max - min <= 1, "uneven split: {min}..{max}");
            }
        }
        // More shards than characters is clamped rather than producing
        // duplicate boundaries (silently empty shards).
        for (total, shards) in [(5u64, 8usize), (1, 4), (0, 3)] {
            let bounds = shard_boundaries(total, shards);
            assert_eq!(bounds.len() as u64, total.max(1).min(shards as u64) + 1);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), total);
            if total > 0 {
                assert!(
                    bounds.windows(2).all(|w| w[0] < w[1]),
                    "no empty shard for total {total} × {shards}: {bounds:?}"
                );
            }
        }
    }

    #[test]
    fn split_by_ranges_partitions_every_location() {
        let graph = test_graph();
        let scheme = MinimizerScheme::new(5, 11);
        let index = GraphIndex::build(&graph, scheme, 10);
        for shard_count in [1usize, 2, 4] {
            let bounds = shard_boundaries(graph.total_chars(), shard_count);
            let shards = index.split_by_ranges(&graph, &bounds);
            assert_eq!(shards.len(), shard_count);
            let total: usize = shards.iter().map(GraphIndex::total_locations).sum();
            assert_eq!(total, index.total_locations());
            // Every shard location sits inside its coordinate range, and
            // per-minimizer shard frequencies sum to the global frequency.
            for (s, shard) in shards.iter().enumerate() {
                for e in &shard.minimizers {
                    let locs = &shard.locations[e.loc_start as usize..][..e.loc_count as usize];
                    for &loc in locs {
                        let linear = graph.linear_pos(loc).unwrap();
                        assert!(
                            bounds[s] <= linear && linear < bounds[s + 1].max(bounds[s] + 1),
                            "location {linear} escaped shard {s} {:?}",
                            (bounds[s], bounds[s + 1])
                        );
                    }
                }
            }
            for e in &index.minimizers {
                let summed: u32 = shards.iter().map(|s| s.frequency(e.hash)).sum();
                assert_eq!(summed, index.frequency(e.hash), "hash {}", e.hash);
                let mut merged: Vec<GraphPos> = shards
                    .iter()
                    .flat_map(|s| s.locations(e.hash).iter().copied())
                    .collect();
                merged.sort();
                let mut expected = index.locations(e.hash).to_vec();
                expected.sort();
                assert_eq!(merged, expected);
            }
        }
    }

    #[test]
    fn multiple_occurrences_grouped_and_sorted() {
        // A repeated segment guarantees repeated minimizers.
        let unit = lcg_seq(60, 4).to_string();
        let text: DnaSeq = format!("{unit}{}{unit}", lcg_seq(40, 5)).parse().unwrap();
        let graph = linear_graph(&text, text.len()).unwrap(); // single node
        let scheme = MinimizerScheme::new(4, 9);
        let index = GraphIndex::build(&graph, scheme, 8);
        let repeated: Vec<u32> = index.frequencies().filter(|&f| f >= 2).collect();
        assert!(!repeated.is_empty(), "repeat should duplicate minimizers");
        for e in &index.minimizers {
            let locs = &index.locations[e.loc_start as usize..][..e.loc_count as usize];
            assert!(locs.windows(2).all(|w| w[0] <= w[1]), "locations sorted");
        }
    }
}
