//! The end-to-end SeGraM mapper: MinSeed seeding + BitAlign alignment
//! (the "End-to-End Mapping" use case of Section 9), for both
//! sequence-to-graph and sequence-to-sequence mapping, short and long
//! reads.
//!
//! Since the stage-based refactor, [`SegramMapper`] is a thin facade: it
//! owns the graph, the index, and the configuration, and wires the
//! default stage implementations into a
//! [`MapPipeline`](crate::pipeline::MapPipeline), which hosts the actual
//! seeding → prefilter → alignment flow. Batched multi-threaded mapping
//! lives in [`MapEngine`](crate::pipeline::MapEngine).

use std::sync::Arc;
use std::time::Duration;

use segram_align::{AlignError, Alignment};
use segram_graph::{linear_graph, DnaSeq, GenomeGraph, GraphError, GraphPos, LinearizedGraph};
use segram_index::{frequency_threshold, GraphIndex, MinSeedConfig, SeedRegion};

use crate::config::SegramConfig;
use crate::pipeline::{Aligner, BitAlignStage, MapPipeline, MinSeedStage, Seeder, SpecPrefilter};

/// Anything that can map one read end to end: the abstraction
/// [`MapEngine`](crate::pipeline::MapEngine) drives, implemented by the
/// monolithic [`SegramMapper`] and the coordinate-range
/// [`ShardedIndex`](crate::ShardedIndex). Implementations must be `Sync`
/// because the engine shares one mapper across its worker threads.
pub trait ReadMapper: Sync {
    /// The reference graph mappings refer to (SAM/GAF rendering needs it).
    fn graph(&self) -> &GenomeGraph;

    /// Short stable identifier of the backend this mapper implements
    /// (`"segram"`, `"graphaligner"`, `"vg"`, `"hga"`), threaded into
    /// [`EngineReport`](crate::EngineReport) and the `eval compare` table
    /// so every measurement names the mapper that produced it. The default
    /// is the native SeGraM pipeline.
    fn backend_name(&self) -> &'static str {
        "segram"
    }

    /// Maps one read end to end; returns the best mapping (fewest edits,
    /// then leftmost) and the per-stage pipeline statistics.
    fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats);

    /// Maps a read trying both strands, returning the better mapping and
    /// the strand it mapped on.
    fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, segram_sim::Strand)>, MapStats);
}

/// Merges a forward-strand and a reverse-complement mapping attempt into
/// the better of the two (fewest edits; **forward wins ties**) and the
/// strand it mapped on. Every both-strand mapper shares this exact
/// tie-break so outputs stay comparable across backends.
pub(crate) fn better_stranded(
    forward: Option<Mapping>,
    reverse: Option<Mapping>,
) -> Option<(Mapping, segram_sim::Strand)> {
    use segram_sim::Strand;
    match (forward, reverse) {
        (Some(f), Some(r)) => {
            if f.alignment.edit_distance <= r.alignment.edit_distance {
                Some((f, Strand::Forward))
            } else {
                Some((r, Strand::Reverse))
            }
        }
        (Some(f), None) => Some((f, Strand::Forward)),
        (None, Some(r)) => Some((r, Strand::Reverse)),
        (None, None) => None,
    }
}

/// A completed read mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// The winning alignment.
    pub alignment: Alignment,
    /// The candidate region it came from.
    pub region: SeedRegion,
    /// Graph position of the alignment's first consumed character.
    pub start: GraphPos,
    /// Linear coordinate of the alignment's first consumed character.
    pub linear_start: u64,
    /// Graph provenance of every consumed reference character, in path
    /// order (the input for GAF output, where the node path is explicit).
    pub path: Vec<GraphPos>,
}

/// Per-read pipeline statistics (times + counts), the instrumentation the
/// Section 3 observations and Section 11.4 analysis are based on.
#[derive(Clone, Copy, Debug, Default)]
pub struct MapStats {
    /// Time spent decoding the read from its raw transport bytes (zero
    /// outside the engine's overlapped input path, where FASTQ parsing
    /// runs in the worker stage ahead of seeding). Transport work, not
    /// mapping work: reported separately and excluded from
    /// [`total_time`](Self::total_time) /
    /// [`alignment_fraction`](Self::alignment_fraction).
    pub decode: Duration,
    /// Time spent inflating compressed input blocks (zero on plain
    /// input; on BGZF input the engine's workers inflate ahead of FASTQ
    /// decode). Transport work like [`decode`](Self::decode): reported
    /// separately and excluded from [`total_time`](Self::total_time) /
    /// [`alignment_fraction`](Self::alignment_fraction).
    pub inflate: Duration,
    /// Time spent in the seeding step.
    pub seeding: Duration,
    /// Time spent in the optional pre-alignment filter step (zero when
    /// [`SegramConfig::prefilter`](crate::SegramConfig) is `None`).
    pub filtering: Duration,
    /// Time spent in the alignment step (region extraction + BitAlign,
    /// excluding pre-alignment filtering).
    pub alignment: Duration,
    /// Minimizers extracted.
    pub minimizers: usize,
    /// Minimizers discarded by the frequency filter.
    pub filtered_minimizers: usize,
    /// Seed locations fetched.
    pub seed_locations: usize,
    /// Candidate regions aligned.
    pub regions_aligned: usize,
    /// Candidate regions rejected by the optional pre-alignment filter
    /// before reaching BitAlign (always 0 when
    /// [`SegramConfig::prefilter`](crate::SegramConfig) is `None`).
    pub regions_filtered: usize,
    /// Sum of aligned region lengths (for workload measurement).
    pub total_region_len: u64,
}

impl MapStats {
    /// Merges another read's stats into an aggregate.
    pub fn merge(&mut self, other: &MapStats) {
        self.decode += other.decode;
        self.inflate += other.inflate;
        self.seeding += other.seeding;
        self.filtering += other.filtering;
        self.alignment += other.alignment;
        self.minimizers += other.minimizers;
        self.filtered_minimizers += other.filtered_minimizers;
        self.seed_locations += other.seed_locations;
        self.regions_aligned += other.regions_aligned;
        self.regions_filtered += other.regions_filtered;
        self.total_region_len += other.total_region_len;
    }

    /// Total *mapping* pipeline time: seeding + filtering + alignment.
    /// [`decode`](Self::decode) is transport time and deliberately not
    /// included, so enabling the overlapped input path does not shift
    /// the Observation 1 stage fractions.
    pub fn total_time(&self) -> Duration {
        self.seeding + self.filtering + self.alignment
    }

    /// Fraction of pipeline time spent in alignment (Observation 1
    /// metric). Pre-alignment filtering counts toward the denominator but
    /// not toward alignment, so enabling a filter visibly *lowers* this
    /// fraction instead of silently inflating it.
    pub fn alignment_fraction(&self) -> f64 {
        let total = self.total_time().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.alignment.as_secs_f64() / total
    }
}

/// The SeGraM mapper bound to one reference graph.
///
/// # Examples
///
/// ```
/// use segram_core::{SegramConfig, SegramMapper};
/// use segram_sim::DatasetConfig;
///
/// let dataset = DatasetConfig::tiny(3).illumina(100);
/// let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
/// let read = &dataset.reads[0];
/// let (mapping, _stats) = mapper.map_read(&read.seq);
/// let mapping = mapping.expect("simulated read must map");
/// // The mapping lands near the read's true origin.
/// let err = mapping.linear_start.abs_diff(read.true_start_linear);
/// assert!(err < 50, "mapped {} vs true {}", mapping.linear_start, read.true_start_linear);
/// ```
#[derive(Debug)]
pub struct SegramMapper {
    /// Shared so N coordinate-range shards (each with its own index slice)
    /// can reference one graph without cloning it per shard.
    graph: Arc<GenomeGraph>,
    index: GraphIndex,
    config: SegramConfig,
    freq_threshold: u32,
}

impl SegramMapper {
    /// Builds the mapper: indexes the graph and derives the frequency
    /// threshold (the two pre-processing steps of Section 5).
    pub fn new(graph: GenomeGraph, config: SegramConfig) -> Self {
        let graph = Arc::new(graph);
        let index = GraphIndex::build(&graph, config.scheme, config.bucket_bits);
        let freq_threshold = frequency_threshold(&index, config.discard_frac);
        Self {
            graph,
            index,
            config,
            freq_threshold,
        }
    }

    /// Assembles a mapper from pre-built parts: a shared graph, an index
    /// over (a slice of) it, and an externally derived frequency
    /// threshold. This is how [`ShardedIndex`](crate::ShardedIndex)
    /// constructs its per-shard mappers — each shard's index covers only
    /// its coordinate range, while the frequency threshold stays the
    /// *global* one so shard-local mapping agrees with the monolithic
    /// filter decisions.
    pub fn from_parts(
        graph: Arc<GenomeGraph>,
        index: GraphIndex,
        config: SegramConfig,
        freq_threshold: u32,
    ) -> Self {
        Self {
            graph,
            index,
            config,
            freq_threshold,
        }
    }

    /// The shared handle to the reference graph (cheap to clone; used to
    /// build further mappers over the same graph).
    pub fn shared_graph(&self) -> Arc<GenomeGraph> {
        Arc::clone(&self.graph)
    }

    /// Builds a sequence-to-sequence mapper from a linear reference
    /// (Section 9: S2S mapping is the single-successor special case).
    ///
    /// # Errors
    ///
    /// Returns an error when the reference is empty.
    pub fn new_linear(reference: &DnaSeq, config: SegramConfig) -> Result<Self, GraphError> {
        let graph = linear_graph(reference, 4096)?;
        Ok(Self::new(graph, config))
    }

    /// The reference graph.
    pub fn graph(&self) -> &GenomeGraph {
        self.graph.as_ref()
    }

    /// The hash-table index.
    pub fn index(&self) -> &GraphIndex {
        &self.index
    }

    /// The configuration.
    pub fn config(&self) -> &SegramConfig {
        &self.config
    }

    /// The derived frequency-filter threshold.
    pub fn freq_threshold(&self) -> u32 {
        self.freq_threshold
    }

    /// Assembles the default stage pipeline over this mapper's graph,
    /// index, and configuration. All mapping entry points below are thin
    /// wrappers over the pipeline this returns.
    pub fn pipeline(&self) -> MapPipeline<'_, MinSeedStage<'_>, SpecPrefilter, BitAlignStage> {
        MapPipeline::new(
            self.graph.as_ref(),
            MinSeedStage::new(
                self.graph.as_ref(),
                &self.index,
                MinSeedConfig {
                    error_rate: self.config.error_rate,
                    frequency_threshold: self.freq_threshold,
                },
            ),
            SpecPrefilter::new(self.config.prefilter),
            BitAlignStage::new(&self.config),
            self.config,
        )
    }

    /// Runs the seeding step only (the "Seeding" use case of Section 9).
    pub fn seed(&self, read: &DnaSeq) -> segram_index::SeedingResult {
        self.pipeline().seeder().seed(read)
    }

    /// Aligns a read against one already-extracted subgraph (the
    /// "Alignment" use case of Section 9) with this mapper's thresholds.
    ///
    /// # Errors
    ///
    /// Propagates alignment errors (e.g. threshold exceeded).
    pub fn align_region(
        &self,
        lin: &LinearizedGraph,
        read: &DnaSeq,
    ) -> Result<Alignment, AlignError> {
        BitAlignStage::new(&self.config).align(lin, read)
    }

    /// Maps one read end to end; returns the best mapping (fewest edits,
    /// then leftmost) and the pipeline statistics.
    pub fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
        self.pipeline().map_read(read)
    }

    /// Maps a read trying **both strands** (the read as given and its
    /// reverse complement), returning the better mapping and the strand it
    /// mapped on.
    pub fn map_read_both(
        &self,
        read: &DnaSeq,
    ) -> (Option<(Mapping, segram_sim::Strand)>, MapStats) {
        self.pipeline().map_read_both(read)
    }

    /// Maps a batch of reads serially, returning per-read mappings and the
    /// aggregated statistics. For multi-threaded batches use
    /// [`MapEngine`](crate::pipeline::MapEngine).
    pub fn map_all<'r>(
        &self,
        reads: impl IntoIterator<Item = &'r DnaSeq>,
    ) -> (Vec<Option<Mapping>>, MapStats) {
        let pipeline = self.pipeline();
        let mut aggregate = MapStats::default();
        let mut out = Vec::new();
        for read in reads {
            let (mapping, stats) = pipeline.map_read(read);
            aggregate.merge(&stats);
            out.push(mapping);
        }
        (out, aggregate)
    }
}

impl ReadMapper for SegramMapper {
    fn graph(&self) -> &GenomeGraph {
        SegramMapper::graph(self)
    }

    fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
        SegramMapper::map_read(self, read)
    }

    fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, segram_sim::Strand)>, MapStats) {
        SegramMapper::map_read_both(self, read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_sim::{DatasetConfig, ErrorProfile, ReadConfig};

    #[test]
    fn short_reads_map_accurately() {
        let dataset = DatasetConfig::tiny(31).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let mut mapped = 0usize;
        let mut near_truth = 0usize;
        for read in &dataset.reads {
            let (mapping, _) = mapper.map_read(&read.seq);
            if let Some(m) = mapping {
                mapped += 1;
                if m.linear_start.abs_diff(read.true_start_linear) < 100 {
                    near_truth += 1;
                }
            }
        }
        assert!(mapped >= dataset.reads.len() * 9 / 10, "mapped {mapped}");
        assert!(
            near_truth * 10 >= mapped * 9,
            "near {near_truth} of {mapped}"
        );
    }

    #[test]
    fn long_noisy_reads_map() {
        let dataset = {
            let mut c = DatasetConfig::tiny(33);
            c.read_count = 5;
            c.long_read_len = 1500;
            c
        }
        .pacbio_5();
        // Cap the candidate regions: unlimited (the default) aligns every
        // seeded region — hundreds per 1.5 kbp read — which is the
        // ablation binaries' job, not this smoke test's.
        let mut config = SegramConfig::long_reads(0.05);
        config.max_regions = 16;
        let mapper = SegramMapper::new(dataset.graph().clone(), config);
        let mut hits = 0;
        for read in &dataset.reads {
            let (mapping, stats) = mapper.map_read(&read.seq);
            assert!(stats.minimizers > 0);
            if let Some(m) = mapping {
                if m.linear_start.abs_diff(read.true_start_linear) < 200 {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 4, "only {hits}/5 long reads mapped near truth");
    }

    #[test]
    fn s2s_mode_maps_against_linear_reference() {
        let reference =
            segram_sim::generate_reference(&segram_sim::GenomeConfig::human_like(20_000, 55));
        let mapper = SegramMapper::new_linear(&reference, SegramConfig::short_reads()).unwrap();
        // Every node of the linear graph has at most one successor.
        for node in mapper.graph().node_ids() {
            assert!(mapper.graph().successors(node).len() <= 1);
        }
        let read = reference.slice(5000, 5100);
        let (mapping, _) = mapper.map_read(&read);
        let m = mapping.expect("exact read must map");
        assert_eq!(m.alignment.edit_distance, 0);
        assert_eq!(m.linear_start, 5000);
    }

    #[test]
    fn early_exit_reduces_alignments() {
        let dataset = DatasetConfig::tiny(37).illumina(150);
        let mut eager = SegramConfig::short_reads();
        eager.early_exit_edits = 3;
        let lazy_mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let eager_mapper = SegramMapper::new(dataset.graph().clone(), eager);
        let read = &dataset.reads[0].seq;
        let (_, lazy_stats) = lazy_mapper.map_read(read);
        let (_, eager_stats) = eager_mapper.map_read(read);
        assert!(eager_stats.regions_aligned <= lazy_stats.regions_aligned);
    }

    #[test]
    fn unmappable_read_returns_none() {
        let dataset = DatasetConfig::tiny(39).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        // A read from a *different* genome seed: overwhelmingly unlikely to
        // share full-length matches.
        let alien = segram_sim::simulate_reads(
            &segram_graph::linear_graph(
                &segram_sim::generate_reference(&segram_sim::GenomeConfig::human_like(5_000, 999)),
                4096,
            )
            .unwrap(),
            &ReadConfig {
                count: 1,
                len: 100,
                errors: ErrorProfile::perfect(),
                seed: 1000,
            },
        );
        let (mapping, _) = mapper.map_read(&alien[0].seq);
        if let Some(m) = mapping {
            // If anything maps it must be a poor alignment, not a fake exact hit.
            assert!(m.alignment.edit_distance > 5);
        }
    }

    #[test]
    fn both_strand_mapping_recovers_reverse_reads() {
        let dataset = DatasetConfig::tiny(43).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let stranded = segram_sim::simulate_stranded_reads(
            dataset.graph(),
            &ReadConfig::short_reads(20, 100, 44),
            1.0, // all reverse
        );
        let mut forward_only_hits = 0usize;
        let mut both_hits = 0usize;
        for read in &stranded {
            if let (Some(m), _) = mapper.map_read(&read.seq) {
                if m.linear_start.abs_diff(read.true_start_linear) < 100
                    && m.alignment.edit_distance < 10
                {
                    forward_only_hits += 1;
                }
            }
            if let (Some((m, strand)), _) = mapper.map_read_both(&read.seq) {
                if m.linear_start.abs_diff(read.true_start_linear) < 100
                    && m.alignment.edit_distance < 10
                {
                    both_hits += 1;
                    assert_eq!(strand, segram_sim::Strand::Reverse);
                }
            }
        }
        // Forward-only mapping misses reverse-strand reads almost always;
        // both-strand mapping recovers them.
        assert!(both_hits >= 16, "both-strand hits {both_hits}");
        assert!(
            forward_only_hits < both_hits / 2,
            "forward-only {forward_only_hits} vs both {both_hits}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let dataset = DatasetConfig::tiny(41).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let reads: Vec<&DnaSeq> = dataset.reads.iter().map(|r| &r.seq).take(5).collect();
        let (mappings, stats) = mapper.map_all(reads);
        assert_eq!(mappings.len(), 5);
        assert!(stats.minimizers > 0);
        assert!(stats.alignment_fraction() > 0.0);
    }

    #[test]
    fn filtering_time_is_tracked_and_bounded() {
        let dataset = DatasetConfig::tiny(45).illumina(100);
        let filtered_config =
            SegramConfig::short_reads().with_prefilter(segram_filter::FilterSpec::cascade());
        let plain = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let filtered = SegramMapper::new(dataset.graph().clone(), filtered_config);
        let read = &dataset.reads[0].seq;
        let (_, plain_stats) = plain.map_read(read);
        assert_eq!(plain_stats.filtering, Duration::ZERO);
        let (_, filtered_stats) = filtered.map_read(read);
        assert!(filtered_stats.filtering > Duration::ZERO);
        // The fraction denominator includes all three stages.
        let total = filtered_stats.total_time();
        assert_eq!(
            total,
            filtered_stats.seeding + filtered_stats.filtering + filtered_stats.alignment
        );
        assert!(filtered_stats.alignment_fraction() < 1.0);
    }
}
