//! The shift-envelope membership bound (a sound core of Shifted Hamming
//! Distance).

use segram_graph::{Base, ALPHABET_SIZE};

use crate::EditLowerBound;

/// Bounds edit distance by counting read characters that match *nowhere*
/// inside their shift envelope.
///
/// Shifted Hamming Distance \[Xin+ 2015\] ANDs Hamming masks of the read
/// against the text under every shift in `[-k, +k]`; a set bit in the
/// combined mask is a read character that no shift can match, and each
/// such character must be paid for with a substitution or insertion in
/// any alignment. This implementation keeps exactly that sound core and
/// drops SHD's "speculative removal of short streaks" amendment, which
/// trades soundness for aggressiveness — a trade a mapper that promises
/// no lost mappings cannot make.
///
/// Because SeGraM's candidate regions have a *free* text start (the read
/// may begin anywhere in the region), the envelope is widened from
/// `[-k, +k]` to `[-k, (|text| - |read|) + k]`: a read character `i` can
/// only ever align to text positions in that window around `i`. Membership
/// is answered with per-base prefix sums in `O(|text| + |read|)` instead
/// of materializing one mask per shift.
///
/// # Examples
///
/// ```
/// use segram_filter::{EditLowerBound, ShiftedHammingFilter};
/// use segram_graph::DnaSeq;
///
/// let read: DnaSeq = "ACGT".parse()?;
/// let text: DnaSeq = "TTACGTTT".parse()?;
/// assert_eq!(ShiftedHammingFilter.lower_bound(read.as_slice(), text.as_slice(), 1), 0);
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShiftedHammingFilter;

impl EditLowerBound for ShiftedHammingFilter {
    fn name(&self) -> &'static str {
        "shifted-hamming"
    }

    fn lower_bound(&self, read: &[Base], text: &[Base], k: u32) -> u32 {
        if read.is_empty() {
            return 0;
        }
        let (m, n) = (read.len() as i64, text.len() as i64);
        let k = i64::from(k);
        // Read char i can align to text positions [i + lo, i + hi].
        let lo = -k;
        let hi = (n - m) + k;

        // prefix[b][j] = occurrences of base b in text[..j].
        let mut prefix = vec![[0u32; ALPHABET_SIZE]; text.len() + 1];
        for (j, &b) in text.iter().enumerate() {
            prefix[j + 1] = prefix[j];
            prefix[j + 1][b.code() as usize] += 1;
        }
        let count_in = |b: Base, from: i64, to: i64| -> u32 {
            let from = from.clamp(0, n) as usize;
            let to = to.clamp(0, n) as usize;
            if from >= to {
                return 0;
            }
            prefix[to][b.code() as usize] - prefix[from][b.code() as usize]
        };

        let mut unmatched = 0u32;
        for (i, &b) in read.iter().enumerate() {
            let i = i as i64;
            if count_in(b, i + lo, i + hi + 1) == 0 {
                unmatched += 1;
            }
        }
        unmatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_graph::DnaSeq;

    fn bases(s: &str) -> Vec<Base> {
        s.parse::<DnaSeq>().unwrap().into_bases()
    }

    #[test]
    fn exact_match_anywhere_in_text_is_accepted_at_k0() {
        let read = bases("ACGT");
        for text in ["ACGTTTTT", "TTTTACGT", "TTACGTTT"] {
            let text = bases(text);
            // Free text start: the envelope covers the whole placement range.
            assert_eq!(ShiftedHammingFilter.lower_bound(&read, &text, 0), 0);
        }
    }

    #[test]
    fn characters_outside_every_shift_are_counted() {
        let read = bases("AAAA");
        let text = bases("TTTT");
        assert_eq!(ShiftedHammingFilter.lower_bound(&read, &text, 1), 4);
    }

    #[test]
    fn widening_k_never_increases_the_bound() {
        let read = bases("ACGTGTCA");
        let text = bases("ACGTACGTACGT");
        let mut last = u32::MAX;
        for k in 0..6 {
            let bound = ShiftedHammingFilter.lower_bound(&read, &text, k);
            assert!(bound <= last);
            last = bound;
        }
    }

    #[test]
    fn empty_inputs_are_handled() {
        assert_eq!(ShiftedHammingFilter.lower_bound(&[], &bases("ACGT"), 0), 0);
        assert_eq!(ShiftedHammingFilter.lower_bound(&bases("ACGT"), &[], 0), 4);
    }

    #[test]
    fn single_substitution_bounds_at_most_one() {
        let text = bases("ACGTACGTACGTACGT");
        let mut read = text.clone();
        read[7] = match read[7] {
            Base::A => Base::C,
            _ => Base::A,
        };
        let bound = ShiftedHammingFilter.lower_bound(&read, &text, 2);
        assert!(bound <= 1, "bound {bound} exceeds the single edit");
    }
}
