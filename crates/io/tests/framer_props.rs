//! Differential property tests for the split FASTQ reader: on random
//! FASTQ-shaped inputs — including CRLF line endings, blank separator
//! lines, malformed records, and truncation at an arbitrary byte — the
//! framer + worker-side decode path ([`FastqFramer`] →
//! [`RawFastqRecord::decode`]) produces exactly the records *and* exactly
//! the first error (same variant, same line number) that the inline
//! [`FastqReader`] produces, at every block size. This is the guarantee
//! that lets `segram map` move FASTQ parsing off the producer thread
//! without changing a single output byte or error message.

use segram_io::{Ambiguity, FastqFramer, FastqReader, FastqRecord, RawFastqRecord};
use segram_testkit::prelude::*;

/// Everything observable from reading a stream to its first failure:
/// the records before it and a debug rendering of the error (variant,
/// line number, message — `StreamError` carries no `PartialEq`).
type Outcome = (Vec<FastqRecord>, Option<String>);

fn reader_outcome(bytes: &[u8], ambiguity: Ambiguity) -> Outcome {
    let mut records = Vec::new();
    let mut error = None;
    for item in FastqReader::new(bytes, ambiguity) {
        match item {
            Ok(record) => records.push(record),
            Err(err) => error = Some(format!("{err:?}")), // reader fuses
        }
    }
    (records, error)
}

fn framer_outcome(bytes: &[u8], ambiguity: Ambiguity, block: usize) -> Outcome {
    let mut records = Vec::new();
    let mut error = None;
    for item in FastqFramer::with_block_size(bytes, block) {
        let raw: RawFastqRecord = match item {
            Ok(raw) => raw,
            Err(err) => {
                error = Some(format!("{err:?}"));
                break;
            }
        };
        // Decode errors fuse the consumer exactly as FastqReader fuses
        // itself (the engine cancels the whole run at this point).
        match raw.decode(ambiguity) {
            Ok(record) => records.push(record),
            Err(err) => {
                error = Some(format!("{err:?}"));
                break;
            }
        }
    }
    (records, error)
}

/// One synthesized record's text, with injected quirks.
fn render_record(
    id: &str,
    seq: &str,
    qual_len: usize,
    crlf: bool,
    plus_tail: bool,
    blanks_before: usize,
) -> String {
    let eol = if crlf { "\r\n" } else { "\n" };
    let mut out = String::new();
    for _ in 0..blanks_before {
        out.push_str(eol);
    }
    out.push('@');
    out.push_str(id);
    out.push_str(eol);
    out.push_str(seq);
    out.push_str(eol);
    out.push('+');
    if plus_tail {
        out.push_str(id);
    }
    out.push_str(eol);
    out.push_str(&"I".repeat(qual_len));
    out.push_str(eol);
    out
}

proptest! {
    #[test]
    fn framer_decode_is_byte_identical_to_the_inline_reader(
        entries in prop::collection::vec(
            (
                "[A-Za-z0-9_.-]{1,8}",        // id
                "[ACGTN]{1,40}",              // sequence (N exercises ambiguity)
                0usize..3,                    // quality-length skew
                any::<bool>(),                // CRLF
                any::<bool>(),                // '+' separator tail
                0usize..3,                    // blank lines before the record
            ),
            1..5,
        ),
        truncate_tail in 0usize..20,
        block in prop::sample::select(vec![1usize, 2, 3, 7, 17, 64, 4096]),
        reject in any::<bool>(),
    ) {
        let mut text = String::new();
        for (id, seq, skew, crlf, plus_tail, blanks) in &entries {
            // Skewed quality lengths produce invalid records on purpose.
            let qual_len = seq.len().saturating_sub(*skew).max(1);
            text.push_str(&render_record(id, seq, qual_len, *crlf, *plus_tail, *blanks));
        }
        // Truncate the tail to exercise mid-record end of input.
        let cut = text.len().saturating_sub(truncate_tail);
        let bytes = &text.as_bytes()[..cut];
        let ambiguity = if reject {
            Ambiguity::Reject
        } else {
            Ambiguity::Substitute(segram_graph::Base::A)
        };

        let expected = reader_outcome(bytes, ambiguity);
        let actual = framer_outcome(bytes, ambiguity, block);
        prop_assert_eq!(
            &actual.0, &expected.0,
            "records diverge at block {}", block
        );
        prop_assert_eq!(
            &actual.1, &expected.1,
            "errors diverge at block {}", block
        );
    }

    #[test]
    fn framer_never_panics_on_byte_soup(
        text in "[ -~\r\n]{0,300}",
        block in 1usize..32,
    ) {
        let expected = reader_outcome(text.as_bytes(), Ambiguity::Reject);
        let actual = framer_outcome(text.as_bytes(), Ambiguity::Reject, block);
        prop_assert_eq!(actual, expected);
    }
}
