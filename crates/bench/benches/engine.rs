//! Criterion benchmarks of the batched multi-threaded `MapEngine`: batch
//! throughput at 1/2/4 worker threads (the baseline perf trajectory for
//! the scaling PRs — async IO, region batching) plus the backend matrix
//! (every pluggable backend × thread count through the same engine, the
//! apples-to-apples throughput comparison the paper's evaluation rests
//! on). Sharded-index throughput and load-balance live in
//! `benches/sharding.rs`; these benches run in CI's bench-smoke tier
//! (`SEGRAM_BENCH_SAMPLES`/`SEGRAM_BENCH_JSON`).

use segram_core::{
    sam_record_for, Backend, BackendKind, DecodedBlock, EngineConfig, EngineOptions, MapEngine,
    SegramConfig, SegramMapper,
};
use segram_graph::DnaSeq;
use segram_io::{
    bgzf_compress, write_fastq, Ambiguity, BgzfMode, FastqFramer, FastqRecord, FastqSplice,
    SamWriter,
};
use segram_sim::DatasetConfig;
use segram_testkit::bench::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};

fn bench_engine_batch(c: &mut Criterion) {
    let dataset = DatasetConfig {
        reference_len: 100_000,
        read_count: 32,
        long_read_len: 2_000,
        seed: 171,
    }
    .illumina(150);
    let mut config = SegramConfig::short_reads();
    config.max_regions = 8;
    let mapper = SegramMapper::new(dataset.graph().clone(), config);
    let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();

    let mut group = c.benchmark_group("engine_batch_150bp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    for threads in [1usize, 2, 4] {
        // The same shared builder the CLI's map/serve paths configure
        // their engines with.
        let engine = MapEngine::new(&mapper, EngineOptions::new().threads(threads));
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let (outcomes, report) = engine.map_batch(black_box(&reads));
                black_box((outcomes.len(), report.mapped))
            })
        });
    }
    group.finish();
}

fn bench_backend_matrix(c: &mut Criterion) {
    // A smaller dataset than the engine-batch one: the HGA-like backend
    // runs whole-graph DP per read, so the matrix stays affordable while
    // still ranking the backends' relative throughput.
    let dataset = DatasetConfig {
        reference_len: 20_000,
        read_count: 16,
        long_read_len: 2_000,
        seed: 175,
    }
    .illumina(100);
    let mut config = SegramConfig::short_reads();
    config.max_regions = 8;
    let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();

    let mut group = c.benchmark_group("backend_matrix_100bp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    for kind in BackendKind::ALL {
        let backend = Backend::build(kind, dataset.graph().clone(), config, 1);
        for threads in [1usize, 4] {
            let engine = MapEngine::new(&backend, EngineConfig::with_threads(threads));
            group.bench_function(BenchmarkId::new(kind.name(), format!("t{threads}")), |b| {
                b.iter(|| {
                    let (outcomes, report) = engine.map_batch(black_box(&reads));
                    black_box((outcomes.len(), report.mapped))
                })
            });
        }
    }
    group.finish();
}

fn bench_engine_stream_io(c: &mut Criterion) {
    // The IO-inclusive path `segram map` actually runs: FASTQ bytes ->
    // FastqFramer (producer) -> worker-stage decode -> map -> render ->
    // SAM writer on the dedicated writer thread. Unlike engine_batch —
    // which starts from pre-decoded reads and discards outcomes into a
    // Vec — this measures whether the overlapped design keeps transport
    // work off the mapping workers: on a multi-core host, 1 -> 4 threads
    // should scale near-linearly where the old serial-ends path was flat.
    let dataset = DatasetConfig {
        reference_len: 100_000,
        read_count: 64,
        long_read_len: 2_000,
        seed: 177,
    }
    .illumina(150);
    let mut config = SegramConfig::short_reads();
    config.max_regions = 8;
    let mapper = SegramMapper::new(dataset.graph().clone(), config);
    let total_chars = dataset.graph().total_chars();
    let fastq: Vec<FastqRecord> = dataset
        .reads
        .iter()
        .map(|r| FastqRecord::with_uniform_quality(format!("read{}", r.id), r.seq.clone(), 30))
        .collect();
    let bytes = write_fastq(&fastq).into_bytes();

    let mut group = c.benchmark_group("engine_stream_io_150bp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(fastq.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let mut engine_config = EngineConfig::with_threads(threads);
                // Several batches per worker even at 8 threads: 64 reads
                // in 16 batches of 4, so the measurement is stage overlap,
                // not batch granularity.
                engine_config.batch_size = 4;
                let engine = MapEngine::new(&mapper, engine_config);
                let mut framer = FastqFramer::new(black_box(bytes.as_slice()));
                let raws = std::iter::from_fn(|| match framer.next() {
                    Some(Ok(raw)) => Some(raw),
                    _ => None,
                });
                let mut sam = SamWriter::new(Vec::with_capacity(bytes.len()), "graph", total_chars)
                    .expect("vec write cannot fail");
                let report = engine.map_raw_stream(
                    raws,
                    |raw| raw.decode(Ambiguity::Reject).ok(),
                    |record| &record.seq,
                    |record, outcome| {
                        let rec = sam_record_for(&record.id, &record.seq, &outcome);
                        sam.write_line(&rec.to_sam_line())
                            .expect("vec write cannot fail");
                    },
                );
                black_box((report.reads, sam.records_written()))
            })
        });
    }
    group.finish();
}

fn bench_engine_stream_bgzf(c: &mut Criterion) {
    // The compressed twin of engine_stream_io: the same FASTQ bytes, but
    // BGZF-compressed with the in-tree codec, streamed as the CLI's
    // compressed path runs them — the producer slices members
    // (`BgzfBlocks`), workers inflate + splice + decode ahead of seeding.
    // CI judges this leg on the queue/stall/inflate counters it lands in
    // BENCH_smoke.json, not wall-clock (the smoke host is single-core):
    // the visible claim is that decompression rides the worker stage
    // instead of serializing on the producer.
    let dataset = DatasetConfig {
        reference_len: 100_000,
        read_count: 64,
        long_read_len: 2_000,
        seed: 177,
    }
    .illumina(150);
    let mut config = SegramConfig::short_reads();
    config.max_regions = 8;
    let mapper = SegramMapper::new(dataset.graph().clone(), config);
    let total_chars = dataset.graph().total_chars();
    let fastq: Vec<FastqRecord> = dataset
        .reads
        .iter()
        .map(|r| FastqRecord::with_uniform_quality(format!("read{}", r.id), r.seq.clone(), 30))
        .collect();
    let bytes = write_fastq(&fastq).into_bytes();
    // 4 KiB members: several blocks per batch, records straddling
    // boundaries, and enough DEFLATE work per block to measure.
    let compressed = bgzf_compress(&bytes, 4096, BgzfMode::Fixed);

    let mut group = c.benchmark_group("engine_stream_bgzf_150bp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(fastq.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let mut engine_config = EngineConfig::with_threads(threads);
                engine_config.batch_size = 4;
                let engine = MapEngine::new(&mapper, engine_config);
                let splice = FastqSplice::new();
                let mut blocks = segram_io::BgzfBlocks::new(black_box(compressed.as_slice()));
                let raws = std::iter::from_fn(|| match blocks.next() {
                    Some(Ok(block)) => Some(block),
                    _ => None,
                });
                let mut sam = SamWriter::new(Vec::with_capacity(bytes.len()), "graph", total_chars)
                    .expect("vec write cannot fail");
                let report = engine.map_block_stream(
                    raws,
                    |block| {
                        let started = std::time::Instant::now();
                        let plain = block.inflate().ok()?;
                        let raws =
                            splice.splice(block.index(), &plain, block.is_last(), || false)?;
                        let inflate = started.elapsed();
                        let mut items = Vec::with_capacity(raws.len());
                        for raw in raws {
                            items.push(raw.decode(Ambiguity::Reject).ok()?);
                        }
                        Some(DecodedBlock { items, inflate })
                    },
                    |record| &record.seq,
                    |record, outcome| {
                        let rec = sam_record_for(&record.id, &record.seq, &outcome);
                        sam.write_line(&rec.to_sam_line())
                            .expect("vec write cannot fail");
                    },
                );
                black_box((report.reads, report.stats.inflate, sam.records_written()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_batch,
    bench_engine_stream_io,
    bench_engine_stream_bgzf,
    bench_backend_matrix
);
criterion_main!(benches);
