//! The versioned on-disk index format behind `segram index build` /
//! `segram serve` (`.sgi` files).
//!
//! A `.sgi` file bundles everything a mapping daemon needs to start
//! serving without re-running graph construction or
//! [`GraphIndex::build`]: the genome graph (2-bit packed node sequences +
//! edges, Section 5's representation), the three-level hash index written
//! field-for-field so loading is a straight reconstruction rather than a
//! re-sort, and the seeding metadata (the frequency-filter threshold and
//! the discard fraction it was derived from).
//!
//! Layout: an 8-byte magic, a format version, and a section table
//! (`id / offset / length / FNV-1a checksum` per section) followed by the
//! section payloads. Everything is little-endian via the bounds-checked
//! [`segram_io::ByteReader`] primitives, so **loading never panics** on
//! truncated or corrupt input — every failure mode maps to a named
//! [`PersistError`] variant, and a loaded index additionally passes the
//! same structural invariants [`GraphIndex::build`] guarantees (validated
//! here so a tampered file cannot crash a later lookup).

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use segram_graph::{Base, DnaSeq, GenomeGraph, GraphBuilder, GraphPos, NodeId};
use segram_io::{fnv1a64, BinError, ByteReader, ByteWriter};

use crate::index::{GraphIndex, MinimizerEntry};
use crate::minimizer::{KmerOrdering, MinimizerScheme};

/// The 8-byte magic at the start of every `.sgi` file.
pub const INDEX_MAGIC: [u8; 8] = *b"SGRMIDX\0";
/// Current format version; bumped on any incompatible layout change.
pub const INDEX_FORMAT_VERSION: u32 = 1;

const SECTION_GRAPH: u32 = 1;
const SECTION_INDEX: u32 = 2;
const SECTION_META: u32 = 3;
/// Bytes per section-table entry: id + offset + length + checksum.
const TABLE_ENTRY_BYTES: usize = 4 + 8 + 8 + 8;
/// Upper bound on the section count — far above the three we write, low
/// enough that a corrupt count cannot drive a large allocation.
const MAX_SECTIONS: u32 = 64;

/// Everything `segram index build` persists and `segram serve` loads: the
/// graph, its index, and the seeding metadata needed to reconstruct a
/// mapper that is byte-identical to one built from scratch.
#[derive(Clone, Debug)]
pub struct PersistedIndex {
    /// The genome graph the index was built over.
    pub graph: GenomeGraph,
    /// The three-level hash index.
    pub index: GraphIndex,
    /// The discard fraction the frequency threshold was derived from
    /// (kept so reports can echo the build configuration).
    pub discard_frac: f64,
    /// The frequency-filter threshold (derived from *global* minimizer
    /// counts at build time, exactly as the in-memory path does).
    pub freq_threshold: u32,
}

/// A named reason an index file could not be loaded. Loading never
/// panics: every corrupt, truncated, or incompatible input maps here.
#[derive(Debug)]
pub enum PersistError {
    /// The file does not start with [`INDEX_MAGIC`] — not an index file.
    BadMagic,
    /// The file's format version is not [`INDEX_FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// The file ends before the declared layout does.
    Truncated {
        /// Byte offset where the input ran out.
        offset: usize,
    },
    /// A section's checksum does not match its payload.
    ChecksumMismatch {
        /// The section that failed verification.
        section: &'static str,
    },
    /// A section decoded but violates a structural invariant.
    Corrupt {
        /// The section the violation was found in.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// The underlying file could not be read or written.
    Io(io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad magic: not a segram index file"),
            Self::UnsupportedVersion { found } => write!(
                f,
                "unsupported index format version {found} (this build reads \
                 version {INDEX_FORMAT_VERSION})"
            ),
            Self::Truncated { offset } => {
                write!(f, "index file truncated at byte {offset}")
            }
            Self::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            Self::Corrupt { section, detail } => {
                write!(f, "corrupt section {section:?}: {detail}")
            }
            Self::Io(err) => write!(f, "I/O error: {err}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

/// Maps a primitive decode error into the file-level vocabulary, tagging
/// it with the section it happened in.
fn from_bin(section: &'static str, err: BinError) -> PersistError {
    match err {
        BinError::UnexpectedEnd { offset, .. } => PersistError::Truncated { offset },
        BinError::ImplausibleLength { offset, claimed } => PersistError::Corrupt {
            section,
            detail: format!("implausible element count {claimed} at byte {offset}"),
        },
    }
}

fn corrupt(section: &'static str, detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        section,
        detail: detail.into(),
    }
}

/// Serializes a persisted index to `.sgi` bytes.
///
/// # Examples
///
/// ```
/// use segram_graph::linear_graph;
/// use segram_index::{
///     decode_index, encode_index, GraphIndex, MinimizerScheme, PersistedIndex,
/// };
///
/// let text: segram_graph::DnaSeq = "ACGTTGCAGTCATGCA".repeat(40).parse()?;
/// let graph = linear_graph(&text, 64)?;
/// let index = GraphIndex::build(&graph, MinimizerScheme::new(5, 11), 10);
/// let persisted = PersistedIndex {
///     graph,
///     index,
///     discard_frac: 0.0002,
///     freq_threshold: u32::MAX,
/// };
/// let bytes = encode_index(&persisted);
/// let loaded = decode_index(&bytes).expect("round trip");
/// assert_eq!(loaded.graph.node_count(), persisted.graph.node_count());
/// assert_eq!(
///     loaded.index.distinct_minimizers(),
///     persisted.index.distinct_minimizers()
/// );
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
pub fn encode_index(persisted: &PersistedIndex) -> Vec<u8> {
    let sections = [
        (SECTION_GRAPH, encode_graph(&persisted.graph)),
        (SECTION_INDEX, encode_hash_index(&persisted.index)),
        (SECTION_META, encode_meta(persisted)),
    ];
    let mut header = ByteWriter::new();
    header.put_bytes(&INDEX_MAGIC);
    header.put_u32(INDEX_FORMAT_VERSION);
    header.put_u32(sections.len() as u32);
    let mut offset = 8 + 4 + 4 + sections.len() * TABLE_ENTRY_BYTES;
    for (id, payload) in &sections {
        header.put_u32(*id);
        header.put_u64(offset as u64);
        header.put_u64(payload.len() as u64);
        header.put_u64(fnv1a64(payload));
        offset += payload.len();
    }
    let mut bytes = header.into_bytes();
    for (_, payload) in sections {
        bytes.extend_from_slice(&payload);
    }
    bytes
}

/// Deserializes `.sgi` bytes (see [`encode_index`] for an example).
///
/// # Errors
///
/// Never panics on bad input: returns [`PersistError::BadMagic`],
/// [`PersistError::UnsupportedVersion`], [`PersistError::Truncated`],
/// [`PersistError::ChecksumMismatch`], or [`PersistError::Corrupt`]
/// depending on what the bytes got wrong.
pub fn decode_index(bytes: &[u8]) -> Result<PersistedIndex, PersistError> {
    let mut reader = ByteReader::new(bytes);
    let magic = reader.take_bytes(8).map_err(|e| from_bin("header", e))?;
    if magic != INDEX_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = reader.take_u32().map_err(|e| from_bin("header", e))?;
    if version != INDEX_FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let section_count = reader.take_u32().map_err(|e| from_bin("header", e))?;
    if section_count > MAX_SECTIONS {
        return Err(corrupt(
            "header",
            format!("section count {section_count} exceeds the maximum {MAX_SECTIONS}"),
        ));
    }
    let mut graph_payload: Option<&[u8]> = None;
    let mut index_payload: Option<&[u8]> = None;
    let mut meta_payload: Option<&[u8]> = None;
    for _ in 0..section_count {
        let id = reader.take_u32().map_err(|e| from_bin("header", e))?;
        let offset = reader.take_u64().map_err(|e| from_bin("header", e))? as usize;
        let len = reader.take_u64().map_err(|e| from_bin("header", e))? as usize;
        let checksum = reader.take_u64().map_err(|e| from_bin("header", e))?;
        let (slot, name) = match id {
            SECTION_GRAPH => (&mut graph_payload, "graph"),
            SECTION_INDEX => (&mut index_payload, "index"),
            SECTION_META => (&mut meta_payload, "meta"),
            // Unknown sections are skipped (bounds still verified), so a
            // future minor revision can append data old readers ignore.
            _ => {
                section_slice(bytes, offset, len)?;
                continue;
            }
        };
        let payload = section_slice(bytes, offset, len)?;
        if fnv1a64(payload) != checksum {
            return Err(PersistError::ChecksumMismatch { section: name });
        }
        if slot.replace(payload).is_some() {
            return Err(corrupt("header", format!("duplicate section {name:?}")));
        }
    }
    let graph_payload = graph_payload.ok_or_else(|| corrupt("header", "missing graph section"))?;
    let index_payload = index_payload.ok_or_else(|| corrupt("header", "missing index section"))?;
    let meta_payload = meta_payload.ok_or_else(|| corrupt("header", "missing meta section"))?;

    let graph = decode_graph(graph_payload)?;
    let index = decode_hash_index(index_payload, &graph)?;
    let (discard_frac, freq_threshold) = decode_meta(meta_payload)?;
    Ok(PersistedIndex {
        graph,
        index,
        discard_frac,
        freq_threshold,
    })
}

/// Writes a persisted index to `path`, returning the file size in bytes.
///
/// # Errors
///
/// Propagates filesystem failures as [`PersistError::Io`].
pub fn write_index_file(
    persisted: &PersistedIndex,
    path: impl AsRef<Path>,
) -> Result<u64, PersistError> {
    let bytes = encode_index(persisted);
    fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads a persisted index from `path`.
///
/// # Errors
///
/// Filesystem failures surface as [`PersistError::Io`]; malformed content
/// surfaces as the named [`decode_index`] errors, never a panic.
pub fn read_index_file(path: impl AsRef<Path>) -> Result<PersistedIndex, PersistError> {
    let bytes = fs::read(path)?;
    decode_index(&bytes)
}

/// Bounds-checks one section's extent against the whole file.
fn section_slice(bytes: &[u8], offset: usize, len: usize) -> Result<&[u8], PersistError> {
    let end = offset
        .checked_add(len)
        .filter(|&end| end <= bytes.len())
        .ok_or(PersistError::Truncated {
            offset: bytes.len(),
        })?;
    Ok(&bytes[offset..end])
}

fn encode_graph(graph: &GenomeGraph) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(graph.node_count() as u64);
    for node in graph.node_ids() {
        let seq = graph.seq(node).as_slice();
        w.put_u64(seq.len() as u64);
        // 2-bit packing, low bits first within each byte — the paper's
        // reference representation (Section 5).
        for chunk in seq.chunks(4) {
            let mut byte = 0u8;
            for (i, base) in chunk.iter().enumerate() {
                byte |= base.code() << (2 * i);
            }
            w.put_u8(byte);
        }
    }
    w.put_u64(graph.edge_count() as u64);
    for (from, to) in graph.edges() {
        w.put_u32(from.0);
        w.put_u32(to.0);
    }
    w.into_bytes()
}

fn decode_graph(payload: &[u8]) -> Result<GenomeGraph, PersistError> {
    const SECTION: &str = "graph";
    let bin = |e| from_bin(SECTION, e);
    let mut r = ByteReader::new(payload);
    // A node costs at least 9 bytes (length prefix + one packed byte).
    let node_count = r.take_count(9).map_err(bin)?;
    let mut builder = GraphBuilder::new();
    for n in 0..node_count {
        let len = usize::try_from(r.take_u64().map_err(bin)?)
            .map_err(|_| corrupt(SECTION, format!("node {n}: length overflows usize")))?;
        if len == 0 {
            return Err(corrupt(SECTION, format!("node {n} is empty")));
        }
        let packed = r.take_bytes(len.div_ceil(4)).map_err(bin)?;
        let seq: DnaSeq = (0..len)
            .map(|i| Base::from_code_masked(packed[i / 4] >> (2 * (i % 4))))
            .collect();
        builder
            .add_node(seq)
            .map_err(|e| corrupt(SECTION, format!("node {n}: {e}")))?;
    }
    let edge_count = r.take_count(8).map_err(bin)?;
    for e in 0..edge_count {
        let from = NodeId(r.take_u32().map_err(bin)?);
        let to = NodeId(r.take_u32().map_err(bin)?);
        builder
            .add_edge(from, to)
            .map_err(|err| corrupt(SECTION, format!("edge {e} ({from} -> {to}): {err}")))?;
    }
    if !r.is_empty() {
        return Err(corrupt(
            SECTION,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    builder
        .finish()
        .map_err(|e| corrupt(SECTION, e.to_string()))
}

fn encode_hash_index(index: &GraphIndex) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(index.scheme.w as u64);
    w.put_u64(index.scheme.k as u64);
    w.put_u8(match index.scheme.ordering {
        KmerOrdering::Hash => 0,
        KmerOrdering::Lexicographic => 1,
    });
    w.put_u32(index.bucket_bits);
    w.put_u64(index.bucket_starts.len() as u64);
    for &start in &index.bucket_starts {
        w.put_u32(start);
    }
    w.put_u64(index.minimizers.len() as u64);
    for entry in &index.minimizers {
        w.put_u64(entry.hash);
        w.put_u32(entry.loc_start);
        w.put_u32(entry.loc_count);
    }
    w.put_u64(index.locations.len() as u64);
    for loc in &index.locations {
        w.put_u32(loc.node.0);
        w.put_u32(loc.offset);
    }
    w.into_bytes()
}

/// Decodes the hash-index section and re-validates every structural
/// invariant [`GraphIndex::build`] guarantees — bucket ranges, sorted
/// hashes, contiguous location runs, in-graph positions — so a loaded
/// index can never panic (or silently mis-answer) a later lookup.
fn decode_hash_index(payload: &[u8], graph: &GenomeGraph) -> Result<GraphIndex, PersistError> {
    const SECTION: &str = "index";
    let bin = |e| from_bin(SECTION, e);
    let mut r = ByteReader::new(payload);
    let w = usize::try_from(r.take_u64().map_err(bin)?)
        .map_err(|_| corrupt(SECTION, "scheme w overflows usize"))?;
    let k = usize::try_from(r.take_u64().map_err(bin)?)
        .map_err(|_| corrupt(SECTION, "scheme k overflows usize"))?;
    if w == 0 || k == 0 || k > 31 {
        return Err(corrupt(SECTION, format!("invalid scheme <w={w}, k={k}>")));
    }
    let ordering = match r.take_u8().map_err(bin)? {
        0 => KmerOrdering::Hash,
        1 => KmerOrdering::Lexicographic,
        other => return Err(corrupt(SECTION, format!("unknown k-mer ordering {other}"))),
    };
    let scheme = MinimizerScheme { w, k, ordering };
    let bucket_bits = r.take_u32().map_err(bin)?;
    if !(1..=32).contains(&bucket_bits) {
        return Err(corrupt(
            SECTION,
            format!("bucket_bits {bucket_bits} not in 1..=32"),
        ));
    }
    let bucket_count = 1u64 << bucket_bits;

    let starts_len = r.take_count(4).map_err(bin)?;
    if starts_len as u64 != bucket_count + 1 {
        return Err(corrupt(
            SECTION,
            format!("{starts_len} bucket starts for 2^{bucket_bits} buckets"),
        ));
    }
    let mut bucket_starts = Vec::with_capacity(starts_len);
    for _ in 0..starts_len {
        bucket_starts.push(r.take_u32().map_err(bin)?);
    }
    if bucket_starts[0] != 0 {
        return Err(corrupt(SECTION, "first bucket start is not 0"));
    }
    if bucket_starts.windows(2).any(|p| p[0] > p[1]) {
        return Err(corrupt(SECTION, "bucket starts are not non-decreasing"));
    }

    let minimizer_count = r.take_count(16).map_err(bin)?;
    if *bucket_starts.last().expect("non-empty") as usize != minimizer_count {
        return Err(corrupt(
            SECTION,
            "last bucket start does not equal the minimizer count",
        ));
    }
    let mut minimizers = Vec::with_capacity(minimizer_count);
    let mut next_loc_start = 0u64;
    for m in 0..minimizer_count {
        let hash = r.take_u64().map_err(bin)?;
        let loc_start = r.take_u32().map_err(bin)?;
        let loc_count = r.take_u32().map_err(bin)?;
        // Location runs must tile the third level exactly, in order.
        if u64::from(loc_start) != next_loc_start || loc_count == 0 {
            return Err(corrupt(
                SECTION,
                format!("minimizer {m}: non-contiguous location run"),
            ));
        }
        next_loc_start += u64::from(loc_count);
        minimizers.push(MinimizerEntry {
            hash,
            loc_start,
            loc_count,
        });
    }
    // Per-bucket invariants: every entry hashes into its bucket and
    // hashes are strictly increasing within it (binary-search order).
    for bucket in 0..bucket_count as usize {
        let range = bucket_starts[bucket] as usize..bucket_starts[bucket + 1] as usize;
        let entries = &minimizers[range];
        for pair in entries.windows(2) {
            if pair[0].hash >= pair[1].hash {
                return Err(corrupt(
                    SECTION,
                    format!("bucket {bucket}: hashes not strictly increasing"),
                ));
            }
        }
        for entry in entries {
            if entry.hash % bucket_count != bucket as u64 {
                return Err(corrupt(
                    SECTION,
                    format!("hash {:#x} filed under bucket {bucket}", entry.hash),
                ));
            }
        }
    }

    let location_count = r.take_count(8).map_err(bin)?;
    if location_count as u64 != next_loc_start {
        return Err(corrupt(
            SECTION,
            "location count does not match the minimizer runs",
        ));
    }
    let mut locations = Vec::with_capacity(location_count);
    for l in 0..location_count {
        let node = NodeId(r.take_u32().map_err(bin)?);
        let offset = r.take_u32().map_err(bin)?;
        if node.index() >= graph.node_count() || offset as usize >= graph.node_len(node) {
            return Err(corrupt(
                SECTION,
                format!("location {l} ({node}:{offset}) is outside the graph"),
            ));
        }
        locations.push(GraphPos { node, offset });
    }
    if !r.is_empty() {
        return Err(corrupt(
            SECTION,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(GraphIndex {
        scheme,
        bucket_bits,
        bucket_starts,
        minimizers,
        locations,
    })
}

fn encode_meta(persisted: &PersistedIndex) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(persisted.discard_frac.to_bits());
    w.put_u32(persisted.freq_threshold);
    w.into_bytes()
}

fn decode_meta(payload: &[u8]) -> Result<(f64, u32), PersistError> {
    const SECTION: &str = "meta";
    let bin = |e| from_bin(SECTION, e);
    let mut r = ByteReader::new(payload);
    let discard_frac = f64::from_bits(r.take_u64().map_err(bin)?);
    if !(0.0..=1.0).contains(&discard_frac) {
        return Err(corrupt(
            SECTION,
            format!("discard fraction {discard_frac} not in 0..=1"),
        ));
    }
    let freq_threshold = r.take_u32().map_err(bin)?;
    if !r.is_empty() {
        return Err(corrupt(
            SECTION,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok((discard_frac, freq_threshold))
}
