//! **Figure 17**: standalone sequence-to-graph alignment — BitAlign vs
//! PaSGAL on the LRC-L1 / MHC1-M1 (short-read) and LRC-L2 / MHC1-M2
//! (long-read) datasets.
//!
//! Paper result: 41×–539× speedup, *larger for long reads* thanks to the
//! divide-and-conquer windowing.
//!
//! Reproduction: the PaSGAL baseline is our exact graph-DP aligner with
//! traceback, measured as wall-clock software; BitAlign is measured two
//! ways — (a) as software (same machine, apples-to-apples algorithmic
//! comparison) and (b) as the calibrated accelerator model (the paper's
//! comparison). Both aligners receive the same seed regions.

use segram_align::{graph_dp_align, windowed_bitalign, StartMode, WindowConfig};
use segram_bench::{header, ratio, timed, write_results, Scale};
use segram_core::{SegramConfig, SegramMapper};
use segram_graph::LinearizedGraph;
use segram_hw::BitAlignHwConfig;
use segram_testkit::Serialize;

#[derive(Serialize)]
struct Fig17Row {
    dataset: String,
    read_len: usize,
    alignments: usize,
    pasgal_total_ms: f64,
    bitalign_sw_total_ms: f64,
    bitalign_hw_total_ms: f64,
    sw_speedup: f64,
    hw_speedup: f64,
}

#[derive(Serialize)]
struct Fig17 {
    rows: Vec<Fig17Row>,
    paper_speedup_range: (f64, f64),
}

fn main() {
    let scale = Scale::from_env();
    // Region suite scaled: LRC/MHC graphs with dense variants.
    let suite = segram_sim::pasgal_suite(
        if scale.reference_len > 1_000_000 {
            4
        } else {
            32
        },
        171,
    );
    header("Figure 17: BitAlign vs PaSGAL (sequence-to-graph alignment)");
    println!(
        "  {:<10} {:>8} {:>8} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "dataset", "readlen", "aligns", "PaSGAL ms", "BA-sw ms", "BA-hw ms", "sw spd", "hw spd"
    );

    let hw = BitAlignHwConfig::bitalign();
    let mut rows = Vec::new();
    for region in &suite {
        // Use MinSeed to produce the (region, read) pairs both aligners see.
        let config = if region.reads[0].seq.len() > 1000 {
            SegramConfig::long_reads(0.05)
        } else {
            SegramConfig::short_reads()
        };
        let mapper = SegramMapper::new(region.built.graph.clone(), config);
        let mut pairs: Vec<(LinearizedGraph, segram_graph::DnaSeq)> = Vec::new();
        let read_cap = 12usize.min(region.reads.len());
        for read in region.reads.iter().take(read_cap) {
            let seeding = mapper.seed(&read.seq);
            if let Some(r) = seeding.regions.first() {
                if let Ok(lin) = LinearizedGraph::extract(&region.built.graph, r.start, r.end) {
                    pairs.push((lin, read.seq.clone()));
                }
            }
        }
        if pairs.is_empty() {
            continue;
        }
        // PaSGAL: exact DP with traceback (DP-fwd + traceback; the paper
        // compares against PaSGAL's traceback step).
        let (_, pasgal_s) = timed(|| {
            for (lin, read) in &pairs {
                let _ = graph_dp_align(lin, read, StartMode::Free);
            }
        });
        // BitAlign software.
        let (_, ba_s) = timed(|| {
            for (lin, read) in &pairs {
                let mut w = WindowConfig::bitalign();
                w.window_k = 48;
                let _ = windowed_bitalign(lin, read, w, StartMode::Free);
            }
        });
        // BitAlign hardware model.
        let hw_total_ms: f64 = pairs
            .iter()
            .map(|(_, read)| hw.alignment_ns(read.len()) / 1e6)
            .sum();
        let row = Fig17Row {
            dataset: region.name.clone(),
            read_len: region.reads[0].seq.len(),
            alignments: pairs.len(),
            pasgal_total_ms: pasgal_s * 1e3,
            bitalign_sw_total_ms: ba_s * 1e3,
            bitalign_hw_total_ms: hw_total_ms,
            sw_speedup: pasgal_s * 1e3 / (ba_s * 1e3).max(1e-9),
            hw_speedup: pasgal_s * 1e3 / hw_total_ms.max(1e-9),
        };
        println!(
            "  {:<10} {:>8} {:>8} {:>12.2} {:>12.2} {:>12.3} {:>8.1}x {:>8.1}x",
            row.dataset,
            row.read_len,
            row.alignments,
            row.pasgal_total_ms,
            row.bitalign_sw_total_ms,
            row.bitalign_hw_total_ms,
            row.sw_speedup,
            row.hw_speedup
        );
        rows.push(row);
    }

    header("Shape checks against the paper");
    let short_spd: Vec<f64> = rows
        .iter()
        .filter(|r| r.read_len <= 1000)
        .map(|r| r.hw_speedup)
        .collect();
    let long_spd: Vec<f64> = rows
        .iter()
        .filter(|r| r.read_len > 1000)
        .map(|r| r.hw_speedup)
        .collect();
    if !short_spd.is_empty() && !long_spd.is_empty() {
        let short_avg = short_spd.iter().sum::<f64>() / short_spd.len() as f64;
        let long_avg = long_spd.iter().sum::<f64>() / long_spd.len() as f64;
        println!(
            "  avg hw speedup: short reads {} / long reads {} (paper: 41-67x short, 513-539x long)",
            ratio(short_avg, 1.0),
            ratio(long_avg, 1.0)
        );
        println!(
            "  long-read speedup exceeds short-read speedup: {} (paper: yes, via windowing)",
            if long_avg > short_avg { "yes" } else { "no" }
        );
    }

    write_results(
        "fig17",
        &Fig17 {
            rows,
            paper_speedup_range: (41.0, 539.0),
        },
    );
}
