#!/usr/bin/env bash
# Tier-1 CI gate for the SeGraM reproduction workspace.
#
# Fully offline by construction: every dependency is a workspace path
# dependency (see segram-testkit), so this script must succeed on a
# machine with no network access and no crates.io cache. `--locked`
# enforces that the committed Cargo.lock stays authoritative.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --locked

echo "== cargo test -q =="
cargo test -q --locked

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
