//! Differential property tests for the BGZF compressed-input path: on
//! random FASTQ-shaped inputs — including CRLF line endings, malformed
//! records, and records straddling BGZF block boundaries — the full
//! compressed pipeline ([`bgzf_compress`] → [`BgzfBlocks`] →
//! [`BgzfBlock::inflate`] → [`FastqSplice`] → [`RawFastqRecord::decode`])
//! produces exactly the records *and* exactly the first error that the
//! inline [`FastqReader`] produces on the plain bytes, at every block
//! size and in both compressor modes. Truncating the *compressed* stream
//! at an arbitrary byte yields a prefix of those records plus a named
//! [`BgzfError`] — never a panic.

use segram_io::{
    bgzf_compress, Ambiguity, BgzfBlocks, BgzfMode, FastqReader, FastqRecord, FastqSplice,
};
use segram_testkit::prelude::*;

/// Everything observable from reading a stream to its first failure:
/// the records before it and a debug rendering of the error (the error
/// types carry no `PartialEq` across families).
type Outcome = (Vec<FastqRecord>, Option<String>);

fn reader_outcome(bytes: &[u8], ambiguity: Ambiguity) -> Outcome {
    let mut records = Vec::new();
    let mut error = None;
    for item in FastqReader::new(bytes, ambiguity) {
        match item {
            Ok(record) => records.push(record),
            Err(err) => error = Some(format!("{err:?}")), // reader fuses
        }
    }
    (records, error)
}

/// The worker path, run single-threaded: slice blocks, inflate each,
/// splice in order through the shared scanner, decode. Fuses on the
/// first error of any family, exactly as the engine cancels the run.
fn bgzf_outcome(compressed: &[u8], ambiguity: Ambiguity) -> Outcome {
    let mut records = Vec::new();
    let mut error = None;
    let splice = FastqSplice::new();
    'stream: for item in BgzfBlocks::new(compressed) {
        let block = match item {
            Ok(block) => block,
            Err(err) => {
                error = Some(format!("{err:?}"));
                break;
            }
        };
        let plain = match block.inflate() {
            Ok(plain) => plain,
            Err(err) => {
                error = Some(format!("{err:?}"));
                break;
            }
        };
        let raws = splice
            .splice(block.index(), &plain, block.is_last(), || false)
            .expect("an uncancelled in-order splice always yields");
        for raw in raws {
            match raw.decode(ambiguity) {
                Ok(record) => records.push(record),
                Err(err) => {
                    error = Some(format!("{err:?}"));
                    break 'stream;
                }
            }
        }
    }
    (records, error)
}

/// One synthesized record's text, with injected quirks.
fn render_record(
    id: &str,
    seq: &str,
    qual_len: usize,
    crlf: bool,
    plus_tail: bool,
    blanks_before: usize,
) -> String {
    let eol = if crlf { "\r\n" } else { "\n" };
    let mut out = String::new();
    for _ in 0..blanks_before {
        out.push_str(eol);
    }
    out.push('@');
    out.push_str(id);
    out.push_str(eol);
    out.push_str(seq);
    out.push_str(eol);
    out.push('+');
    if plus_tail {
        out.push_str(id);
    }
    out.push_str(eol);
    out.push_str(&"I".repeat(qual_len));
    out.push_str(eol);
    out
}

fn mode_of(fixed: bool) -> BgzfMode {
    if fixed {
        BgzfMode::Fixed
    } else {
        BgzfMode::Stored
    }
}

proptest! {
    #[test]
    fn compressed_path_is_identical_to_the_inline_reader(
        entries in prop::collection::vec(
            (
                "[A-Za-z0-9_.-]{1,8}",        // id
                "[ACGTN]{1,40}",              // sequence (N exercises ambiguity)
                0usize..3,                    // quality-length skew
                any::<bool>(),                // CRLF
                any::<bool>(),                // '+' separator tail
                0usize..3,                    // blank lines before the record
            ),
            1..5,
        ),
        truncate_tail in 0usize..20,
        block in prop::sample::select(vec![1usize, 2, 3, 7, 61, 509, 4096]),
        fixed in any::<bool>(),
        reject in any::<bool>(),
    ) {
        let mut text = String::new();
        for (id, seq, skew, crlf, plus_tail, blanks) in &entries {
            // Skewed quality lengths produce invalid records on purpose.
            let qual_len = seq.len().saturating_sub(*skew).max(1);
            text.push_str(&render_record(id, seq, qual_len, *crlf, *plus_tail, *blanks));
        }
        // Truncate the *plain* tail to exercise a mid-record end of input
        // surviving compression intact.
        let cut = text.len().saturating_sub(truncate_tail);
        let bytes = &text.as_bytes()[..cut];
        let ambiguity = if reject {
            Ambiguity::Reject
        } else {
            Ambiguity::Substitute(segram_graph::Base::A)
        };

        // Tiny blocks force records to straddle many block boundaries.
        let compressed = bgzf_compress(bytes, block, mode_of(fixed));
        let expected = reader_outcome(bytes, ambiguity);
        let actual = bgzf_outcome(&compressed, ambiguity);
        prop_assert_eq!(
            &actual.0, &expected.0,
            "records diverge at block {} ({:?})", block, mode_of(fixed)
        );
        prop_assert_eq!(
            &actual.1, &expected.1,
            "errors diverge at block {} ({:?})", block, mode_of(fixed)
        );
    }

    #[test]
    fn truncated_compressed_streams_yield_a_record_prefix_and_a_named_error(
        entries in prop::collection::vec(
            ("[A-Za-z0-9_.-]{1,8}", "[ACGT]{1,40}", any::<bool>()),
            1..6,
        ),
        block in prop::sample::select(vec![1usize, 5, 47, 512]),
        fixed in any::<bool>(),
        cut_seed in any::<u32>(),
    ) {
        let mut text = String::new();
        for (id, seq, crlf) in &entries {
            text.push_str(&render_record(id, seq, seq.len(), *crlf, false, 0));
        }
        let compressed = bgzf_compress(text.as_bytes(), block, mode_of(fixed));
        let (full_records, full_error) = bgzf_outcome(&compressed, Ambiguity::Reject);
        prop_assert_eq!(full_error, None, "intact stream of valid records");

        // Cut the *compressed* stream at an arbitrary byte (strictly
        // short of the EOF marker's last byte, so an error is certain).
        let cut = cut_seed as usize % compressed.len();
        let (records, error) = bgzf_outcome(&compressed[..cut], Ambiguity::Reject);

        prop_assert!(
            records.len() <= full_records.len()
                && records == full_records[..records.len()],
            "decoded records must be a prefix of the intact stream's at cut {cut}"
        );
        let error = error.expect("a truncated stream always names its failure");
        prop_assert!(
            error.starts_with("Truncated") || error.starts_with("MissingEof"),
            "cut {cut}: expected Truncated or MissingEof, got {error}"
        );
    }

    #[test]
    fn byte_soup_never_panics(
        data in prop::collection::vec(any::<u8>(), 0..2000),
    ) {
        // Arbitrary bytes through the whole compressed path: every
        // outcome is acceptable except a panic.
        let _ = bgzf_outcome(&data, Ambiguity::Reject);
    }
}
