//! Property tests for the hardware model: the performance model must be
//! monotone and dimensionally sane for any workload, not just the paper's
//! calibration points.

use segram_hw::{
    system_cost, BitAlignHwConfig, HbmConfig, MinSeedHwConfig, MinSeedScratchpads, SeedWorkload,
    SegramAccelerator, SegramSystem,
};
use segram_testkit::prelude::*;

fn arb_workload() -> impl Strategy<Value = SeedWorkload> {
    (
        100usize..20_000,
        1.0f64..3000.0,
        0.0f64..1.0,
        1.0f64..5000.0,
        50.0f64..20_000.0,
    )
        .prop_map(
            |(read_len, minimizers, surviving_frac, seeds, region)| SeedWorkload {
                read_len,
                minimizers_per_read: minimizers,
                surviving_minimizers: minimizers * surviving_frac,
                seeds_per_read: seeds,
                avg_region_len: region,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// More seeds can never make a read faster.
    #[test]
    fn read_time_is_monotone_in_seeds(w in arb_workload(), extra in 1.0f64..1000.0) {
        let acc = SegramAccelerator::default();
        let hbm = HbmConfig::default();
        let base = acc.per_read_ns(&w, &hbm);
        let more = SeedWorkload {
            seeds_per_read: w.seeds_per_read + extra,
            ..w
        };
        prop_assert!(acc.per_read_ns(&more, &hbm) >= base);
    }

    /// Longer reads can never take fewer BitAlign cycles.
    #[test]
    fn bitalign_cycles_monotone_in_length(len in 1usize..50_000, extra in 1usize..10_000) {
        let hw = BitAlignHwConfig::bitalign();
        prop_assert!(hw.cycles_per_alignment(len + extra) >= hw.cycles_per_alignment(len));
    }

    /// System throughput scales exactly linearly in stack count (the
    /// paper's replicated-reference design).
    #[test]
    fn throughput_linear_in_stacks(w in arb_workload(), stacks in 1usize..16) {
        let mut one = SegramSystem::default();
        one.hbm.stacks = 1;
        let mut many = SegramSystem::default();
        many.hbm.stacks = stacks;
        let ratio = many.throughput_reads_per_s(&w) / one.throughput_reads_per_s(&w);
        prop_assert!((ratio - stacks as f64).abs() < 1e-6 * stacks as f64);
    }

    /// The pipelined per-seed time equals the slower stage, never less.
    #[test]
    fn pipeline_is_bottleneck_bound(w in arb_workload()) {
        let acc = SegramAccelerator::default();
        let hbm = HbmConfig::default();
        let per_seed = acc.per_seed_ns(&w, &hbm);
        let minseed = acc.minseed.per_seed_ns(&w, &hbm);
        let bitalign = acc.bitalign.alignment_ns(w.read_len);
        prop_assert!((per_seed - minseed.max(bitalign)).abs() < 1e-9);
    }

    /// Batching never makes a read faster, and equals the plain model when
    /// minimizers fit the scratchpad.
    #[test]
    fn batching_monotone(w in arb_workload()) {
        let hw = MinSeedHwConfig::default();
        let hbm = HbmConfig::default();
        let pads = MinSeedScratchpads::default();
        let plain = hw.per_read_ns(&w, &hbm);
        let batched = hw.batched_per_read_ns(&w, &hbm, &pads);
        prop_assert!(batched >= plain - 1e-9);
        if w.minimizers_per_read <= 2_000.0 {
            prop_assert!((batched - plain).abs() < 1e-9);
        }
    }

    /// Cost totals scale linearly in the accelerator count.
    #[test]
    fn cost_linear_in_accelerators(n in 1usize..256) {
        let one = system_cost(1, 0.0);
        let many = system_cost(n, 0.0);
        let expect = one.per_accelerator.area_mm2 * n as f64;
        prop_assert!((many.all_accelerators.area_mm2 - expect).abs() < 1e-9);
    }

    /// Memory access time decomposes into latency + transfer and is
    /// monotone in both count and size.
    #[test]
    fn hbm_access_monotone(count in 0u64..10_000, bytes in 1u64..100_000, overlap in 1u64..64) {
        let hbm = HbmConfig::default();
        let t = hbm.batched_access_ns(count, bytes, overlap);
        prop_assert!(t >= 0.0);
        prop_assert!(hbm.batched_access_ns(count + 1, bytes, overlap) >= t);
        prop_assert!(hbm.batched_access_ns(count, bytes + 1, overlap) >= t);
        // More overlap never hurts.
        prop_assert!(hbm.batched_access_ns(count, bytes, overlap + 1) <= t + 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Cache simulator properties (the §3 Observations 2-3 instrument)
// ---------------------------------------------------------------------------

use segram_hw::{CacheConfig, CacheSim};

fn arb_trace() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..4096, 1..400)
}

proptest! {
    /// Basic sanity: misses never exceed accesses; rates stay in [0, 1].
    #[test]
    fn cache_counters_are_consistent(trace in arb_trace()) {
        let mut cache = CacheSim::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 32,
            ways: 2,
        });
        let stats = cache.run_trace(trace.iter().copied());
        prop_assert!(stats.misses <= stats.accesses);
        prop_assert_eq!(stats.accesses, trace.len() as u64);
        prop_assert!((0.0..=1.0).contains(&stats.miss_rate()));
        prop_assert_eq!(stats.hits() + stats.misses, stats.accesses);
    }

    /// The classic LRU *stack property*: for fully-associative LRU caches,
    /// a larger cache never misses more on the same trace.
    #[test]
    fn lru_stack_property(trace in arb_trace(), small_ways in 1usize..6) {
        let large_ways = small_ways * 2;
        let line = 64usize;
        let mut small = CacheSim::new(CacheConfig {
            size_bytes: line * small_ways,
            line_bytes: line,
            ways: small_ways,
        });
        let mut large = CacheSim::new(CacheConfig {
            size_bytes: line * large_ways,
            line_bytes: line,
            ways: large_ways,
        });
        let small_stats = small.run_trace(trace.iter().copied());
        let large_stats = large.run_trace(trace.iter().copied());
        prop_assert!(
            large_stats.misses <= small_stats.misses,
            "LRU inclusion violated: {} ways missed {}, {} ways missed {}",
            large_ways, large_stats.misses, small_ways, small_stats.misses
        );
    }

    /// A working set that fits is never evicted: replaying any trace whose
    /// distinct lines fit in a fully-associative cache misses only cold.
    #[test]
    fn resident_working_sets_only_miss_cold(trace in arb_trace()) {
        let line = 64u64;
        let distinct: std::collections::BTreeSet<u64> =
            trace.iter().map(|a| a / line).collect();
        let ways = distinct.len().max(1);
        let mut cache = CacheSim::new(CacheConfig {
            size_bytes: 64 * ways,
            line_bytes: 64,
            ways,
        });
        let stats = cache.run_trace(trace.iter().copied());
        prop_assert_eq!(stats.misses, distinct.len() as u64);
        // A second pass is now all hits.
        let second = cache.run_trace(trace.iter().copied());
        prop_assert_eq!(second.misses, 0);
    }

    /// Accesses map to lines correctly: shifting a whole trace by less
    /// than one line (keeping intra-line offsets) cannot change hit/miss
    /// behaviour when the trace is line-aligned to begin with.
    #[test]
    fn sub_line_offsets_do_not_matter(lines in prop::collection::vec(0u64..256, 1..200),
                                      offset in 0u64..32) {
        let config = CacheConfig { size_bytes: 1024, line_bytes: 32, ways: 4 };
        let mut a = CacheSim::new(config);
        let mut b = CacheSim::new(config);
        let sa = a.run_trace(lines.iter().map(|l| l * 32));
        let sb = b.run_trace(lines.iter().map(|l| l * 32 + offset));
        prop_assert_eq!(sa, sb);
    }
}
