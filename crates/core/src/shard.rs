//! Coordinate-range sharding of the mapping engine: the software analogue
//! of the paper's per-HBM-channel accelerator instances (Section 8.3),
//! where each channel owns a private slice of the graph and index so
//! seeding never crosses channels.
//!
//! [`ShardedIndex`] splits one reference graph's coordinate space into `N`
//! contiguous ranges and owns one [`SegramMapper`] per range: all shards
//! share the graph (via `Arc`), but each shard's minimizer index holds
//! exactly the seed locations whose linear coordinate falls in its range.
//! The seeding-stage router
//! ([`ShardRouter`](crate::pipeline::ShardRouter)) dispatches each read's
//! minimizers to the shard(s) whose index can answer them and merges the
//! per-shard hits **before** prefilter/alignment, so the sharded engine's
//! SAM/GAF output is byte-identical to the unsharded path (`ci.sh`
//! enforces this end to end).
//!
//! The same greedy size-balanced placement the paper uses to distribute
//! chromosomes over memory channels ([`balance_loads`], shared with
//! [`Pangenome::channel_placement`](crate::Pangenome::channel_placement))
//! also plans the engine's worker-to-shard-group ownership
//! ([`ShardAffinity`](crate::pipeline::ShardAffinity)). The fanout
//! schedule treats that plan as informational (routing fans out to every
//! shard); the elastic schedule
//! ([`ElasticScheduler`](crate::pipeline::ElasticScheduler)) materializes
//! it as per-group worker pools and migrates ownership live as the
//! observed seeding load drifts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use segram_graph::{
    build_graph, diff_graphs, graphs_identical, merge_ranges, ranges_intersect, ChangeLog, DnaSeq,
    GenomeGraph, VariantSet,
};
use segram_index::{
    frequency_threshold, shard_boundaries, GraphIndex, PersistError, PersistedIndex,
};

use crate::config::SegramConfig;
use crate::mapper::{MapStats, Mapping, ReadMapper, SegramMapper};
use crate::pipeline::{BitAlignStage, MapPipeline, ShardRouter, SpecPrefilter};

/// Greedy largest-first load balancing: assigns `loads.len()` items to
/// `bins` bins, always placing the next-largest item into the currently
/// lightest bin. Returns, per bin, the item indices assigned to it (every
/// item exactly once; bins beyond the item count stay empty).
///
/// This is the paper's Section 8.3 placement rule, shared by
/// [`Pangenome::channel_placement`](crate::Pangenome::channel_placement)
/// (chromosomes → memory channels) and
/// [`ShardAffinity`](crate::pipeline::ShardAffinity) (shards → worker
/// groups).
///
/// # Panics
///
/// Panics when `bins` is zero.
pub fn balance_loads(loads: &[u64], bins: usize) -> Vec<Vec<usize>> {
    assert!(bins > 0, "at least one bin");
    let mut order: Vec<(usize, u64)> = loads.iter().copied().enumerate().collect();
    order.sort_by_key(|&(_, load)| std::cmp::Reverse(load));
    let mut totals = vec![0u64; bins];
    let mut placement = vec![Vec::new(); bins];
    for (idx, load) in order {
        let target = (0..bins).min_by_key(|&b| totals[b]).expect("bins > 0");
        totals[target] += load;
        placement[target].push(idx);
    }
    placement
}

/// Max-over-mean imbalance of per-bin load totals (1.0 = perfectly
/// balanced; 0 bins or all-zero loads report 1.0).
pub fn load_imbalance(loads: &[u64]) -> f64 {
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len().max(1) as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// One coordinate-range shard: a linear range `[start, end)` of the shared
/// graph plus a [`SegramMapper`] whose index holds exactly that range's
/// seed locations. Carries per-shard occupancy counters filled in by the
/// seeding router.
#[derive(Debug)]
pub struct IndexShard {
    id: usize,
    start: u64,
    end: u64,
    // Arc so a delta reload can *share* a clean shard with its successor
    // instead of rebuilding it: in-flight requests keep the old
    // `ShardedIndex` alive, new admissions see the new one, and the
    // untouched shards are literally the same allocation in both.
    mapper: Arc<SegramMapper>,
    seed_hits: AtomicU64,
    regions: AtomicU64,
    wins: AtomicU64,
}

impl IndexShard {
    /// Shard id (0-based, in coordinate order).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's linear coordinate range `[start, end)`.
    pub fn range(&self) -> (u64, u64) {
        (self.start, self.end)
    }

    /// The shard-local mapper (shared graph, range-restricted index,
    /// global frequency threshold).
    pub fn mapper(&self) -> &SegramMapper {
        self.mapper.as_ref()
    }

    /// Whether this shard shares its mapper allocation with `other` — the
    /// observable fact a delta reload's `clean` counter reports.
    pub fn shares_mapper_with(&self, other: &IndexShard) -> bool {
        Arc::ptr_eq(&self.mapper, &other.mapper)
    }

    /// Bytes of reference data this shard owns in the paper's memory
    /// layout: its index slice plus its share of the 2-bit-packed graph
    /// characters.
    pub fn memory_bytes(&self) -> u64 {
        self.mapper.index().footprint().total_bytes() + (self.end - self.start).div_ceil(4)
    }

    pub(crate) fn record_seed_hits(&self, hits: u64) {
        self.seed_hits.fetch_add(hits, Ordering::Relaxed);
    }

    pub(crate) fn record_region(&self) {
        self.regions.fetch_add(1, Ordering::Relaxed);
    }

    fn record_win(&self) {
        self.wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of this shard's counters.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            shard: self.id,
            start: self.start,
            end: self.end,
            seed_hits: self.seed_hits.load(Ordering::Relaxed),
            regions: self.regions.load(Ordering::Relaxed),
            wins: self.wins.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one shard's per-run occupancy counters (the load-balance
/// observability the paper's Section 8.3 study needs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard id.
    pub shard: usize,
    /// Linear range start (inclusive).
    pub start: u64,
    /// Linear range end (exclusive).
    pub end: u64,
    /// Seed locations this shard's index served.
    pub seed_hits: u64,
    /// Candidate regions this shard produced (pre-dedup).
    pub regions: u64,
    /// Reads whose winning mapping's seed lay in this shard.
    pub wins: u64,
}

/// A reference graph sharded by coordinate range: `N` [`SegramMapper`]
/// shards over one shared graph, mapped jointly through a seeding router
/// whose merged output is byte-identical to the unsharded
/// [`SegramMapper`].
///
/// # Examples
///
/// ```
/// use segram_core::{ReadMapper, SegramConfig, SegramMapper, ShardedIndex};
/// use segram_sim::DatasetConfig;
///
/// let dataset = DatasetConfig::tiny(7).illumina(100);
/// let config = SegramConfig::short_reads();
/// let mono = SegramMapper::new(dataset.graph().clone(), config);
/// let sharded = ShardedIndex::build(dataset.graph().clone(), config, 4);
/// for read in dataset.reads.iter().take(3) {
///     let (a, _) = mono.map_read(&read.seq);
///     let (b, _) = sharded.map_read(&read.seq);
///     assert_eq!(a, b);
/// }
/// ```
#[derive(Debug)]
pub struct ShardedIndex {
    graph: Arc<GenomeGraph>,
    config: SegramConfig,
    freq_threshold: u32,
    boundaries: Vec<u64>,
    shards: Vec<IndexShard>,
    lineage: Option<StoreLineage>,
}

/// The versioned-store lineage a [`ShardedIndex`] carries when it was
/// loaded from a `.sgi` file with a changelog: enough to verify that a
/// proposed replacement store is this store's direct child and to replay
/// the graph delta between them ([`ShardedIndex::apply_delta`]).
#[derive(Clone, Debug)]
pub struct StoreLineage {
    /// The store's epoch.
    pub epoch: u64,
    /// The store's identity checksum (what a child's `parent` must name).
    pub identity: u64,
    /// The linear reference the graph was constructed from.
    pub reference: DnaSeq,
    /// The embedded (sorted, non-overlapping) variant set.
    pub applied: VariantSet,
}

/// What a delta swap did, per reload: how many shards were rebuilt
/// because the delta touched their coordinate range, and how many were
/// carried into the new [`ShardedIndex`] untouched (shared allocation)
/// or with only a node-id translation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaSwapReport {
    /// The epoch the swap moved to.
    pub epoch: u64,
    /// Shards rebuilt from the new index (their range intersects the
    /// delta's touched coordinates).
    pub dirty: usize,
    /// Clean shards sharing the predecessor's mapper allocation.
    pub shared: usize,
    /// Clean shards cloned with only a node-id translation (no minimizer
    /// re-extraction) because fresh nodes upstream shifted their ids.
    pub remapped: usize,
}

impl DeltaSwapReport {
    /// Shards that did **not** need a rebuild.
    pub fn clean(&self) -> usize {
        self.shared + self.remapped
    }
}

impl ShardedIndex {
    /// Builds the sharded index: one monolithic index pass (so the
    /// frequency threshold is derived from *global* minimizer counts,
    /// exactly as [`SegramMapper::new`] does), then an exact partition of
    /// the seed locations into `shards` equal-width coordinate ranges.
    ///
    /// Degenerate requests (`shards` exceeding the reference length) are
    /// clamped by [`shard_boundaries`], so [`Self::shards`] may report
    /// fewer ranges than requested rather than silently empty ones.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn build(graph: GenomeGraph, config: SegramConfig, shards: usize) -> Self {
        let graph = Arc::new(graph);
        let index = GraphIndex::build(&graph, config.scheme, config.bucket_bits);
        let freq_threshold = frequency_threshold(&index, config.discard_frac);
        Self::from_parts(graph, &index, config, freq_threshold, shards)
    }

    /// Shards an already-built monolithic index (e.g. one loaded from a
    /// persisted `.sgi` file) without re-running the index pass.
    /// `freq_threshold` must be the global threshold that accompanied
    /// `index` — the persisted value, or
    /// [`frequency_threshold`](segram_index::frequency_threshold) over the
    /// monolithic index.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn from_parts(
        graph: Arc<GenomeGraph>,
        index: &GraphIndex,
        config: SegramConfig,
        freq_threshold: u32,
        shards: usize,
    ) -> Self {
        assert!(shards > 0, "at least one shard");
        let boundaries = shard_boundaries(graph.total_chars(), shards);
        let shard_indexes = index.split_by_ranges(&graph, &boundaries);
        let shards = shard_indexes
            .into_iter()
            .enumerate()
            .map(|(id, shard_index)| IndexShard {
                id,
                start: boundaries[id],
                end: boundaries[id + 1],
                mapper: Arc::new(SegramMapper::from_parts(
                    Arc::clone(&graph),
                    shard_index,
                    config,
                    freq_threshold,
                )),
                seed_hits: AtomicU64::new(0),
                regions: AtomicU64::new(0),
                wins: AtomicU64::new(0),
            })
            .collect();
        Self {
            graph,
            config,
            freq_threshold,
            boundaries,
            shards,
            lineage: None,
        }
    }

    /// Shards a persisted store, keeping its changelog lineage so later
    /// [`Self::apply_delta`] calls can verify parentage and swap only the
    /// dirty shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn from_persisted(persisted: PersistedIndex, config: SegramConfig, shards: usize) -> Self {
        let identity = persisted.identity();
        let mut sharded = Self::from_parts(
            Arc::new(persisted.graph),
            &persisted.index,
            config,
            persisted.freq_threshold,
            shards,
        );
        sharded.lineage = persisted.changelog.map(|log| StoreLineage {
            epoch: log.epoch,
            identity,
            reference: log.reference,
            applied: log.applied,
        });
        sharded
    }

    /// The lineage carried from the persisted store, when there is one.
    pub fn lineage(&self) -> Option<&StoreLineage> {
        self.lineage.as_ref()
    }

    /// Builds the successor [`ShardedIndex`] for a store delta, rebuilding
    /// **only** the shards whose coordinate range the delta touched.
    ///
    /// `new` must be the direct child of the store this index was loaded
    /// from: its changelog's `parent` must name this lineage's identity
    /// (else [`PersistError::ParentMismatch`]) and its epoch must be
    /// exactly one ahead (else [`PersistError::EpochSkew`]). The caller
    /// (the serve RELOAD path) falls back to a full re-shard on any error.
    ///
    /// The old shard boundaries are translated into the new coordinate
    /// space *through the carried nodes*, so a clean shard's location set
    /// is exactly its old one (node ids translated where fresh nodes
    /// shifted them) and no location is ever duplicated into — or lost
    /// between — a clean and a rebuilt shard. Untouched shards with an
    /// identity translation share the predecessor's mapper allocation
    /// outright; the router's merged output is byte-identical to a full
    /// re-shard either way.
    pub fn apply_delta(
        &self,
        new: &PersistedIndex,
    ) -> Result<(Self, DeltaSwapReport), PersistError> {
        let lineage = self.lineage.as_ref().ok_or(PersistError::NoChangelog)?;
        let new_log = new.changelog.as_ref().ok_or(PersistError::NoChangelog)?;
        if new_log.parent != lineage.identity {
            return Err(PersistError::ParentMismatch {
                expected: lineage.identity,
                found: new_log.parent,
            });
        }
        if new_log.epoch != lineage.epoch + 1 {
            return Err(PersistError::EpochSkew {
                expected: lineage.epoch + 1,
                found: new_log.epoch,
            });
        }
        let corrupt = |detail: String| PersistError::Corrupt {
            section: "changelog",
            detail,
        };
        if lineage.reference != new_log.reference {
            return Err(corrupt("reference changed between epochs".into()));
        }
        if *new.index.scheme() != self.config.scheme
            || new.index.bucket_bits() != self.config.bucket_bits
        {
            return Err(corrupt("minimizer scheme changed between epochs".into()));
        }
        // Replay both constructions to recover the coordinate metadata the
        // diff needs, verifying each replay against the graph actually
        // loaded — a delta is only trusted against proven lineage.
        let built_old = build_graph(&lineage.reference, lineage.applied.clone())
            .map_err(|e| corrupt(format!("lineage does not rebuild: {e}")))?;
        if !graphs_identical(&built_old.graph, &self.graph) {
            return Err(corrupt(
                "lineage does not reconstruct the active graph".into(),
            ));
        }
        let built_new = build_graph(&new_log.reference, new_log.applied.clone())
            .map_err(|e| corrupt(format!("child changelog does not rebuild: {e}")))?;
        if !graphs_identical(&built_new.graph, &new.graph) {
            return Err(corrupt(
                "child changelog does not reconstruct its graph".into(),
            ));
        }
        let log = diff_graphs(&built_old, &built_new);
        let new_graph = Arc::new(new.graph.clone());

        let new_boundaries = self.translate_boundaries(&log, &new_graph);
        let fresh_new = log.fresh_linear(&new_graph);
        let dropped_old = merge_ranges(
            log.dropped
                .iter()
                .map(|&n| {
                    let start = self.graph.char_start(n);
                    (start, start + self.graph.node_len(n) as u64)
                })
                .collect(),
        );
        let carried_map = log.carried_map(self.graph.node_count());

        enum Plan {
            Dirty,
            Shared,
            Remapped(GraphIndex),
        }
        let plans: Vec<Plan> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let old_range = (self.boundaries[i], self.boundaries[i + 1]);
                let new_range = (new_boundaries[i], new_boundaries[i + 1]);
                let touched = fresh_new.iter().any(|&r| ranges_intersect(r, new_range))
                    || dropped_old.iter().any(|&r| ranges_intersect(r, old_range));
                if touched {
                    return Plan::Dirty;
                }
                if shard.mapper.index().remap_is_identity(&carried_map) {
                    return Plan::Shared;
                }
                match shard.mapper.index().remap_nodes(&carried_map) {
                    Some(idx) => Plan::Remapped(idx),
                    None => Plan::Dirty,
                }
            })
            .collect();
        // Only dirty shards pay for a partition of the new index: each is
        // extracted alone, so the clean shards' locations are never
        // re-bucketed at all.
        let mut rebuilt: Vec<Option<GraphIndex>> = plans
            .iter()
            .enumerate()
            .map(|(i, plan)| match plan {
                Plan::Dirty => Some(new.index.extract_shard(&new_graph, &new_boundaries, i)),
                _ => None,
            })
            .collect();

        let mut report = DeltaSwapReport {
            epoch: new_log.epoch,
            ..DeltaSwapReport::default()
        };
        let shards: Vec<IndexShard> = plans
            .into_iter()
            .enumerate()
            .map(|(i, plan)| {
                let mapper = match plan {
                    Plan::Shared => {
                        report.shared += 1;
                        Arc::clone(&self.shards[i].mapper)
                    }
                    Plan::Remapped(idx) => {
                        report.remapped += 1;
                        Arc::new(SegramMapper::from_parts(
                            Arc::clone(&new_graph),
                            idx,
                            self.config,
                            new.freq_threshold,
                        ))
                    }
                    Plan::Dirty => {
                        report.dirty += 1;
                        let idx = rebuilt[i].take().expect("split computed for dirty shards");
                        Arc::new(SegramMapper::from_parts(
                            Arc::clone(&new_graph),
                            idx,
                            self.config,
                            new.freq_threshold,
                        ))
                    }
                };
                IndexShard {
                    id: i,
                    start: new_boundaries[i],
                    end: new_boundaries[i + 1],
                    mapper,
                    seed_hits: AtomicU64::new(0),
                    regions: AtomicU64::new(0),
                    wins: AtomicU64::new(0),
                }
            })
            .collect();

        Ok((
            Self {
                graph: new_graph,
                config: self.config,
                freq_threshold: new.freq_threshold,
                boundaries: new_boundaries,
                shards,
                lineage: Some(StoreLineage {
                    epoch: new_log.epoch,
                    identity: new.identity(),
                    reference: new_log.reference.clone(),
                    applied: new_log.applied.clone(),
                }),
            },
            report,
        ))
    }

    /// Maps the old shard boundaries into the new graph's coordinate
    /// space: each boundary lands at the new position of the first carried
    /// character at or after it (cutting carried nodes at the same
    /// offset), so for every carried seed location *old shard membership
    /// and new shard membership agree* — the invariant that lets clean and
    /// rebuilt shards partition the new index without overlap or gaps.
    fn translate_boundaries(&self, log: &ChangeLog, new_graph: &GenomeGraph) -> Vec<u64> {
        let old_graph = self.graph.as_ref();
        let new_total = new_graph.total_chars();
        let old_ends: Vec<u64> = log
            .carried
            .iter()
            .map(|&(o, _)| old_graph.char_start(o) + old_graph.node_len(o) as u64)
            .collect();
        let translate = |b: u64| -> u64 {
            // First carried node whose footprint ends past `b`: the node
            // containing `b`, or the first one after the gap `b` sits in.
            let i = old_ends.partition_point(|&e| e <= b);
            match log.carried.get(i) {
                Some(&(old, new)) => {
                    let old_start = old_graph.char_start(old);
                    let new_start = new_graph.char_start(new);
                    if old_start <= b {
                        new_start + (b - old_start)
                    } else {
                        new_start
                    }
                }
                None => new_total,
            }
        };
        let mut boundaries = Vec::with_capacity(self.boundaries.len());
        boundaries.push(0);
        for &b in &self.boundaries[1..self.boundaries.len() - 1] {
            let prev = *boundaries.last().expect("non-empty");
            boundaries.push(translate(b).clamp(prev, new_total));
        }
        boundaries.push(new_total);
        boundaries
    }

    /// The shards, in coordinate order.
    pub fn shards(&self) -> &[IndexShard] {
        &self.shards
    }

    /// The shared reference graph all shards map against.
    pub fn shared_graph(&self) -> Arc<GenomeGraph> {
        Arc::clone(&self.graph)
    }

    /// The shared configuration.
    pub fn config(&self) -> &SegramConfig {
        &self.config
    }

    /// The global frequency-filter threshold (identical to the monolithic
    /// mapper's, by construction).
    pub fn freq_threshold(&self) -> u32 {
        self.freq_threshold
    }

    /// The shard owning linear coordinate `linear`.
    pub fn shard_of(&self, linear: u64) -> usize {
        let inner = &self.boundaries[1..self.boundaries.len() - 1];
        inner
            .partition_point(|&b| b <= linear)
            .min(self.shards.len() - 1)
    }

    /// The seeding-stage router over this index's shards.
    pub fn router(&self) -> ShardRouter<'_> {
        ShardRouter::new(
            self.graph.as_ref(),
            &self.shards,
            self.config.error_rate,
            self.freq_threshold,
        )
    }

    /// Assembles the sharded pipeline: the router as the seeding stage,
    /// the default prefilter/aligner after the merge — so everything past
    /// seeding is exactly the monolithic path.
    pub fn pipeline(&self) -> MapPipeline<'_, ShardRouter<'_>, SpecPrefilter, BitAlignStage> {
        MapPipeline::new(
            self.graph.as_ref(),
            self.router(),
            SpecPrefilter::new(self.config.prefilter),
            BitAlignStage::new(&self.config),
            self.config,
        )
    }

    /// Per-shard memory loads (the inputs to worker-affinity placement).
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shards.iter().map(IndexShard::memory_bytes).collect()
    }

    /// Snapshot of every shard's occupancy counters.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(IndexShard::stats).collect()
    }

    /// Resets the per-shard occupancy counters (between engine runs).
    pub fn reset_shard_stats(&self) {
        for shard in &self.shards {
            shard.seed_hits.store(0, Ordering::Relaxed);
            shard.regions.store(0, Ordering::Relaxed);
            shard.wins.store(0, Ordering::Relaxed);
        }
    }

    /// Max-over-mean imbalance of per-shard seed hits since the last
    /// reset (1.0 = perfectly balanced seeding load).
    pub fn seed_imbalance(&self) -> f64 {
        let hits: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.seed_hits.load(Ordering::Relaxed))
            .collect();
        load_imbalance(&hits)
    }

    fn attribute_win(&self, mapping: &Mapping) {
        if let Ok(linear) = self.graph.linear_pos(mapping.region.seed) {
            self.shards[self.shard_of(linear)].record_win();
        }
    }
}

impl ReadMapper for ShardedIndex {
    fn graph(&self) -> &GenomeGraph {
        self.graph.as_ref()
    }

    fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
        let (mapping, stats) = self.pipeline().map_read(read);
        if let Some(m) = &mapping {
            self.attribute_win(m);
        }
        (mapping, stats)
    }

    fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, segram_sim::Strand)>, MapStats) {
        let (best, stats) = self.pipeline().map_read_both(read);
        if let Some((m, _)) = &best {
            self.attribute_win(m);
        }
        (best, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_sim::DatasetConfig;

    fn setup(shards: usize) -> (segram_sim::Dataset, SegramMapper, ShardedIndex) {
        let dataset = DatasetConfig::tiny(61).illumina(100);
        let config = SegramConfig::short_reads();
        let mono = SegramMapper::new(dataset.graph().clone(), config);
        let sharded = ShardedIndex::build(dataset.graph().clone(), config, shards);
        (dataset, mono, sharded)
    }

    #[test]
    fn sharded_seeding_equals_monolithic_seeding() {
        let (dataset, mono, sharded) = setup(4);
        let router = sharded.router();
        use crate::pipeline::Seeder;
        for read in &dataset.reads {
            let a = mono.seed(&read.seq);
            let b = router.seed(&read.seq);
            assert_eq!(a.regions, b.regions);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn sharded_mapping_equals_monolithic_mapping() {
        for shards in [1usize, 2, 3, 4] {
            let (dataset, mono, sharded) = setup(shards);
            for read in &dataset.reads {
                let (a, a_stats) = mono.map_read(&read.seq);
                let (b, b_stats) = sharded.map_read(&read.seq);
                assert_eq!(a, b, "shards {shards}");
                assert_eq!(a_stats.regions_aligned, b_stats.regions_aligned);
                assert_eq!(a_stats.seed_locations, b_stats.seed_locations);
            }
        }
    }

    #[test]
    fn shard_index_partition_is_exact() {
        let (_, mono, sharded) = setup(4);
        let total: usize = sharded
            .shards()
            .iter()
            .map(|s| s.mapper().index().total_locations())
            .sum();
        assert_eq!(total, mono.index().total_locations());
        assert_eq!(sharded.freq_threshold(), mono.freq_threshold());
        // Ranges tile the coordinate space.
        let shards = sharded.shards();
        assert_eq!(shards[0].range().0, 0);
        assert_eq!(shards.last().unwrap().range().1, mono.graph().total_chars());
        for w in shards.windows(2) {
            assert_eq!(w[0].range().1, w[1].range().0);
        }
    }

    #[test]
    fn shard_counters_track_seeding_load() {
        let (dataset, _, sharded) = setup(3);
        for read in dataset.reads.iter().take(8) {
            let _ = sharded.map_read(&read.seq);
        }
        let stats = sharded.shard_stats();
        let hits: u64 = stats.iter().map(|s| s.seed_hits).sum();
        let wins: u64 = stats.iter().map(|s| s.wins).sum();
        assert!(hits > 0, "router must record seed hits");
        assert!(wins > 0, "mapped reads must attribute a winning shard");
        assert!(sharded.seed_imbalance() >= 1.0);
        sharded.reset_shard_stats();
        assert!(sharded.shard_stats().iter().all(|s| s.seed_hits == 0));
    }

    #[test]
    fn shard_of_respects_boundaries() {
        let (_, _, sharded) = setup(4);
        for (i, shard) in sharded.shards().iter().enumerate() {
            let (start, end) = shard.range();
            if end > start {
                assert_eq!(sharded.shard_of(start), i);
                assert_eq!(sharded.shard_of(end - 1), i);
            }
        }
    }

    #[test]
    fn seed_imbalance_tracks_recorded_hits_exactly() {
        let (_, _, sharded) = setup(3);
        // No hits recorded yet: the all-zero degenerate case reports 1.0
        // (perfectly balanced), not a division by zero.
        assert_eq!(sharded.seed_imbalance(), 1.0);
        for shard in sharded.shards() {
            shard.record_seed_hits(30);
        }
        assert!((sharded.seed_imbalance() - 1.0).abs() < 1e-9);
        // Skew one shard: hits become [90, 30, 30] -> max 90 / mean 50.
        sharded.shards()[0].record_seed_hits(60);
        assert!((sharded.seed_imbalance() - 1.8).abs() < 1e-9);
        // Reset restores the balanced baseline.
        sharded.reset_shard_stats();
        assert_eq!(sharded.seed_imbalance(), 1.0);
    }

    #[test]
    fn shard_stats_snapshot_mirrors_recorded_counters() {
        let (_, _, sharded) = setup(2);
        sharded.shards()[1].record_seed_hits(5);
        sharded.shards()[1].record_region();
        sharded.shards()[1].record_region();
        let stats = sharded.shard_stats();
        assert_eq!(stats[0].seed_hits, 0);
        assert_eq!(stats[1].seed_hits, 5);
        assert_eq!(stats[1].regions, 2);
        assert_eq!(stats[1].wins, 0);
        // The snapshot carries the shard's identity and range.
        assert_eq!(stats[1].shard, 1);
        assert_eq!((stats[1].start, stats[1].end), sharded.shards()[1].range());
    }

    #[test]
    fn balance_loads_places_every_item_once() {
        let placement = balance_loads(&[50, 30, 20, 15, 10, 8], 3);
        assert_eq!(placement.len(), 3);
        let mut seen: Vec<usize> = placement.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        // Largest-first: 50 alone beats any pair from the tail.
        let totals: Vec<u64> = placement
            .iter()
            .map(|bin| bin.iter().map(|&i| [50u64, 30, 20, 15, 10, 8][i]).sum())
            .collect();
        assert!(load_imbalance(&totals) < 1.35);
    }

    #[test]
    fn load_imbalance_degenerate_cases() {
        assert_eq!(load_imbalance(&[]), 1.0);
        assert_eq!(load_imbalance(&[0, 0]), 1.0);
        assert_eq!(load_imbalance(&[5, 5, 5]), 1.0);
        assert!(load_imbalance(&[10, 0]) > 1.9);
    }
}
