#!/usr/bin/env bash
# Multi-stage CI gate for the SeGraM reproduction workspace.
#
# Fully offline by construction: every dependency is a workspace path
# dependency (see segram-testkit), so this script must succeed on a
# machine with no network access and no crates.io cache. `--locked`
# enforces that the committed Cargo.lock stays authoritative.
#
# Tiers (each timed; a failure names its tier):
#   1. build            cargo build --release --locked
#   2. test             cargo test -q --locked
#   3. fmt              cargo fmt --check
#   4. clippy           cargo clippy --all-targets -- -D warnings
#   5. bench-smoke      engine + sharding benches, 3 samples each,
#                       emitting the BENCH_smoke.json artifact
#   6. determinism      segram map output diffed across --threads 1 vs 4
#   7. shard-determinism  segram map output diffed across --shards 1 vs 4,
#                       crossed with --threads 1 vs 4
#   8. elastic-shards   `--schedule elastic` (per-shard-group worker pools,
#                       routed batches, live rebalancing) diffed against
#                       the default fanout schedule across --shards 1 vs 4
#                       crossed with --threads 1 vs 4
#   9. backend-matrix   all four backends (segram/graphaligner/vg/hga)
#                       through the engine, each diffed across
#                       --threads 1 vs 4
#  10. overlapped-io    the framer -> worker-decode -> writer-thread path:
#                       all four backends diffed across --threads 1 vs 8
#                       (SAM and GAF), the high-thread-count stress of the
#                       overlapped pipeline's ordering guarantee
#  11. compressed-io   BGZF input end to end: the FASTQ is re-compressed
#                      with `segram bgzip` (the in-tree DEFLATE encoder,
#                      both fixed and stored modes) and mapped through all
#                      four backends x sam/gaf x --threads 1/8, each run
#                      diffed byte-for-byte against its plain-input twin
#  12. persistent-serve `segram index build` -> `map --index` diffed against
#                       `map --graph`, then a live `segram serve` daemon:
#                       concurrent requests (one cancelled mid-payload)
#                       diffed against one-shot output, clean shutdown
#  13. serve-qos        QoS scheduling + hot reload under load: bulk
#                       requests saturate the workers while interactive
#                       requests overtake them (per-class queueing-delay
#                       ordering asserted from the exit report), a RELOAD
#                       swaps the index mid-run with zero failed requests,
#                       and every reply byte-diffs against its one-shot
#  14. incremental-index the versioned store lifecycle: `index build` v1 ->
#                       `index update` with a delta VCF -> payload identity
#                       against a scratch build over the combined VCF
#                       (inspect checksums + map byte-diff, flat and
#                       sharded), then a live sharded daemon RELOADed onto
#                       the delta store: the swap must take the dirty-shard
#                       route (mode=delta, dirty < total), serve the new
#                       epoch byte-identically, and fail nothing
set -euo pipefail
cd "$(dirname "$0")"

# Runs one named tier, reporting its duration; failures abort with the
# tier name so CI logs are diagnosable at a glance.
tier() {
    local name="$1"
    shift
    local start=$SECONDS
    echo "== tier: $name =="
    if ! "$@"; then
        echo "FAIL: tier '$name' failed after $((SECONDS - start))s"
        exit 1
    fi
    echo "-- tier '$name' OK in $((SECONDS - start))s"
}

tier build cargo build --release --locked
tier test cargo test -q --locked
tier fmt cargo fmt --check
tier clippy cargo clippy --all-targets --locked -- -D warnings

# ---------------------------------------------------------------------------
# Bench smoke: the benchmark binaries must still build and run. Three
# samples per benchmark (SEGRAM_BENCH_SAMPLES) keep this tier fast while
# giving the min-of-samples a little noise rejection; the per-benchmark
# results land in BENCH_smoke.json for CI artifact upload.
# ---------------------------------------------------------------------------
bench_smoke() {
    cargo build --release --locked -p segram-bench || return 1
    local jsonl="$GATE_DIR/bench.jsonl"
    rm -f "$jsonl" BENCH_smoke.json
    SEGRAM_BENCH_SAMPLES=3 SEGRAM_BENCH_JSON="$jsonl" \
        cargo bench -q -p segram-bench --locked \
        --bench engine --bench sharding --bench persist_serve \
        --bench index_update \
        || return 1
    [ -s "$jsonl" ] || { echo "bench run emitted no JSON lines"; return 1; }
    {
        echo '{"benches":['
        paste -sd, - < "$jsonl"
        echo ']}'
    } > BENCH_smoke.json
    echo "  wrote BENCH_smoke.json ($(wc -l < "$jsonl") benchmarks)"
}

GATE_DIR="$(mktemp -d)"
trap 'rm -rf "$GATE_DIR"' EXIT
SEGRAM=target/release/segram

tier bench-smoke bench_smoke

# ---------------------------------------------------------------------------
# End-to-end determinism gates. The MapEngine numbers batches and releases
# them to the output writer in input order, and the sharded path's seeding
# router merges per-shard hits back into the monolithic candidate order —
# so SAM/GAF bytes cannot depend on --threads or --shards.
# ---------------------------------------------------------------------------
map_once() { # out-file, then extra flags
    local out="$1"
    shift
    "$SEGRAM" map --graph "$GATE_DIR/ds.gfa" --reads "$GATE_DIR/ds.fq" \
        --both-strands --output "$out" "$@" > /dev/null
}

determinism_threads() {
    "$SEGRAM" simulate --out-prefix "$GATE_DIR/ds" \
        --length 30000 --reads 16 --read-len 120 --seed 5 > /dev/null || return 1
    local fmt
    for fmt in sam gaf; do
        map_once "$GATE_DIR/t1.$fmt" --format "$fmt" --threads 1 || return 1
        map_once "$GATE_DIR/t4.$fmt" --format "$fmt" --threads 4 || return 1
        diff "$GATE_DIR/t1.$fmt" "$GATE_DIR/t4.$fmt" \
            || { echo "$fmt output differs between --threads 1 and 4"; return 1; }
        echo "  $fmt: identical across --threads 1/4"
    done
}

determinism_shards() {
    # A larger simulated genome so 4 coordinate-range shards (the software
    # stand-ins for per-chromosome/per-channel slices) each hold a
    # non-trivial piece of the index, with reads landing in all of them.
    "$SEGRAM" simulate --out-prefix "$GATE_DIR/ds" \
        --length 60000 --reads 24 --read-len 120 --seed 11 > /dev/null || return 1
    local fmt threads
    for fmt in sam gaf; do
        map_once "$GATE_DIR/s1.$fmt" --format "$fmt" --threads 1 --shards 1 || return 1
        for threads in 1 4; do
            map_once "$GATE_DIR/s4t$threads.$fmt" \
                --format "$fmt" --threads "$threads" --shards 4 || return 1
            diff "$GATE_DIR/s1.$fmt" "$GATE_DIR/s4t$threads.$fmt" \
                || { echo "$fmt output differs for --shards 4 --threads $threads"; return 1; }
        done
        echo "  $fmt: identical across --shards 1/4 x --threads 1/4"
    done
}

elastic_shards() {
    # Same 60 kb dataset as shard-determinism. The elastic schedule —
    # per-shard-group worker pools, batches routed by dominant shard
    # group, shard ownership rebalanced live from seed-hit counters —
    # must produce bytes identical to the default fanout schedule for
    # every shards x threads combination, in both output formats.
    "$SEGRAM" simulate --out-prefix "$GATE_DIR/ds" \
        --length 60000 --reads 24 --read-len 120 --seed 11 > /dev/null || return 1
    local fmt shards threads
    for fmt in sam gaf; do
        map_once "$GATE_DIR/fan.$fmt" --format "$fmt" --threads 1 || return 1
        for shards in 1 4; do
            for threads in 1 4; do
                map_once "$GATE_DIR/el-s$shards-t$threads.$fmt" \
                    --format "$fmt" --threads "$threads" --shards "$shards" \
                    --schedule elastic || return 1
                diff "$GATE_DIR/fan.$fmt" "$GATE_DIR/el-s$shards-t$threads.$fmt" \
                    || { echo "$fmt differs: --schedule elastic --shards $shards --threads $threads"
                         return 1; }
            done
        done
        echo "  $fmt: elastic identical to fanout across --shards 1/4 x --threads 1/4"
    done
}

tier determinism determinism_threads
tier shard-determinism determinism_shards
tier elastic-shards elastic_shards

# ---------------------------------------------------------------------------
# Backend matrix: every pluggable backend rides the same engine, so each
# backend's output must be byte-identical across thread counts too (the
# end-to-end half of the differential test in
# crates/core/tests/backend_props.rs). Small dataset: the hga backend runs
# whole-graph DP per read.
# ---------------------------------------------------------------------------
# Shared sweep: maps dataset prefix $1 through all four backends x
# sam/gaf at thread counts $2 and $3, diffing each pair — used by both
# the backend-matrix and overlapped-io tiers so the two stay in sync.
backend_sweep() {
    local data="$1" lo="$2" hi="$3"
    local backend fmt threads
    for backend in segram graphaligner vg hga; do
        for fmt in sam gaf; do
            for threads in "$lo" "$hi"; do
                "$SEGRAM" map --graph "$data.gfa" --reads "$data.fq" \
                    --backend "$backend" --format "$fmt" --threads "$threads" \
                    --output "$data-$backend-t$threads.$fmt" > /dev/null || return 1
            done
            diff "$data-$backend-t$lo.$fmt" "$data-$backend-t$hi.$fmt" \
                || { echo "backend $backend $fmt differs between --threads $lo and $hi"; return 1; }
        done
        echo "  $backend: sam+gaf identical across --threads $lo/$hi"
    done
}

backend_matrix() {
    "$SEGRAM" simulate --out-prefix "$GATE_DIR/bm" \
        --length 20000 --reads 10 --read-len 100 --seed 13 > /dev/null || return 1
    backend_sweep "$GATE_DIR/bm" 1 4
}

tier backend-matrix backend_matrix

# ---------------------------------------------------------------------------
# Overlapped-IO gate: `segram map` now frames raw records on the producer,
# decodes FASTQ in the worker stage, and renders+writes on a dedicated
# writer thread fed by an ordered bounded channel. None of that may change
# a single output byte, at any thread count, for any backend — 8 threads
# (more workers than this dataset has batches on small runs) is the
# stress case for the reorder-buffer -> writer-channel handoff.
# ---------------------------------------------------------------------------
overlapped_io() {
    "$SEGRAM" simulate --out-prefix "$GATE_DIR/ov" \
        --length 20000 --reads 12 --read-len 100 --seed 31 > /dev/null || return 1
    backend_sweep "$GATE_DIR/ov" 1 8
}

tier overlapped-io overlapped_io

# ---------------------------------------------------------------------------
# Compressed-IO gate: production-shaped input. The simulated FASTQ is
# BGZF-compressed with `segram bgzip` — the in-tree DEFLATE encoder, in
# both fixed-Huffman and stored modes, with small blocks so records
# straddle member boundaries — and `segram map` auto-detects the magic
# bytes and inflates in the worker stage. Every backend x format x
# thread-count run must produce bytes identical to its plain-input twin;
# a corrupted stream must fail with a named error and remove its output.
# ---------------------------------------------------------------------------
compressed_io() {
    local d="$GATE_DIR/cz"
    "$SEGRAM" simulate --out-prefix "$d" \
        --length 20000 --reads 12 --read-len 100 --seed 37 > /dev/null || return 1
    local mode backend fmt threads
    for mode in fixed stored; do
        "$SEGRAM" bgzip --input "$d.fq" --output "$d-$mode.fq.gz" \
            --block-bytes 512 --mode "$mode" > /dev/null || return 1
    done
    for backend in segram graphaligner vg hga; do
        for fmt in sam gaf; do
            for threads in 1 8; do
                "$SEGRAM" map --graph "$d.gfa" --reads "$d.fq" \
                    --backend "$backend" --format "$fmt" --threads "$threads" \
                    --output "$d-plain.$fmt" > /dev/null || return 1
                for mode in fixed stored; do
                    "$SEGRAM" map --graph "$d.gfa" --reads "$d-$mode.fq.gz" \
                        --backend "$backend" --format "$fmt" --threads "$threads" \
                        --output "$d-$mode.$fmt" > /dev/null || return 1
                    diff "$d-plain.$fmt" "$d-$mode.$fmt" \
                        || { echo "backend $backend $fmt differs: BGZF($mode) vs plain at --threads $threads"
                             return 1; }
                done
            done
        done
        echo "  $backend: BGZF(fixed+stored) identical to plain, sam+gaf x --threads 1/8"
    done

    # Corruption must fail mid-stream with the named class, exit 1, and
    # no partial output left behind.
    head -c 600 "$d-stored.fq.gz" > "$d-trunc.fq.gz"
    if "$SEGRAM" map --graph "$d.gfa" --reads "$d-trunc.fq.gz" \
        --output "$d-trunc.sam" > /dev/null 2> "$d-trunc.err"; then
        echo "truncated BGZF input mapped successfully"; return 1
    fi
    grep -q "truncated inside a BGZF block" "$d-trunc.err" \
        || { echo "truncation error not named:"; cat "$d-trunc.err"; return 1; }
    [ ! -e "$d-trunc.sam" ] \
        || { echo "partial output left behind after BGZF failure"; return 1; }
    echo "  corruption: named error, exit 1, no orphaned output"
}

tier compressed-io compressed_io

# ---------------------------------------------------------------------------
# Persistent-index + serve gate: `segram index build` writes the graph and
# index to a .sgi once; `segram map --index` must produce bytes identical
# to `map --graph`; and a live `segram serve` daemon must answer
# concurrent requests with those same bytes while a third client
# disconnects mid-payload (cancelling only its own request), then shut
# down cleanly on QUIT.
# ---------------------------------------------------------------------------
serve_gate() {
    local d="$GATE_DIR/sv"
    "$SEGRAM" simulate --out-prefix "$d" \
        --length 30000 --reads 12 --read-len 120 --seed 17 > /dev/null || return 1
    "$SEGRAM" index build --reference "$d.fa" --vcf "$d.vcf" \
        --output "$d.sgi" > /dev/null || return 1

    local fmt
    for fmt in sam gaf; do
        "$SEGRAM" map --graph "$d.gfa" --reads "$d.fq" --format "$fmt" \
            --output "$d-graph.$fmt" > /dev/null || return 1
        "$SEGRAM" map --index "$d.sgi" --reads "$d.fq" --format "$fmt" \
            --output "$d-index.$fmt" > /dev/null || return 1
        diff "$d-graph.$fmt" "$d-index.$fmt" \
            || { echo "$fmt differs between map --graph and map --index"; return 1; }
        echo "  $fmt: map --index identical to map --graph"
    done

    "$SEGRAM" serve --index "$d.sgi" --addr 127.0.0.1:0 \
        --addr-file "$d.addr" --threads 2 --quiet > "$d.serve.log" 2>&1 &
    local daemon=$!
    local addr="" i
    for i in $(seq 1 300); do
        [ -s "$d.addr" ] && { addr="$(tr -d '\n' < "$d.addr")"; break; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "daemon never wrote $d.addr"
                        kill "$daemon" 2> /dev/null || true; return 1; }

    # Two full requests and one mid-payload disconnect, all in flight at
    # once: the survivors must still diff clean against the one-shot run.
    "$SEGRAM" request --addr "$addr" --reads "$d.fq" --format sam \
        --output "$d-serve.sam" > /dev/null &
    local req_sam=$!
    "$SEGRAM" request --addr "$addr" --reads "$d.fq" --format gaf \
        --output "$d-serve.gaf" > /dev/null &
    local req_gaf=$!
    "$SEGRAM" request --addr "$addr" --reads "$d.fq" --cancel-after 100 \
        > /dev/null \
        || { echo "cancel-after request failed"
             kill "$daemon" 2> /dev/null || true; return 1; }
    wait "$req_sam" || { echo "concurrent sam request failed"
                         kill "$daemon" 2> /dev/null || true; return 1; }
    wait "$req_gaf" || { echo "concurrent gaf request failed"
                         kill "$daemon" 2> /dev/null || true; return 1; }
    for fmt in sam gaf; do
        diff "$d-index.$fmt" "$d-serve.$fmt" \
            || { echo "served $fmt differs from one-shot map --index"
                 kill "$daemon" 2> /dev/null || true; return 1; }
        echo "  $fmt: served bytes identical to one-shot map --index"
    done

    "$SEGRAM" request --addr "$addr" --shutdown > /dev/null \
        || { echo "shutdown request failed"
             kill "$daemon" 2> /dev/null || true; return 1; }
    wait "$daemon" || { echo "daemon exited non-zero"; return 1; }
    grep -q "served" "$d.serve.log" \
        || { echo "daemon report missing from $d.serve.log"; return 1; }
    echo "  daemon: $(grep 'served' "$d.serve.log")"
}

tier persistent-serve serve_gate

# ---------------------------------------------------------------------------
# Serve QoS + hot-reload gate. Two bulk clients stack many batches on the
# daemon while interactive clients arrive late and must overtake them: the
# exit report's per-class queueing-delay percentiles have to show
# interactive p95 strictly below bulk p50. Mid-run a RELOAD swaps the
# index to a second bundle: requests opened before the swap (the bulk
# clients) must still byte-match the old index's one-shot, requests opened
# after it must byte-match the new one, and nothing may fail.
# ---------------------------------------------------------------------------
serve_qos() {
    local a="$GATE_DIR/qa" b="$GATE_DIR/qb"
    "$SEGRAM" simulate --out-prefix "$a" \
        --length 30000 --reads 12 --read-len 120 --seed 19 > /dev/null || return 1
    "$SEGRAM" simulate --out-prefix "$b" \
        --length 30000 --reads 12 --read-len 120 --seed 23 > /dev/null || return 1
    "$SEGRAM" index build --reference "$a.fa" --vcf "$a.vcf" \
        --output "$a.sgi" > /dev/null || return 1
    "$SEGRAM" index build --reference "$b.fa" --vcf "$b.vcf" \
        --output "$b.sgi" > /dev/null || return 1

    # Bulk payload: the A reads concatenated 32x (384 reads = 12 engine
    # batches per request), so bulk requests hold the queue long enough
    # for interactive clients to demonstrably jump ahead.
    local i
    for i in $(seq 1 32); do cat "$a.fq"; done > "$a-bulk.fq"
    "$SEGRAM" map --index "$a.sgi" --reads "$a-bulk.fq" --format sam \
        --output "$a-bulk-want.sam" > /dev/null || return 1
    "$SEGRAM" map --index "$a.sgi" --reads "$a.fq" --format sam \
        --output "$a-want.sam" > /dev/null || return 1
    "$SEGRAM" map --index "$b.sgi" --reads "$b.fq" --format sam \
        --output "$b-want.sam" > /dev/null || return 1

    "$SEGRAM" serve --index "$a.sgi" --addr 127.0.0.1:0 \
        --addr-file "$a.addr" --threads 2 --max-queued 64 --quiet \
        > "$a.serve.log" 2>&1 &
    local daemon=$!
    local addr=""
    for i in $(seq 1 300); do
        [ -s "$a.addr" ] && { addr="$(tr -d '\n' < "$a.addr")"; break; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "daemon never wrote $a.addr"
                        kill "$daemon" 2> /dev/null || true; return 1; }

    # Saturate the workers with two bulk-class clients, then send
    # interactive clients (one with a deadline hint) that must overtake
    # the queued bulk batches.
    "$SEGRAM" request --addr "$addr" --reads "$a-bulk.fq" --priority bulk \
        --output "$a-bulk1.sam" > /dev/null &
    local bulk1=$!
    "$SEGRAM" request --addr "$addr" --reads "$a-bulk.fq" --priority bulk \
        --output "$a-bulk2.sam" > /dev/null &
    local bulk2=$!
    sleep 0.3
    "$SEGRAM" request --addr "$addr" --reads "$a.fq" --priority interactive \
        --retry --output "$a-int1.sam" > /dev/null \
        || { echo "interactive request 1 failed"
             kill "$daemon" 2> /dev/null || true; return 1; }
    "$SEGRAM" request --addr "$addr" --reads "$a.fq" --priority interactive \
        --deadline-ms 50 --output "$a-int2.sam" > /dev/null \
        || { echo "interactive request 2 failed"
             kill "$daemon" 2> /dev/null || true; return 1; }

    # Hot swap to bundle B while the bulk requests are still in flight.
    "$SEGRAM" request --addr "$addr" --reload "$b.sgi" > /dev/null \
        || { echo "reload request failed"
             kill "$daemon" 2> /dev/null || true; return 1; }
    "$SEGRAM" request --addr "$addr" --reads "$b.fq" --format sam \
        --output "$b-got.sam" > /dev/null \
        || { echo "post-reload request failed"
             kill "$daemon" 2> /dev/null || true; return 1; }

    wait "$bulk1" || { echo "bulk request 1 failed"
                       kill "$daemon" 2> /dev/null || true; return 1; }
    wait "$bulk2" || { echo "bulk request 2 failed"
                       kill "$daemon" 2> /dev/null || true; return 1; }
    "$SEGRAM" request --addr "$addr" --shutdown > /dev/null \
        || { echo "shutdown request failed"
             kill "$daemon" 2> /dev/null || true; return 1; }
    wait "$daemon" || { echo "daemon exited non-zero"; return 1; }

    # Byte identity on both sides of the swap: bulk clients opened on A
    # and must match A's one-shot even though they finished after the
    # reload; the post-reload client must match B's one-shot.
    local out
    for out in "$a-bulk1.sam" "$a-bulk2.sam"; do
        diff "$a-bulk-want.sam" "$out" \
            || { echo "bulk reply differs from one-shot map --index"; return 1; }
    done
    for out in "$a-int1.sam" "$a-int2.sam"; do
        diff "$a-want.sam" "$out" \
            || { echo "interactive reply differs from one-shot map --index"; return 1; }
    done
    diff "$b-want.sam" "$b-got.sam" \
        || { echo "post-reload reply differs from new index's one-shot"; return 1; }
    echo "  byte identity holds across the swap (bulk on A, post-reload on B)"

    grep -q "(0 cancelled by clients, 0 refused busy, 0 failed)" "$a.serve.log" \
        || { echo "requests failed during the QoS run:"
             grep "served" "$a.serve.log"; return 1; }
    grep -q "reloads: 1, active index: $b.sgi" "$a.serve.log" \
        || { echo "reload not reflected in the daemon report:"
             grep "reloads" "$a.serve.log" || true; return 1; }

    # The QoS contract under load: interactive queueing delay p95 must sit
    # strictly below bulk p50.
    local int_p95 bulk_p50
    int_p95=$(sed -n 's/.*queueing delay interactive:.* p95us=\([0-9][0-9]*\).*/\1/p' \
        "$a.serve.log")
    bulk_p50=$(sed -n 's/.*queueing delay bulk: [^ ]* p50us=\([0-9][0-9]*\).*/\1/p' \
        "$a.serve.log")
    [ -n "$int_p95" ] && [ -n "$bulk_p50" ] \
        || { echo "per-class queueing-delay lines missing from the report:"
             grep "queueing delay" "$a.serve.log" || true; return 1; }
    [ "$int_p95" -lt "$bulk_p50" ] \
        || { echo "QoS ordering violated: interactive p95=${int_p95}us >= bulk p50=${bulk_p50}us"
             return 1; }
    echo "  interactive p95=${int_p95}us < bulk p50=${bulk_p50}us"
    echo "  daemon: $(grep 'served' "$a.serve.log")"
}

tier serve-qos serve_qos

# ---------------------------------------------------------------------------
# Incremental index gate. The simulated VCF is split in half by position:
# the first half seeds the epoch-0 store, the second half arrives later
# as `index update`'s delta. The updated store must carry the same
# payload identity as a from-scratch build over the full VCF (changelog
# checksums via `index inspect`, plus a map byte-diff both flat and
# sharded), and a live sharded daemon RELOADed onto it must take the
# dirty-shard delta route — swapping strictly fewer shards than it has —
# while every reply stays byte-identical to its one-shot twin.
# ---------------------------------------------------------------------------
incremental_index() {
    local d="$GATE_DIR/ii"
    "$SEGRAM" simulate --out-prefix "$d" \
        --length 30000 --reads 12 --read-len 120 --seed 29 > /dev/null || return 1
    awk -v base="$d-base.vcf" -v delta="$d-delta.vcf" \
        '/^#/ { print > base; print > delta; next }
         { data[++n] = $0 }
         END { mid = int(n / 2)
               for (i = 1; i <= mid; i++) print data[i] > base
               for (i = mid + 1; i <= n; i++) print data[i] > delta }' \
        "$d.vcf" || return 1
    [ -s "$d-base.vcf" ] && [ -s "$d-delta.vcf" ] \
        || { echo "VCF split produced an empty half"; return 1; }

    "$SEGRAM" index build --reference "$d.fa" --vcf "$d-base.vcf" \
        --output "$d-v1.sgi" > /dev/null || return 1
    "$SEGRAM" index update --index "$d-v1.sgi" --vcf "$d-delta.vcf" \
        --output "$d-v2.sgi" > "$d.update.log" || return 1
    grep -q "epoch 1" "$d.update.log" \
        || { echo "update did not advance the epoch:"; cat "$d.update.log"; return 1; }
    grep -q "locations carried" "$d.update.log" \
        || { echo "update report lost its delta counters:"; cat "$d.update.log"; return 1; }
    echo "  $(grep 'touched' "$d.update.log")"

    # Payload identity against the scratch build over the combined VCF:
    # the changelog identity is the fnv1a64 of the encoded GRAPH + INDEX
    # payloads, so equal identities mean byte-equal mapping state.
    "$SEGRAM" index build --reference "$d.fa" --vcf "$d.vcf" \
        --output "$d-scratch.sgi" > /dev/null || return 1
    local id_v2 id_scratch
    id_v2=$("$SEGRAM" index inspect --index "$d-v2.sgi" \
        | sed -n 's/.*changelog: epoch [0-9]*, identity \(0x[0-9a-f]*\),.*/\1/p')
    id_scratch=$("$SEGRAM" index inspect --index "$d-scratch.sgi" \
        | sed -n 's/.*changelog: epoch [0-9]*, identity \(0x[0-9a-f]*\),.*/\1/p')
    [ -n "$id_v2" ] && [ "$id_v2" = "$id_scratch" ] \
        || { echo "updated store identity $id_v2 != scratch $id_scratch"; return 1; }
    echo "  payload identity $id_v2 matches the scratch build"

    # Mapping byte-identity, monolithic and re-sharded.
    local shards
    for shards in 1 4; do
        "$SEGRAM" map --index "$d-v2.sgi" --reads "$d.fq" --format sam \
            --shards "$shards" --output "$d-upd$shards.sam" > /dev/null || return 1
        "$SEGRAM" map --index "$d-scratch.sgi" --reads "$d.fq" --format sam \
            --shards "$shards" --output "$d-scr$shards.sam" > /dev/null || return 1
        diff "$d-upd$shards.sam" "$d-scr$shards.sam" \
            || { echo "updated store maps differently at --shards $shards"; return 1; }
    done

    # Live daemon on v1, sharded; RELOAD onto v2 must take the delta
    # route (v2's parent checksum names the active store) and swap only
    # the dirty shards.
    "$SEGRAM" map --index "$d-v1.sgi" --reads "$d.fq" --format sam \
        --output "$d-v1-want.sam" > /dev/null || return 1
    "$SEGRAM" serve --index "$d-v1.sgi" --addr 127.0.0.1:0 \
        --addr-file "$d.addr" --threads 2 --shards 4 --quiet \
        > "$d.serve.log" 2>&1 &
    local daemon=$! addr="" i
    for i in $(seq 1 300); do
        [ -s "$d.addr" ] && { addr="$(tr -d '\n' < "$d.addr")"; break; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "daemon never wrote $d.addr"
                        kill "$daemon" 2> /dev/null || true; return 1; }

    "$SEGRAM" request --addr "$addr" --reads "$d.fq" --format sam \
        --output "$d-pre.sam" > /dev/null \
        || { echo "pre-reload request failed"
             kill "$daemon" 2> /dev/null || true; return 1; }
    "$SEGRAM" request --addr "$addr" --reload "$d-v2.sgi" > "$d.reload.log" \
        || { echo "reload request failed"
             kill "$daemon" 2> /dev/null || true; return 1; }
    grep -q "mode=delta" "$d.reload.log" \
        || { echo "reload did not take the delta route:"; cat "$d.reload.log"
             kill "$daemon" 2> /dev/null || true; return 1; }
    "$SEGRAM" request --addr "$addr" --reads "$d.fq" --format sam \
        --output "$d-post.sam" > /dev/null \
        || { echo "post-reload request failed"
             kill "$daemon" 2> /dev/null || true; return 1; }
    "$SEGRAM" request --addr "$addr" --shutdown > /dev/null \
        || { echo "shutdown request failed"
             kill "$daemon" 2> /dev/null || true; return 1; }
    wait "$daemon" || { echo "daemon exited non-zero"; return 1; }

    diff "$d-v1-want.sam" "$d-pre.sam" \
        || { echo "pre-reload reply differs from v1's one-shot"; return 1; }
    diff "$d-upd1.sam" "$d-post.sam" \
        || { echo "post-reload reply differs from v2's one-shot"; return 1; }
    grep -q "0 failed)" "$d.serve.log" \
        || { echo "requests failed across the delta reload:"
             grep "served" "$d.serve.log"; return 1; }
    grep -q "reloads: 1, active index: $d-v2.sgi" "$d.serve.log" \
        || { echo "reload not reflected in the daemon report:"
             grep "reloads" "$d.serve.log" || true; return 1; }
    local dirty
    dirty=$(sed -n 's/.*dirty shards swapped: \([0-9][0-9]*\).*/\1/p' "$d.serve.log")
    [ -n "$dirty" ] && [ "$dirty" -ge 1 ] && [ "$dirty" -lt 4 ] \
        || { echo "delta swap did not stay partial (dirty=$dirty of 4):"
             grep "reloads" "$d.serve.log" || true; return 1; }
    echo "  $(grep 'mode=delta' "$d.reload.log")"
    echo "  daemon: $(grep 'reloads:' "$d.serve.log")"
}

tier incremental-index incremental_index

echo "CI OK in ${SECONDS}s"
