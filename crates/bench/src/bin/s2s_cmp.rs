//! **§11.3 sequence-to-sequence accelerator comparison**: BitAlign vs
//! GenASM (regenerated from our cycle model) and vs Darwin-GACT /
//! GenAx-SillaX (paper-reported constants — their simulators are not
//! public; documented substitution).
//!
//! Paper results:
//! * BitAlign vs GenASM: 34.0 k vs 42.3 k cycles for a 10 kbp read — 1.2×
//!   (24 %) faster, from halving the window count (125 vs 250) at modestly
//!   higher per-window cost (272 vs 169 cycles);
//! * BitAlign vs GACT: 4.8× (long reads); vs SillaX: 2.4× (short reads);
//!   GenASM short reads: 1.3×.

use segram_bench::{header, row, write_results};
use segram_hw::BitAlignHwConfig;
use segram_testkit::Serialize;

#[derive(Serialize)]
struct S2sCmp {
    bitalign_cycles_per_window: u64,
    genasm_cycles_per_window: u64,
    bitalign_windows_10kbp: u64,
    genasm_windows_10kbp: u64,
    bitalign_total_cycles_10kbp: u64,
    genasm_total_cycles_10kbp: u64,
    speedup_vs_genasm_long: f64,
    speedup_vs_genasm_short_paper: f64,
    speedup_vs_gact_paper: f64,
    speedup_vs_sillax_paper: f64,
    short_read_cycles: Vec<(usize, u64, u64)>,
}

fn main() {
    let bitalign = BitAlignHwConfig::bitalign();
    let genasm = BitAlignHwConfig::genasm();

    header("BitAlign vs GenASM (regenerated from the cycle model)");
    row(
        "cycles/window",
        format!(
            "BitAlign {} (paper 272) vs GenASM {} (paper 169)",
            bitalign.cycles_per_window(),
            genasm.cycles_per_window()
        ),
    );
    row(
        "windows for a 10 kbp read",
        format!(
            "BitAlign {} (paper 125) vs GenASM {} (paper 250)",
            bitalign.window_count(10_000),
            genasm.window_count(10_000)
        ),
    );
    let b_total = bitalign.cycles_per_alignment(10_000);
    let g_total = genasm.cycles_per_alignment(10_000);
    row(
        "total cycles (10 kbp)",
        format!("BitAlign {b_total} (paper 34.0k) vs GenASM {g_total} (paper 42.3k)"),
    );
    let speedup_long = g_total as f64 / b_total as f64;
    row(
        "long-read speedup",
        format!("{speedup_long:.2}x (paper: 1.2x / 24%)"),
    );

    header("Short-read cycle comparison (model)");
    println!(
        "  {:>9} {:>14} {:>14} {:>9}",
        "read bp", "BitAlign cyc", "GenASM cyc", "speedup"
    );
    let mut short_rows = Vec::new();
    for len in [100usize, 150, 250] {
        let b = bitalign.cycles_per_alignment(len);
        let g = genasm.cycles_per_alignment(len);
        println!(
            "  {:>9} {:>14} {:>14} {:>8.2}x",
            len,
            b,
            g,
            g as f64 / b as f64
        );
        short_rows.push((len, b, g));
    }
    println!("  (paper: 1.3x average for short reads)");

    header("Comparisons using paper-reported baselines");
    println!("  Darwin-GACT and GenAx-SillaX numbers are not reproducible without");
    println!("  their simulators; the paper itself uses 'the numbers reported by");
    println!("  the papers'. We echo those anchors (see DESIGN.md substitutions):");
    row(
        "BitAlign vs GACT (long reads)",
        "4.8x throughput, 2.7x power, 1.5x area (paper)",
    );
    row(
        "BitAlign vs SillaX (short reads)",
        "2.4x throughput (paper)",
    );
    row(
        "BitAlign vs GenASM power/area",
        "7.5x power, 2.6x area (paper; fixed per design)",
    );

    write_results(
        "s2s_cmp",
        &S2sCmp {
            bitalign_cycles_per_window: bitalign.cycles_per_window(),
            genasm_cycles_per_window: genasm.cycles_per_window(),
            bitalign_windows_10kbp: bitalign.window_count(10_000),
            genasm_windows_10kbp: genasm.window_count(10_000),
            bitalign_total_cycles_10kbp: b_total,
            genasm_total_cycles_10kbp: g_total,
            speedup_vs_genasm_long: speedup_long,
            speedup_vs_genasm_short_paper: 1.3,
            speedup_vs_gact_paper: 4.8,
            speedup_vs_sillax_paper: 2.4,
            short_read_cycles: short_rows,
        },
    );
}
