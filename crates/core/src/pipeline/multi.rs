//! The long-lived multi-request mapping engine behind `segram serve`.
//!
//! [`MapEngine`](super::MapEngine) drives **one** stream to completion and
//! returns. A mapping daemon has the opposite shape: the expensive state
//! (graph + index, loaded once from a persistent `.sgi` file) lives for
//! hours, while N short mapping requests arrive, run concurrently, and
//! leave. [`MultiEngine`] is that daemon core: a fixed pool of worker
//! threads multiplexes every open request over one shared
//! [`ReadMapper`], with the properties a server needs:
//!
//! * **Request isolation** — every batch is tagged with its request id;
//!   each request has its own [`CancelToken`], reorder buffer, and ordered
//!   output queue, so concurrent requests never interleave outputs and
//!   cancelling one (say, a disconnected client) leaves the others
//!   untouched. A panic inside one request's mapping is captured as *that
//!   request's* failure; the engine keeps serving.
//! * **QoS scheduling** — every request carries a [`Priority`] class and
//!   an optional deadline hint ([`MultiEngine::open_with`]). Workers pick
//!   the most urgent runnable request: a request past its deadline first
//!   (earliest in rotation among the late), then by priority class, with
//!   round-robin rotation *within* a class so one huge request cannot
//!   starve its peers. A request whose reorder buffer has run `max_ahead`
//!   past its slowest in-flight batch is deprioritized rather than
//!   parking a worker — the queued/in-flight depth bound that also caps
//!   how many lower-priority batches can ever be picked ahead of a
//!   runnable higher-priority one.
//! * **Queueing-delay accounting** — every batch records its enqueue →
//!   worker-pickup delay; [`MultiEngine::queue_delays`] aggregates
//!   p50/p95/p99 per priority class over the engine lifetime and
//!   [`RequestHandle::queue_delay`] reports one request's own percentiles
//!   (the daemon surfaces both).
//! * **Admission control** — the live queued-batch depth (the same
//!   backpressure signal [`QueueStats`] exposes for the single-stream
//!   engine) gates [`MultiEngine::open`]: past `max_queued` the engine
//!   answers [`EngineBusy`] instead of accepting work it would only
//!   queue, including a retry hint derived from the observed drain rate.
//! * **Hot mapper swap** — [`MultiEngine::swap_mapper`] replaces the
//!   shared mapper between requests: every request captures its mapper
//!   `Arc` at open, so in-flight requests finish (and render) against the
//!   old index while new requests map against the new one — the
//!   zero-downtime `RELOAD` hook of `segram serve`.
//! * **Pool routing** (optional, [`MultiEngine::with_routing`]) — the
//!   elastic-schedule analogue for the daemon: workers are partitioned
//!   into pools (worker `w` → pool `w % pools`), a route hook tags each
//!   pushed batch with a preferred pool (e.g. its dominant shard group
//!   via [`ShardRouter::route_hits`](super::ShardRouter::route_hits)),
//!   and workers prefer batches tagged for their own pool, *stealing*
//!   cross-pool only when nothing of their own is runnable — so locality
//!   never costs liveness, and per-request ordering (hence output bytes)
//!   is untouched by where a batch actually ran. [`PoolCounters`] reports
//!   how many batches were routed, spilled, and stolen.
//!
//! Ordering guarantee: within a request, outputs are released strictly in
//! push order, so a request's output is byte-identical to running the same
//! reads through a one-shot [`MapEngine`](super::MapEngine) — `ci.sh`
//! enforces exactly that equivalence through `segram serve`.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use segram_graph::DnaSeq;
use segram_sim::Strand;

use crate::mapper::ReadMapper;

use super::engine::{relock, CancelToken, EngineOptions, EngineReport, ReadOutcome};

/// Tuning knobs of a [`MultiEngine`].
#[derive(Clone, Debug)]
pub struct MultiConfig {
    /// Worker thread count (clamped to at least 1).
    pub threads: usize,
    /// Per-request input-queue capacity in batches (0 = `2 × threads`).
    /// [`RequestHandle::push`] blocks past this, so one producer cannot
    /// buffer its whole stream into the engine.
    pub queue_depth: usize,
    /// Admission limit: when the total queued batches across all open
    /// requests reaches this, [`MultiEngine::open`] refuses with
    /// [`EngineBusy`] (0 = `4 ×` the effective queue depth).
    pub max_queued: usize,
    /// Map each read on both strands and keep the better mapping.
    pub both_strands: bool,
}

impl MultiConfig {
    /// A configuration with `threads` workers and default batching.
    #[deprecated(
        note = "build a shared `EngineOptions` (`EngineOptions::new().threads(n)`) and pass it \
                to the engine constructor instead"
    )]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

impl From<EngineOptions> for MultiConfig {
    fn from(options: EngineOptions) -> Self {
        let (threads, queue_depth, max_queued, both_strands) = options.multi_parts();
        Self {
            threads,
            queue_depth,
            max_queued,
            both_strands,
        }
    }
}

/// A request's priority class, ordered by urgency: workers always pick a
/// runnable request of a higher class before any lower one, and
/// round-robin within a class. An overdue deadline outranks even class
/// (see [`MultiEngine::open_with`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput traffic (batch re-mapping jobs): yields to everything.
    Bulk,
    /// The default class for unmarked requests.
    #[default]
    Normal,
    /// Latency-sensitive traffic (a user waiting on the reply): picked
    /// before every lower class whenever one of its batches is runnable.
    Interactive,
}

impl Priority {
    /// Every class, most urgent first (the daemon's report order).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Bulk];

    /// Parses the wire/CLI name of a class (`interactive|normal|bulk`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "interactive" => Some(Self::Interactive),
            "normal" => Some(Self::Normal),
            "bulk" => Some(Self::Bulk),
            _ => None,
        }
    }

    /// The wire/CLI name of this class.
    pub fn name(self) -> &'static str {
        match self {
            Self::Interactive => "interactive",
            Self::Normal => "normal",
            Self::Bulk => "bulk",
        }
    }

    /// Scheduling rank (higher = more urgent) and the per-class slot in
    /// the delay aggregation.
    fn index(self) -> usize {
        match self {
            Self::Bulk => 0,
            Self::Normal => 1,
            Self::Interactive => 2,
        }
    }
}

/// Queueing-delay percentiles over a set of batches, measured from
/// [`RequestHandle::push`] enqueue to worker pickup — the time a batch
/// spent waiting for a worker, the QoS signal the scheduler exists to
/// shape. `batches` counts every recorded batch; the percentiles are
/// computed over a bounded sliding window of the most recent samples so a
/// long-lived daemon's memory stays flat.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueDelayStats {
    /// Batches recorded (engine lifetime, not just the window).
    pub batches: u64,
    /// Median queueing delay.
    pub p50: Duration,
    /// 95th-percentile queueing delay.
    pub p95: Duration,
    /// 99th-percentile queueing delay.
    pub p99: Duration,
}

/// Samples kept per delay window (per class, and per request).
const DELAY_WINDOW: usize = 4096;

/// A bounded sliding window of queueing-delay samples.
#[derive(Debug, Default)]
struct DelayWindow {
    total: u64,
    samples: Vec<Duration>,
    /// Overwrite cursor once the window is full.
    next: usize,
}

impl DelayWindow {
    fn record(&mut self, delay: Duration) {
        if self.samples.len() < DELAY_WINDOW {
            self.samples.push(delay);
        } else {
            self.samples[self.next] = delay;
            self.next = (self.next + 1) % DELAY_WINDOW;
        }
        self.total += 1;
    }

    /// Nearest-rank percentiles over the window; `None` before the first
    /// sample.
    fn stats(&self) -> Option<QueueDelayStats> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let pick = |p: f64| {
            let rank = ((sorted.len() as f64) * p).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(QueueDelayStats {
            batches: self.total,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
        })
    }
}

impl Default for MultiConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_depth: 0,
            max_queued: 0,
            both_strands: false,
        }
    }
}

/// Admission refusal: the engine's queued-batch depth has reached the
/// configured limit. Clients should retry later (the `segram serve` line
/// protocol surfaces this as a `BUSY` reply carrying the depth).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineBusy {
    /// Batches currently queued across all open requests.
    pub queued: usize,
    /// The configured admission limit.
    pub capacity: usize,
    /// Suggested client back-off before retrying: the time the current
    /// queue needs to drain at the engine's recently observed pick rate
    /// (clamped to 10 ms … 5 s; a flat 100 ms before any rate is known).
    pub retry_hint: Duration,
}

impl fmt::Display for EngineBusy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engine busy: {} of {} queued batches (retry in ~{} ms)",
            self.queued,
            self.capacity,
            self.retry_hint.as_millis()
        )
    }
}

impl Error for EngineBusy {}

/// A request failed because mapping panicked. The panic is scoped to the
/// request — the engine and every other request keep running.
#[derive(Clone, Debug)]
pub struct RequestPanicked {
    /// The panic message, as well as it could be recovered.
    pub message: String,
}

impl fmt::Display for RequestPanicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request failed: mapping panicked: {}", self.message)
    }
}

impl Error for RequestPanicked {}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Route/spill/steal totals of a pool-routed [`MultiEngine`] (all zero
/// without routing): `routed` batches carried a route-hook pool tag,
/// `spilled` ones fell back to the least-loaded pool, and `stolen` ones
/// were ultimately mapped by a worker from a *different* pool (the
/// work-stealing that keeps routing from ever idling a worker).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Batches the route hook assigned to a specific pool.
    pub routed: u64,
    /// Batches the hook declined (straddling groups, or no signal),
    /// tagged with the least-loaded pool instead.
    pub spilled: u64,
    /// Batches mapped by a worker outside their tagged pool.
    pub stolen: u64,
}

/// One queued input batch of a request, in push order.
struct QueuedBatch<T> {
    /// Position in the request's push order (the reorder key).
    index: usize,
    items: Vec<T>,
    /// The pool this batch is tagged for.
    pool: usize,
    /// When [`RequestHandle::push`] enqueued it — the queueing-delay
    /// measurement starts here and ends at worker pickup.
    enqueued: Instant,
}

/// Per-request scheduler state. Everything lives under the one scheduler
/// lock; mapping itself always runs outside it.
struct ReqState<M, T> {
    /// Queued input batches, in push order.
    input: VecDeque<QueuedBatch<T>>,
    input_closed: bool,
    cancel: CancelToken,
    /// Scheduling class: workers pick the most urgent runnable request.
    priority: Priority,
    /// Absolute deadline (open time + the client's hint); once passed,
    /// this request outranks every on-time one.
    deadline: Option<Instant>,
    /// The mapper captured at open: stable across
    /// [`MultiEngine::swap_mapper`], so one request never mixes indexes.
    mapper: Arc<M>,
    /// This request's own queueing-delay samples.
    delays: DelayWindow,
    /// Batches popped by workers and not yet released or discarded.
    inflight: usize,
    /// Next batch index to release to `out` (per-request reorder buffer).
    next_release: usize,
    pending: BTreeMap<usize, Vec<(T, ReadOutcome)>>,
    /// Released batches, strictly in push order. Unbounded: a request's
    /// outputs never exceed what its producer already pushed in, and
    /// admission bounds the queued total across requests.
    out: VecDeque<Vec<(T, ReadOutcome)>>,
    /// All work released or discarded; `next_output` returns `None` once
    /// `out` also drains.
    done: bool,
    /// Handle dropped without `finish`: discard outputs, remove when idle.
    detached: bool,
    failure: Option<String>,
    report: EngineReport,
}

impl<M, T> ReqState<M, T> {
    fn new(
        cancel: CancelToken,
        priority: Priority,
        deadline: Option<Instant>,
        mapper: Arc<M>,
    ) -> Self {
        Self {
            input: VecDeque::new(),
            input_closed: false,
            cancel,
            priority,
            deadline,
            mapper,
            delays: DelayWindow::default(),
            inflight: 0,
            next_release: 0,
            pending: BTreeMap::new(),
            out: VecDeque::new(),
            done: false,
            detached: false,
            failure: None,
            report: EngineReport::default(),
        }
    }
}

struct Sched<M, T> {
    requests: BTreeMap<u64, ReqState<M, T>>,
    /// Rotation order *within* an urgency class: workers pick the most
    /// urgent runnable request (overdue deadline, then priority class)
    /// and break ties by this order; a worker that pops from a request
    /// moves it to the back.
    rr: VecDeque<u64>,
    next_id: u64,
    /// Total queued input batches across requests — the live admission /
    /// backpressure depth.
    queued_total: usize,
    /// Queued batches per pool tag — the least-loaded spill signal.
    queued_per_pool: Vec<usize>,
    counters: PoolCounters,
    /// Lifetime queueing-delay windows, indexed by [`Priority::index`].
    class_delays: [DelayWindow; 3],
    /// Timestamps of the most recent worker picks — the live drain-rate
    /// estimate behind [`EngineBusy::retry_hint`].
    recent_picks: VecDeque<Instant>,
    shutdown: bool,
}

/// Picks kept for the drain-rate estimate.
const RECENT_PICKS: usize = 64;

impl<M, T> Sched<M, T> {
    /// Suggested back-off for a refused request: the time the current
    /// queue needs to drain at the recently observed pick rate.
    fn retry_hint(&self) -> Duration {
        let (Some(first), Some(last)) = (self.recent_picks.front(), self.recent_picks.back())
        else {
            return Duration::from_millis(100);
        };
        let span = last.saturating_duration_since(*first);
        if self.recent_picks.len() < 2 || span.is_zero() {
            return Duration::from_millis(100);
        }
        let per_batch = span.as_secs_f64() / (self.recent_picks.len() - 1) as f64;
        Duration::from_secs_f64((per_batch * self.queued_total as f64).clamp(0.010, 5.0))
    }

    /// Re-derives a request's lifecycle after any state change:
    /// cancellation drops queued and pending work immediately, completion
    /// flips `done`, and a detached request is removed once idle.
    fn settle(&mut self, id: u64) {
        let Some(req) = self.requests.get_mut(&id) else {
            return;
        };
        if req.cancel.is_cancelled() {
            self.queued_total -= req.input.len();
            for batch in &req.input {
                self.queued_per_pool[batch.pool] -= 1;
            }
            req.input.clear();
            req.pending.clear();
            if req.inflight == 0 {
                req.done = true;
            }
        } else if req.input_closed
            && req.input.is_empty()
            && req.inflight == 0
            && req.pending.is_empty()
        {
            req.done = true;
        }
        if req.done && req.detached && req.inflight == 0 {
            self.requests.remove(&id);
            self.rr.retain(|&r| r != id);
        }
    }
}

/// The optional batch-routing hook of [`MultiEngine::with_routing`]:
/// returns the preferred pool for a batch, or `None` to spill it to the
/// least-loaded pool.
pub type RouteHook<T> = Arc<dyn Fn(&[T]) -> Option<usize> + Send + Sync>;

struct Shared<M, T> {
    /// The mapper *new* requests capture at open. [`MultiEngine::swap_mapper`]
    /// replaces it; requests already open keep the `Arc` they captured.
    mapper: Mutex<Arc<M>>,
    read_of: fn(&T) -> &DnaSeq,
    threads: usize,
    /// Worker pools (1 = unrouted). Worker `w` serves pool `w % pools`.
    pools: usize,
    /// Routes a pushed batch to its preferred pool ([`RouteHook`]).
    route: Option<RouteHook<T>>,
    queue_depth: usize,
    /// A request with this many batches in flight + parked in its reorder
    /// buffer is deprioritized until its slowest batch releases (the
    /// single-stream engine's `max_ahead` bound, per request).
    max_ahead: usize,
    max_queued: usize,
    both_strands: bool,
    sched: Mutex<Sched<M, T>>,
    /// Workers wait here for a runnable request.
    work_ready: Condvar,
    /// Producers wait here for per-request input space.
    space_ready: Condvar,
    /// Consumers wait here for ordered output or completion.
    output_ready: Condvar,
}

impl<M: ReadMapper, T> Shared<M, T> {
    /// Maps one read with the given request's captured mapper.
    fn map_one(&self, mapper: &M, read: &DnaSeq) -> ReadOutcome {
        if self.both_strands {
            let (best, stats) = mapper.map_read_both(read);
            let (mapping, strand) = match best {
                Some((mapping, strand)) => (Some(mapping), strand),
                None => (None, Strand::Forward),
            };
            ReadOutcome {
                mapping,
                strand,
                stats,
            }
        } else {
            let (mapping, stats) = mapper.map_read(read);
            ReadOutcome {
                mapping,
                strand: Strand::Forward,
                stats,
            }
        }
    }
}

/// The worker loop: pick the most urgent runnable request — past-deadline
/// first, then by [`Priority`] class, preferring a front batch tagged for
/// this worker's `pool` and breaking remaining ties in rotation order
/// (the steal that keeps every worker busy whatever the routing skew) —
/// then map one batch outside the lock, release in order, repeat. Note
/// the steal ordering: lateness and class outrank pool affinity, so a
/// worker abandons locality to serve a late or higher-class request.
fn worker_loop<M: ReadMapper, T>(shared: &Shared<M, T>, pool: usize) {
    let mut guard = relock(&shared.sched);
    loop {
        if guard.shutdown {
            return;
        }
        // One pass over the rotation, keeping the most urgent runnable
        // candidate: the key orders by (overdue, class, own-pool), and a
        // strictly-greater comparison keeps the earliest rotation slot on
        // ties — round-robin within each urgency level.
        let now = Instant::now();
        let mut best: Option<(usize, u64, (bool, usize, bool))> = None;
        for slot in 0..guard.rr.len() {
            let id = guard.rr[slot];
            let Some(req) = guard.requests.get(&id) else {
                continue;
            };
            let Some(front) = req.input.front() else {
                continue;
            };
            // A cancelled request's batches are always poppable (cheap
            // discard); a live one is skipped while its reorder buffer is
            // full — the pick then favors the requests that can make
            // release progress, and bounds how many lower-priority
            // batches can ever overtake a higher-priority request.
            if !req.cancel.is_cancelled() && req.inflight + req.pending.len() >= shared.max_ahead {
                continue;
            }
            let key = (
                req.deadline.is_some_and(|deadline| now >= deadline),
                req.priority.index(),
                front.pool == pool,
            );
            if best.as_ref().is_none_or(|&(_, _, best_key)| key > best_key) {
                best = Some((slot, id, key));
            }
        }
        let Some((slot, id, _)) = best else {
            guard = shared
                .work_ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
            continue;
        };
        guard.rr.remove(slot);
        guard.rr.push_back(id);
        let req = guard.requests.get_mut(&id).expect("picked request exists");
        let QueuedBatch {
            index,
            items,
            pool: batch_pool,
            enqueued,
        } = req.input.pop_front().expect("picked request has input");
        req.inflight += 1;
        let cancel = req.cancel.clone();
        let mapper = Arc::clone(&req.mapper);
        // Queueing delay = enqueue → this pickup. Cancelled requests'
        // batches are discards, not service, and are left out.
        let live = !cancel.is_cancelled();
        let waited = now.saturating_duration_since(enqueued);
        let class = req.priority.index();
        if live {
            req.delays.record(waited);
        }
        guard.queued_total -= 1;
        guard.queued_per_pool[batch_pool] -= 1;
        if live {
            guard.class_delays[class].record(waited);
        }
        guard.recent_picks.push_back(now);
        if guard.recent_picks.len() > RECENT_PICKS {
            guard.recent_picks.pop_front();
        }
        if batch_pool != pool {
            guard.counters.stolen += 1;
        }
        drop(guard);
        shared.space_ready.notify_all();

        // Map outside the lock. A mid-batch cancellation abandons the rest
        // of the batch; a panic becomes this request's failure only.
        let mut outcomes: Vec<(T, ReadOutcome)> = Vec::with_capacity(items.len());
        let result = catch_unwind(AssertUnwindSafe(|| {
            for item in items {
                if cancel.is_cancelled() {
                    return false;
                }
                let outcome = shared.map_one(mapper.as_ref(), (shared.read_of)(&item));
                outcomes.push((item, outcome));
            }
            true
        }));

        guard = relock(&shared.sched);
        if let Some(req) = guard.requests.get_mut(&id) {
            req.inflight -= 1;
            match result {
                Err(payload) => {
                    if req.failure.is_none() {
                        req.failure = Some(panic_message(payload));
                    }
                    req.cancel.cancel();
                }
                Ok(true) if !req.cancel.is_cancelled() => {
                    req.report.batches += 1;
                    req.pending.insert(index, std::mem::take(&mut outcomes));
                    // Release every batch now contiguous with the released
                    // prefix, strictly in push order.
                    while let Some(ready) = req.pending.remove(&req.next_release) {
                        req.next_release += 1;
                        for (_, outcome) in &ready {
                            req.report.reads += 1;
                            if outcome.mapping.is_some() {
                                req.report.mapped += 1;
                            }
                            req.report.stats.merge(&outcome.stats);
                        }
                        if !req.detached {
                            req.out.push_back(ready);
                        }
                    }
                }
                // Cancelled mid-batch or just after: outputs are dropped.
                Ok(_) => {}
            }
            guard.settle(id);
        }
        drop(guard);
        shared.output_ready.notify_all();
        shared.work_ready.notify_all();
        shared.space_ready.notify_all();
        guard = relock(&shared.sched);
    }
}

/// The long-lived multi-request engine: a worker pool multiplexing
/// concurrent mapping requests over one shared mapper (see the module
/// docs for the isolation/fairness/admission contract).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use segram_core::{EngineOptions, MultiEngine, SegramConfig, SegramMapper};
/// use segram_graph::DnaSeq;
/// use segram_sim::DatasetConfig;
///
/// fn seq_of(read: &DnaSeq) -> &DnaSeq {
///     read
/// }
///
/// let dataset = DatasetConfig::tiny(3).illumina(100);
/// let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
/// let engine = MultiEngine::new(Arc::new(mapper), seq_of, EngineOptions::new().threads(2));
///
/// let mut request = engine.open().expect("engine accepts");
/// let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
/// request.push(reads.clone());
/// request.finish_input();
/// let mut mapped = 0;
/// while let Some(batch) = request.next_output() {
///     mapped += batch.iter().filter(|(_, o)| o.mapping.is_some()).count();
/// }
/// let report = request.finish().expect("no panic");
/// assert_eq!(report.reads, reads.len());
/// assert_eq!(report.mapped, mapped);
/// engine.shutdown();
/// ```
pub struct MultiEngine<M: ReadMapper + Send + Sync + 'static, T: Send + 'static> {
    shared: Arc<Shared<M, T>>,
    workers: Vec<JoinHandle<()>>,
}

// Manual impl: `derive` would demand `M: Debug` + `T: Debug`, which the
// mapper has no reason to provide.
impl<M: ReadMapper + Send + Sync + 'static, T: Send + 'static> fmt::Debug for MultiEngine<M, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiEngine")
            .field("shared", &self.shared)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<M: ReadMapper + Send + Sync + 'static, T: Send + 'static> fmt::Debug for Shared<M, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("threads", &self.threads)
            .field("queue_depth", &self.queue_depth)
            .field("max_queued", &self.max_queued)
            .finish_non_exhaustive()
    }
}

impl<M: ReadMapper + Send + Sync + 'static, T: Send + 'static> MultiEngine<M, T> {
    /// Spawns the worker pool over a shared mapper. `read_of` projects the
    /// sequence out of a work item (e.g. `|record| &record.seq`). `config`
    /// accepts either a [`MultiConfig`] or a shared
    /// [`EngineOptions`](super::engine::EngineOptions).
    pub fn new(mapper: Arc<M>, read_of: fn(&T) -> &DnaSeq, config: impl Into<MultiConfig>) -> Self {
        Self::with_routing(mapper, read_of, config, 1, None)
    }

    /// [`Self::new`] plus pool routing: workers are partitioned into
    /// `pools` pools (worker `w` → pool `w % pools`, clamped so every
    /// pool has a worker), and `route` tags each pushed batch with its
    /// preferred pool — `None` spills to the least-loaded one. Workers
    /// prefer their own pool's batches and steal otherwise, so routing
    /// shapes locality without affecting ordering, output bytes, or
    /// liveness.
    pub fn with_routing(
        mapper: Arc<M>,
        read_of: fn(&T) -> &DnaSeq,
        config: impl Into<MultiConfig>,
        pools: usize,
        route: Option<RouteHook<T>>,
    ) -> Self {
        let config = config.into();
        let threads = config.threads.max(1);
        let pools = pools.clamp(1, threads);
        let queue_depth = if config.queue_depth == 0 {
            threads * 2
        } else {
            config.queue_depth
        };
        let max_queued = if config.max_queued == 0 {
            queue_depth * 4
        } else {
            config.max_queued
        };
        let shared = Arc::new(Shared {
            mapper: Mutex::new(mapper),
            read_of,
            threads,
            pools,
            route,
            queue_depth,
            max_ahead: queue_depth + threads,
            max_queued,
            both_strands: config.both_strands,
            sched: Mutex::new(Sched {
                requests: BTreeMap::new(),
                rr: VecDeque::new(),
                next_id: 0,
                queued_total: 0,
                queued_per_pool: vec![0; pools],
                counters: PoolCounters::default(),
                class_delays: Default::default(),
                recent_picks: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            output_ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("segram-serve-{i}"))
                    .spawn(move || worker_loop(shared.as_ref(), i % pools))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// Opens a new request at [`Priority::Normal`] with no deadline,
    /// subject to admission control.
    ///
    /// # Errors
    ///
    /// [`EngineBusy`] when the queued-batch depth has reached the limit
    /// (or the engine is shutting down).
    pub fn open(&self) -> Result<RequestHandle<M, T>, EngineBusy> {
        self.open_with(Priority::Normal, None)
    }

    /// [`Self::open`] with an explicit QoS class and optional deadline
    /// hint. Workers always pick the most urgent queued batch: a request
    /// past its deadline outranks every on-time one, then higher
    /// [`Priority`] classes outrank lower ones, then pool affinity breaks
    /// ties (round-robin within a level). The request maps against the
    /// mapper active at open time, even across a
    /// [`swap_mapper`](Self::swap_mapper).
    ///
    /// # Errors
    ///
    /// [`EngineBusy`] when the queued-batch depth has reached the limit
    /// (or the engine is shutting down); its `retry_hint` estimates the
    /// queue drain time.
    pub fn open_with(
        &self,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<RequestHandle<M, T>, EngineBusy> {
        let mapper = Arc::clone(&relock(&self.shared.mapper));
        let mut guard = relock(&self.shared.sched);
        if guard.shutdown || guard.queued_total >= self.shared.max_queued {
            return Err(EngineBusy {
                queued: guard.queued_total,
                capacity: self.shared.max_queued,
                retry_hint: guard.retry_hint(),
            });
        }
        let id = guard.next_id;
        guard.next_id += 1;
        let cancel = CancelToken::new();
        let deadline = deadline.map(|d| Instant::now() + d);
        guard.requests.insert(
            id,
            ReqState::new(cancel.clone(), priority, deadline, Arc::clone(&mapper)),
        );
        guard.rr.push_back(id);
        Ok(RequestHandle {
            shared: Arc::clone(&self.shared),
            mapper,
            id,
            cancel,
            produced: 0,
            finished: false,
        })
    }

    /// Replaces the mapper for **future** requests; requests already open
    /// keep mapping against the mapper they captured at open time. This is
    /// the zero-downtime half of `RELOAD`: build the new index off-thread,
    /// then swap between requests.
    pub fn swap_mapper(&self, mapper: Arc<M>) {
        *relock(&self.shared.mapper) = mapper;
    }

    /// The mapper new requests would currently capture.
    pub fn active_mapper(&self) -> Arc<M> {
        Arc::clone(&relock(&self.shared.mapper))
    }

    /// Lifetime queueing-delay percentiles per priority class (classes
    /// that never queued a batch are omitted), most urgent first.
    pub fn queue_delays(&self) -> Vec<(Priority, QueueDelayStats)> {
        let guard = relock(&self.shared.sched);
        Priority::ALL
            .iter()
            .filter_map(|&p| guard.class_delays[p.index()].stats().map(|s| (p, s)))
            .collect()
    }

    /// The live queued-batch depth across all open requests — the
    /// admission/backpressure signal (`BUSY <depth>` in the serve
    /// protocol).
    pub fn queued_batches(&self) -> usize {
        relock(&self.shared.sched).queued_total
    }

    /// Open (not yet finished or removed) requests.
    pub fn open_requests(&self) -> usize {
        relock(&self.shared.sched).requests.len()
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Worker pools (1 unless built [`with_routing`](Self::with_routing)).
    pub fn pools(&self) -> usize {
        self.shared.pools
    }

    /// Route/spill/steal totals since the engine started.
    pub fn pool_counters(&self) -> PoolCounters {
        relock(&self.shared.sched).counters
    }

    /// Stops the pool: cancels every open request and joins the workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut guard = relock(&self.shared.sched);
            guard.shutdown = true;
            for req in guard.requests.values() {
                req.cancel.cancel();
            }
            let ids: Vec<u64> = guard.requests.keys().copied().collect();
            for id in ids {
                guard.settle(id);
            }
        }
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        self.shared.output_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<M: ReadMapper + Send + Sync + 'static, T: Send + 'static> Drop for MultiEngine<M, T> {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop();
        }
    }
}

/// One open mapping request on a [`MultiEngine`]: push input batches, read
/// ordered output batches, then [`finish`](Self::finish) for the report.
/// Dropping the handle without finishing cancels the request and discards
/// its outputs.
pub struct RequestHandle<M: ReadMapper + Send + Sync + 'static, T: Send + 'static> {
    shared: Arc<Shared<M, T>>,
    mapper: Arc<M>,
    id: u64,
    cancel: CancelToken,
    produced: usize,
    finished: bool,
}

impl<M: ReadMapper + Send + Sync + 'static, T: Send + 'static> fmt::Debug for RequestHandle<M, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RequestHandle")
            .field("id", &self.id)
            .field("produced", &self.produced)
            .field("finished", &self.finished)
            .finish()
    }
}

impl<M: ReadMapper + Send + Sync + 'static, T: Send + 'static> RequestHandle<M, T> {
    /// This request's engine-assigned id (the batch tag in logs).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The mapper this request captured at open time — stable across
    /// [`MultiEngine::swap_mapper`], so rendering (e.g. SAM headers against
    /// the mapped graph) stays consistent with the outcomes.
    pub fn mapper(&self) -> Arc<M> {
        Arc::clone(&self.mapper)
    }

    /// Queueing-delay percentiles over this request's picked batches so
    /// far (`None` before the first pick).
    pub fn queue_delay(&self) -> Option<QueueDelayStats> {
        relock(&self.shared.sched)
            .requests
            .get(&self.id)
            .and_then(|req| req.delays.stats())
    }

    /// A clone of this request's cancellation token — hand it to whatever
    /// watches the client connection; cancelling stops only this request.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Cancels this request now: queued input and parked outputs are
    /// dropped, in-flight batches wind down, other requests are untouched.
    pub fn cancel(&self) {
        self.cancel.cancel();
        let mut guard = relock(&self.shared.sched);
        guard.settle(self.id);
        drop(guard);
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        self.shared.output_ready.notify_all();
    }

    /// Pushes one input batch, blocking while this request's input queue
    /// is full. Returns `false` — and discards the batch — once the
    /// request is cancelled or the engine is shutting down.
    pub fn push(&mut self, items: Vec<T>) -> bool {
        if items.is_empty() {
            return !self.cancel.is_cancelled();
        }
        let shared = self.shared.as_ref();
        // The pre-route pass runs on the producer (connection) thread,
        // outside the scheduler lock — minimizer extraction must never
        // block the worker pool.
        let preferred = if shared.pools > 1 {
            shared
                .route
                .as_ref()
                .and_then(|route| route(&items))
                .filter(|&pool| pool < shared.pools)
        } else {
            Some(0)
        };
        let mut guard = relock(&shared.sched);
        let mut blocked: Option<Instant> = None;
        loop {
            if self.cancel.is_cancelled() || guard.shutdown {
                return false;
            }
            let Some(req) = guard.requests.get_mut(&self.id) else {
                return false;
            };
            if req.input.len() < shared.queue_depth {
                if let Some(since) = blocked {
                    req.report.queue.producer_waits += 1;
                    req.report.queue.producer_wait += since.elapsed();
                }
                break;
            }
            blocked.get_or_insert_with(Instant::now);
            guard = shared
                .space_ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
        // The spill decision needs the live per-pool depths, so it waits
        // for the lock (routed batches already know their pool).
        let pool = match preferred {
            Some(pool) => {
                if shared.pools > 1 {
                    guard.counters.routed += 1;
                }
                pool
            }
            None => {
                guard.counters.spilled += 1;
                (0..shared.pools)
                    .min_by_key(|&p| guard.queued_per_pool[p])
                    .expect("at least one pool")
            }
        };
        let req = guard
            .requests
            .get_mut(&self.id)
            .expect("request checked above");
        req.input.push_back(QueuedBatch {
            index: self.produced,
            items,
            pool,
            enqueued: Instant::now(),
        });
        let depth = req.input.len();
        req.report.queue.max_depth = req.report.queue.max_depth.max(depth);
        self.produced += 1;
        guard.queued_total += 1;
        guard.queued_per_pool[pool] += 1;
        drop(guard);
        shared.work_ready.notify_all();
        true
    }

    /// Declares end of input: once every pushed batch is released the
    /// request completes and [`next_output`](Self::next_output) returns
    /// `None` after draining.
    pub fn finish_input(&mut self) {
        let mut guard = relock(&self.shared.sched);
        if let Some(req) = guard.requests.get_mut(&self.id) {
            req.input_closed = true;
        }
        guard.settle(self.id);
        drop(guard);
        self.shared.work_ready.notify_all();
        self.shared.output_ready.notify_all();
    }

    /// Blocks for the next output batch, **strictly in push order**.
    /// Returns `None` once the request is complete (all input released, or
    /// cancelled) and every released batch has been taken.
    pub fn next_output(&mut self) -> Option<Vec<(T, ReadOutcome)>> {
        let mut guard = relock(&self.shared.sched);
        loop {
            let req = guard.requests.get_mut(&self.id)?;
            if let Some(batch) = req.out.pop_front() {
                return Some(batch);
            }
            if req.done || guard.shutdown {
                return None;
            }
            guard = self
                .shared
                .output_ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Completes the request: closes input if still open, waits for every
    /// in-flight batch, removes the request from the engine, and returns
    /// its report.
    ///
    /// # Errors
    ///
    /// [`RequestPanicked`] when mapping panicked inside this request (the
    /// engine itself keeps serving).
    pub fn finish(mut self) -> Result<EngineReport, RequestPanicked> {
        self.finish_input();
        let shared = Arc::clone(&self.shared);
        let mut guard = relock(&shared.sched);
        loop {
            let Some(req) = guard.requests.get(&self.id) else {
                // Already removed (shutdown raced us): report what we know.
                self.finished = true;
                return Ok(EngineReport {
                    threads: shared.threads,
                    ..EngineReport::default()
                });
            };
            if req.done || guard.shutdown {
                break;
            }
            guard = shared
                .output_ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let state = guard.requests.remove(&self.id).expect("checked above");
        guard.rr.retain(|&r| r != self.id);
        drop(guard);
        self.finished = true;
        let mut report = state.report;
        report.backend = state.mapper.backend_name();
        report.threads = shared.threads;
        match state.failure {
            Some(message) => Err(RequestPanicked { message }),
            None => Ok(report),
        }
    }
}

impl<M: ReadMapper + Send + Sync + 'static, T: Send + 'static> Drop for RequestHandle<M, T> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        self.cancel.cancel();
        let mut guard = relock(&self.shared.sched);
        if let Some(req) = guard.requests.get_mut(&self.id) {
            req.detached = true;
            req.out.clear();
        }
        guard.settle(self.id);
        drop(guard);
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        self.shared.output_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::engine::{EngineConfig, EngineOptions, MapEngine};
    use crate::{MapStats, Mapping, SegramConfig, SegramMapper};
    use segram_graph::GenomeGraph;
    use segram_sim::DatasetConfig;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    fn seq_of(read: &DnaSeq) -> &DnaSeq {
        read
    }

    fn setup() -> (segram_sim::Dataset, SegramMapper) {
        let dataset = DatasetConfig::tiny(91).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        (dataset, mapper)
    }

    fn key(outcome: &ReadOutcome) -> Option<(u64, u32)> {
        outcome
            .mapping
            .as_ref()
            .map(|m| (m.linear_start, m.alignment.edit_distance))
    }

    /// Drives one request end to end: push every read in `chunk`-sized
    /// batches, then drain, returning flattened outcomes + the report.
    fn run_request(
        engine: &MultiEngine<SegramMapper, DnaSeq>,
        reads: &[DnaSeq],
        chunk: usize,
    ) -> (Vec<ReadOutcome>, EngineReport) {
        let mut request = engine.open().expect("admission");
        for batch in reads.chunks(chunk) {
            assert!(request.push(batch.to_vec()));
        }
        request.finish_input();
        let mut outcomes = Vec::new();
        let mut echoed: Vec<DnaSeq> = Vec::new();
        while let Some(batch) = request.next_output() {
            for (read, outcome) in batch {
                echoed.push(read);
                outcomes.push(outcome);
            }
        }
        assert_eq!(echoed, reads, "outputs echo inputs in push order");
        let report = request.finish().expect("no panic");
        (outcomes, report)
    }

    #[test]
    fn concurrent_requests_each_match_the_single_stream_engine() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let (base, base_report) =
            MapEngine::new(&mapper, EngineConfig::with_threads(1)).map_batch(&reads);

        let engine = MultiEngine::new(
            Arc::new(mapper),
            seq_of,
            MultiConfig {
                threads: 2,
                queue_depth: 2,
                max_queued: 0,
                both_strands: false,
            },
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let engine = &engine;
                    let reads = &reads;
                    // Different chunk sizes force different interleavings.
                    scope.spawn(move || run_request(engine, reads, 1 + i * 2))
                })
                .collect();
            for handle in handles {
                let (outcomes, report) = handle.join().expect("request thread");
                assert_eq!(report.reads, base_report.reads);
                assert_eq!(report.mapped, base_report.mapped);
                assert_eq!(outcomes.len(), base.len());
                for (a, b) in base.iter().zip(&outcomes) {
                    assert_eq!(key(a), key(b));
                    assert_eq!(a.strand, b.strand);
                }
            }
        });
        assert_eq!(engine.open_requests(), 0, "finished requests are removed");
        engine.shutdown();
    }

    /// A mapper that sleeps per read, to make scheduling observable.
    struct SlowMapper {
        graph: GenomeGraph,
        delay: Duration,
    }

    impl ReadMapper for SlowMapper {
        fn graph(&self) -> &GenomeGraph {
            &self.graph
        }
        fn map_read(&self, _read: &DnaSeq) -> (Option<Mapping>, MapStats) {
            std::thread::sleep(self.delay);
            (None, MapStats::default())
        }
        fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
            let (_, stats) = self.map_read(read);
            let _ = read;
            (None, stats)
        }
    }

    #[test]
    fn cancelling_one_request_leaves_the_other_intact() {
        let (dataset, _) = setup();
        let mapper = SlowMapper {
            graph: dataset.graph().clone(),
            delay: Duration::from_millis(60),
        };
        let read: DnaSeq = dataset.reads[0].seq.clone();
        let engine = MultiEngine::new(
            Arc::new(mapper),
            seq_of,
            MultiConfig {
                threads: 2,
                queue_depth: 8,
                max_queued: 64,
                both_strands: false,
            },
        );
        std::thread::scope(|scope| {
            let victim = scope.spawn(|| {
                let mut request = engine.open().expect("admission");
                for _ in 0..8 {
                    assert!(request.push(vec![read.clone()]));
                }
                // Cancel mid-flight, right after the first output: most of
                // the eight batches are still queued or in flight.
                let first = request.next_output();
                request.cancel();
                while request.next_output().is_some() {}
                (first.is_some(), request.finish())
            });
            let survivor = scope.spawn(|| run_request_slow(&engine, &read, 10));
            let (saw_output, report) = victim.join().expect("victim thread");
            assert!(saw_output, "victim produced output before cancellation");
            let report = report.expect("cancellation is not a panic");
            assert!(report.reads < 8, "cancellation cut the victim short");
            let survivor_reads = survivor.join().expect("survivor thread");
            assert_eq!(survivor_reads, 10, "survivor completed every read");
        });
        engine.shutdown();
    }

    /// `run_request` for the SlowMapper engine: returns released reads.
    fn run_request_slow(
        engine: &MultiEngine<SlowMapper, DnaSeq>,
        read: &DnaSeq,
        count: usize,
    ) -> usize {
        let mut request = engine.open().expect("admission");
        for _ in 0..count {
            assert!(request.push(vec![read.clone()]));
        }
        request.finish_input();
        let mut released = 0;
        while let Some(batch) = request.next_output() {
            released += batch.len();
        }
        assert_eq!(request.finish().expect("no panic").reads, released);
        released
    }

    /// A mapper that blocks until released — admission tests need the
    /// queue to stay full without timing assumptions.
    struct GatedMapper {
        graph: GenomeGraph,
        gate: Arc<AtomicBool>,
    }

    impl ReadMapper for GatedMapper {
        fn graph(&self) -> &GenomeGraph {
            &self.graph
        }
        fn map_read(&self, _read: &DnaSeq) -> (Option<Mapping>, MapStats) {
            let start = Instant::now();
            while !self.gate.load(Ordering::SeqCst) && start.elapsed() < Duration::from_secs(10) {
                std::thread::yield_now();
            }
            (None, MapStats::default())
        }
        fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
            let (_, stats) = self.map_read(read);
            let _ = read;
            (None, stats)
        }
    }

    #[test]
    fn admission_refuses_past_the_queued_batch_limit() {
        let (dataset, _) = setup();
        let gate = Arc::new(AtomicBool::new(false));
        let mapper = GatedMapper {
            graph: dataset.graph().clone(),
            gate: Arc::clone(&gate),
        };
        let read: DnaSeq = dataset.reads[0].seq.clone();
        let engine = MultiEngine::new(
            Arc::new(mapper),
            seq_of,
            MultiConfig {
                threads: 1,
                queue_depth: 2,
                max_queued: 1,
                both_strands: false,
            },
        );
        let mut request = engine.open().expect("empty engine admits");
        // Two batches: the worker blocks inside the first (gated), the
        // second stays queued, so the depth sits at the limit.
        assert!(request.push(vec![read.clone()]));
        assert!(request.push(vec![read.clone()]));
        let busy = engine.open().expect_err("over the admission limit");
        assert_eq!(busy.capacity, 1);
        assert!(busy.queued >= 1, "refusal reports the live depth");
        assert!(
            busy.retry_hint > Duration::ZERO,
            "refusals always carry a usable retry hint"
        );
        assert!(
            busy.to_string().contains("retry in ~"),
            "the hint is part of the message: {busy}"
        );

        gate.store(true, Ordering::SeqCst);
        request.finish_input();
        while request.next_output().is_some() {}
        assert_eq!(request.finish().expect("no panic").reads, 2);
        assert_eq!(engine.queued_batches(), 0);
        engine.open().expect("drained engine admits again");
        engine.shutdown();
    }

    #[test]
    fn round_robin_lets_a_small_request_overtake_a_big_one() {
        let (dataset, _) = setup();
        let delay = Duration::from_millis(25);
        let mapper = SlowMapper {
            graph: dataset.graph().clone(),
            delay,
        };
        let read: DnaSeq = dataset.reads[0].seq.clone();
        // One worker: completion order is exactly the scheduling order.
        let engine = MultiEngine::new(
            Arc::new(mapper),
            seq_of,
            MultiConfig {
                threads: 1,
                queue_depth: 16,
                max_queued: 64,
                both_strands: false,
            },
        );
        std::thread::scope(|scope| {
            let big = scope.spawn(|| {
                let mut request = engine.open().expect("admission");
                for _ in 0..8 {
                    assert!(request.push(vec![read.clone()]));
                }
                request.finish_input();
                while request.next_output().is_some() {}
                let finished = Instant::now();
                request.finish().expect("no panic");
                finished
            });
            // Give the big request a head start so its batches are queued.
            std::thread::sleep(delay);
            let small = scope.spawn(|| {
                let mut request = engine.open().expect("admission");
                assert!(request.push(vec![read.clone()]));
                request.finish_input();
                while request.next_output().is_some() {}
                let finished = Instant::now();
                request.finish().expect("no panic");
                finished
            });
            let big_done = big.join().expect("big request");
            let small_done = small.join().expect("small request");
            assert!(
                small_done < big_done,
                "round-robin must not make the one-batch request wait \
                 behind all eight batches of the earlier request"
            );
        });
        engine.shutdown();
    }

    /// Panics on a marker read, to test request-scoped failure.
    struct FaultyMapper {
        inner: SegramMapper,
        poison: DnaSeq,
    }

    impl ReadMapper for FaultyMapper {
        fn graph(&self) -> &GenomeGraph {
            self.inner.graph()
        }
        fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
            assert!(*read != self.poison, "poisoned read");
            self.inner.map_read(read)
        }
        fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
            ReadMapper::map_read_both(&self.inner, read)
        }
    }

    #[test]
    fn a_panicking_request_fails_alone_and_the_engine_keeps_serving() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let poison = reads[3].clone();
        let engine = MultiEngine::new(
            Arc::new(FaultyMapper {
                inner: mapper,
                poison: poison.clone(),
            }),
            seq_of,
            EngineOptions::new().threads(2),
        );

        let mut doomed = engine.open().expect("admission");
        assert!(doomed.push(vec![reads[0].clone(), poison.clone()]));
        doomed.finish_input();
        while doomed.next_output().is_some() {}
        let failure = doomed.finish().expect_err("the poison read panics");
        assert!(
            failure.message.contains("poisoned read"),
            "failure carries the panic message, got: {}",
            failure.message
        );

        // The engine survives: a clean request still completes fully.
        let clean: Vec<DnaSeq> = reads.iter().filter(|r| **r != poison).cloned().collect();
        let mut request = engine.open().expect("engine still admits");
        assert!(request.push(clean.clone()));
        request.finish_input();
        let mut released = 0;
        while let Some(batch) = request.next_output() {
            released += batch.len();
        }
        assert_eq!(released, clean.len());
        assert_eq!(request.finish().expect("no panic").reads, clean.len());
        engine.shutdown();
    }

    #[test]
    fn pool_routing_preserves_outcomes_and_accounts_every_batch() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let (base, _) = MapEngine::new(&mapper, EngineConfig::with_threads(1)).map_batch(&reads);
        // Alternate pool tags, declining every third batch so the spill
        // path (least-loaded fallback) is exercised too.
        let calls = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let route: RouteHook<DnaSeq> = {
            let calls = Arc::clone(&calls);
            Arc::new(move |_batch| {
                let n = calls.fetch_add(1, Ordering::SeqCst);
                if n % 3 == 2 {
                    None
                } else {
                    Some(n % 2)
                }
            })
        };
        let engine = MultiEngine::with_routing(
            Arc::new(mapper),
            seq_of,
            MultiConfig {
                threads: 2,
                queue_depth: 4,
                max_queued: 0,
                both_strands: false,
            },
            2,
            Some(route),
        );
        assert_eq!(engine.pools(), 2);
        let (outcomes, report) = run_request(&engine, &reads, 2);
        assert_eq!(report.reads, reads.len());
        for (a, b) in base.iter().zip(&outcomes) {
            assert_eq!(key(a), key(b), "routing must not change outcomes");
        }
        let counters = engine.pool_counters();
        let batches = reads.len().div_ceil(2) as u64;
        assert_eq!(
            counters.routed + counters.spilled,
            batches,
            "every batch is either routed or spilled: {counters:?}"
        );
        assert!(counters.spilled > 0, "the declining hook must spill");
        assert!(
            counters.stolen <= batches,
            "steals are a subset of batches: {counters:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn dropping_a_handle_detaches_and_cleans_up() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let engine = MultiEngine::new(Arc::new(mapper), seq_of, EngineOptions::new().threads(2));
        {
            let mut request = engine.open().expect("admission");
            assert!(request.push(reads.clone()));
            // Dropped without finish: cancelled + detached.
        }
        // The request must disappear once its in-flight work winds down.
        let start = Instant::now();
        while engine.open_requests() > 0 && start.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(engine.open_requests(), 0);
        assert_eq!(engine.queued_batches(), 0);
        engine.shutdown();
    }

    /// A gated mapper that also logs every read it maps, so tests can
    /// assert the exact pick order of a single worker.
    struct RecordingMapper {
        graph: GenomeGraph,
        gate: Arc<AtomicBool>,
        log: Arc<std::sync::Mutex<Vec<DnaSeq>>>,
    }

    impl ReadMapper for RecordingMapper {
        fn graph(&self) -> &GenomeGraph {
            &self.graph
        }
        fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
            relock(&self.log).push(read.clone());
            let start = Instant::now();
            while !self.gate.load(Ordering::SeqCst) && start.elapsed() < Duration::from_secs(10) {
                std::thread::yield_now();
            }
            (None, MapStats::default())
        }
        fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
            let (_, stats) = self.map_read(read);
            (None, stats)
        }
    }

    /// The pick-order test rig: a single-worker engine over a
    /// [`RecordingMapper`], its gate and log, and distinguishable reads.
    type RecordingRig = (
        MultiEngine<RecordingMapper, DnaSeq>,
        Arc<AtomicBool>,
        Arc<std::sync::Mutex<Vec<DnaSeq>>>,
        Vec<DnaSeq>,
    );

    fn recording_engine(queue_depth: usize) -> RecordingRig {
        let (dataset, _) = setup();
        let gate = Arc::new(AtomicBool::new(false));
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mapper = RecordingMapper {
            graph: dataset.graph().clone(),
            gate: Arc::clone(&gate),
            log: Arc::clone(&log),
        };
        let engine = MultiEngine::new(
            Arc::new(mapper),
            seq_of,
            MultiConfig {
                threads: 1,
                queue_depth,
                max_queued: 64,
                both_strands: false,
            },
        );
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        (engine, gate, log, reads)
    }

    /// Waits (bounded) until the single worker has picked `n` reads.
    fn await_log(log: &std::sync::Mutex<Vec<DnaSeq>>, n: usize) {
        let start = Instant::now();
        while relock(log).len() < n && start.elapsed() < Duration::from_secs(10) {
            std::thread::yield_now();
        }
    }

    #[test]
    fn interactive_request_overtakes_queued_bulk_batches() {
        let (engine, gate, log, reads) = recording_engine(8);
        let bulk_read = reads[0].clone();
        let fast_read = reads[1].clone();
        assert_ne!(bulk_read, fast_read, "reads must be distinguishable");

        let mut bulk = engine.open_with(Priority::Bulk, None).expect("admission");
        for _ in 0..4 {
            assert!(bulk.push(vec![bulk_read.clone()]));
        }
        // The single worker is now inside (at most) one bulk batch; the
        // rest sit queued.
        await_log(&log, 1);
        let mut fast = engine
            .open_with(Priority::Interactive, None)
            .expect("admission");
        assert!(fast.push(vec![fast_read.clone()]));
        gate.store(true, Ordering::SeqCst);

        bulk.finish_input();
        fast.finish_input();
        while fast.next_output().is_some() {}
        while bulk.next_output().is_some() {}
        fast.finish().expect("no panic");
        bulk.finish().expect("no panic");

        let order = relock(&log).clone();
        let fast_at = order
            .iter()
            .position(|r| *r == fast_read)
            .expect("interactive read was mapped");
        assert!(
            fast_at <= 1,
            "the interactive batch must be picked right after the one \
             in-flight bulk batch, not at position {fast_at} of {order:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn late_deadline_outranks_class() {
        let (engine, gate, log, reads) = recording_engine(8);
        let filler_read = reads[0].clone();
        let fast_read = reads[1].clone();
        let late_read = reads[2].clone();

        // Park the single worker inside a filler batch.
        let mut filler = engine.open().expect("admission");
        assert!(filler.push(vec![filler_read.clone()]));
        await_log(&log, 1);

        // Queue an on-time interactive batch first, then a bulk batch
        // whose deadline has already passed: lateness must win.
        let mut fast = engine
            .open_with(Priority::Interactive, None)
            .expect("admission");
        assert!(fast.push(vec![fast_read.clone()]));
        let mut late = engine
            .open_with(Priority::Bulk, Some(Duration::ZERO))
            .expect("admission");
        assert!(late.push(vec![late_read.clone()]));
        gate.store(true, Ordering::SeqCst);

        for request in [&mut filler, &mut fast, &mut late] {
            request.finish_input();
        }
        while filler.next_output().is_some() {}
        while fast.next_output().is_some() {}
        while late.next_output().is_some() {}
        filler.finish().expect("no panic");
        fast.finish().expect("no panic");
        late.finish().expect("no panic");

        let order = relock(&log).clone();
        let late_at = order
            .iter()
            .position(|r| *r == late_read)
            .expect("late read was mapped");
        let fast_at = order
            .iter()
            .position(|r| *r == fast_read)
            .expect("interactive read was mapped");
        assert!(
            late_at < fast_at,
            "a past-deadline bulk batch outranks an on-time interactive \
             one, got pick order {order:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn queueing_delays_are_recorded_per_class_and_per_request() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let engine = MultiEngine::new(
            Arc::new(mapper),
            seq_of,
            MultiConfig {
                threads: 2,
                queue_depth: 4,
                max_queued: 0,
                both_strands: false,
            },
        );
        assert!(
            engine.queue_delays().is_empty(),
            "no class has samples before the first pick"
        );

        let mut request = engine
            .open_with(Priority::Interactive, None)
            .expect("admission");
        let mut batches = 0u64;
        for batch in reads.chunks(4) {
            assert!(request.push(batch.to_vec()));
            batches += 1;
        }
        request.finish_input();
        while request.next_output().is_some() {}
        let delay = request
            .queue_delay()
            .expect("per-request delays after draining");
        assert_eq!(delay.batches, batches);
        assert!(delay.p50 <= delay.p95 && delay.p95 <= delay.p99);
        request.finish().expect("no panic");

        let per_class = engine.queue_delays();
        assert_eq!(
            per_class.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![Priority::Interactive],
            "only the class that queued batches reports"
        );
        assert_eq!(per_class[0].1.batches, batches);
        engine.shutdown();
    }

    /// A mapper whose outcomes carry a marker, so a test can tell which
    /// mapper generation produced each outcome across a hot swap.
    struct MarkedMapper {
        graph: GenomeGraph,
        mark: usize,
    }

    impl ReadMapper for MarkedMapper {
        fn graph(&self) -> &GenomeGraph {
            &self.graph
        }
        fn map_read(&self, _read: &DnaSeq) -> (Option<Mapping>, MapStats) {
            (
                None,
                MapStats {
                    minimizers: self.mark,
                    ..MapStats::default()
                },
            )
        }
        fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
            let (_, stats) = self.map_read(read);
            let _ = read;
            (None, stats)
        }
    }

    #[test]
    fn swap_mapper_leaves_in_flight_requests_on_the_old_index() {
        let (dataset, _) = setup();
        let read: DnaSeq = dataset.reads[0].seq.clone();
        let old = Arc::new(MarkedMapper {
            graph: dataset.graph().clone(),
            mark: 1,
        });
        let new = Arc::new(MarkedMapper {
            graph: dataset.graph().clone(),
            mark: 2,
        });
        let engine = MultiEngine::new(
            Arc::clone(&old),
            seq_of,
            MultiConfig {
                threads: 1,
                queue_depth: 8,
                max_queued: 64,
                both_strands: false,
            },
        );

        // Open before the swap, but push (and map) everything after it:
        // the capture at open time is what pins the index.
        let mut before = engine.open().expect("admission");
        engine.swap_mapper(Arc::clone(&new));
        assert!(Arc::ptr_eq(&engine.active_mapper(), &new));
        let mut after = engine.open().expect("admission");
        assert!(Arc::ptr_eq(&after.mapper(), &new));
        assert!(Arc::ptr_eq(&before.mapper(), &old));

        for request in [&mut before, &mut after] {
            assert!(request.push(vec![read.clone(), read.clone()]));
            request.finish_input();
        }
        let marks_of = |request: &mut RequestHandle<MarkedMapper, DnaSeq>| {
            let mut marks = Vec::new();
            while let Some(batch) = request.next_output() {
                marks.extend(batch.iter().map(|(_, o)| o.stats.minimizers));
            }
            marks
        };
        assert_eq!(
            marks_of(&mut before),
            vec![1, 1],
            "the in-flight request keeps mapping on the pre-swap index"
        );
        assert_eq!(
            marks_of(&mut after),
            vec![2, 2],
            "requests opened after the swap map on the new index"
        );
        before.finish().expect("no panic");
        after.finish().expect("no panic");
        engine.shutdown();
    }
}
