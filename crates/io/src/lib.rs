//! # segram-io
//!
//! Bioinformatics file-format substrate for the SeGraM reproduction
//! (ISCA 2022). The paper's pre-processing consumes a FASTA reference and
//! VCF variation files (Section 5), query reads arrive as FASTQ, the graph
//! itself travels as GFA (implemented in [`segram_graph::gfa`]), and graph
//! mappings are interchanged as GAF. This crate supplies the missing four:
//!
//! * **FASTA** ([`read_fasta`] / [`write_fasta`]) — reference genomes;
//! * **FASTQ** ([`read_fastq`] / [`write_fastq`]) — query reads with
//!   Phred qualities; [`FastqFramer`] additionally splits reading into a
//!   cheap byte-framing half and a [`RawFastqRecord::decode`] half that
//!   can run on worker threads (the map engine's overlapped input path);
//! * **VCF subset** ([`read_vcf`] / [`write_vcf`]) — variants, mapped to
//!   [`segram_graph::Variant`] for graph construction;
//! * **GAF** ([`read_gaf`] / [`write_gaf`]) — graph alignments with
//!   explicit node paths.
//!
//! The `segram index build` persistent-index format additionally builds on
//! the bounds-checked binary primitives here ([`ByteWriter`] /
//! [`ByteReader`] / [`fnv1a64`]): reading never panics on truncated or
//! corrupt input.
//!
//! All parsers take `&str` input and report 1-based line numbers in
//! [`FormatError`]; callers own file handling (`std::fs::read_to_string`),
//! per C-RW-VALUE's spirit of keeping I/O at the edge.
//!
//! ## Example: from files to a genome graph
//!
//! ```
//! use segram_io::{read_fasta, read_vcf, Ambiguity, VcfOptions};
//! use segram_graph::build_graph;
//!
//! let fasta = ">chr1\nACGTACGTACGTACGT\n";
//! let vcf = "##fileformat=VCFv4.2\n\
//!            #CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n\
//!            chr1\t4\t.\tT\tG\t.\tPASS\t.\n";
//!
//! let reference = &read_fasta(fasta, Ambiguity::Reject)?[0];
//! let variants = read_vcf(vcf, VcfOptions::default())?
//!     .chrom("chr1")
//!     .cloned()
//!     .unwrap_or_default();
//! let built = build_graph(&reference.seq, variants.into_sorted())?;
//! assert!(built.graph.node_count() > 1); // the SNP created a bubble
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bgzf;
mod binary;
mod error;
mod fasta;
mod fastq;
mod framer;
mod gaf;
mod stream;
mod vcf;

pub use bgzf::{
    bgzf_compress, bgzf_member, crc32, inflate, looks_like_gzip, BgzfBlock, BgzfBlocks, BgzfMode,
    BgzfWriter, BGZF_EOF, BGZF_MAX_PLAIN, GZIP_MAGIC,
};
pub use binary::{fnv1a64, BinError, ByteReader, ByteWriter};
pub use error::{BgzfError, FormatError};
pub use fasta::{read_fasta, write_fasta, Ambiguity, FastaRecord};
pub use fastq::{
    phred_from_error_rate, read_fastq, write_fastq, FastqReader, FastqRecord, MAX_PHRED,
    PHRED_OFFSET,
};
pub use framer::{FastqFramer, FastqSplice, FrameScanner, RawFastqRecord, FRAMER_BLOCK};
pub use gaf::{read_gaf, write_gaf, GafRecord};
pub use stream::{GafWriter, SamWriter, StreamError};
pub use vcf::{read_vcf, write_vcf, VcfDocument, VcfOptions};
