//! Error type for alignment operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the `segram-align` crate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AlignError {
    /// The pattern (query read) was empty.
    EmptyPattern,
    /// The reference subgraph/text was empty.
    EmptyText,
    /// No alignment exists within the edit-distance threshold `k`.
    ExceedsThreshold {
        /// The threshold that was exceeded.
        k: u32,
    },
    /// The requested anchored start position lies outside the text.
    AnchorOutOfBounds {
        /// The offending start position.
        anchor: usize,
        /// Text length.
        text_len: usize,
    },
    /// Windowed alignment could not complete a window within its per-window
    /// threshold (the divide-and-conquer heuristic gave up).
    WindowFailed {
        /// Index of the pattern character at which the failure occurred.
        pattern_pos: usize,
    },
    /// An invalid configuration value was supplied.
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::EmptyPattern => write!(f, "pattern is empty"),
            AlignError::EmptyText => write!(f, "reference text/subgraph is empty"),
            AlignError::ExceedsThreshold { k } => {
                write!(f, "no alignment within edit-distance threshold {k}")
            }
            AlignError::AnchorOutOfBounds { anchor, text_len } => {
                write!(
                    f,
                    "anchor {anchor} out of bounds for text of length {text_len}"
                )
            }
            AlignError::WindowFailed { pattern_pos } => write!(
                f,
                "windowed alignment failed near pattern position {pattern_pos}"
            ),
            AlignError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl Error for AlignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for err in [
            AlignError::EmptyPattern,
            AlignError::ExceedsThreshold { k: 5 },
            AlignError::WindowFailed { pattern_pos: 10 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<AlignError>();
    }
}
